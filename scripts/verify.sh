#!/usr/bin/env bash
# Full offline verification: build, test, lint. This is what CI (and the
# repo's tier-1 gate) runs; it must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cross-shard determinism suite (release)"
# The thread-invariance property is the load engine's core promise;
# run it in release too so the optimized schedule is also covered.
cargo test --release -q -p vgprs-load --test determinism

echo "==> event-kernel differential smoke (heap vs wheel fingerprints)"
# A tiny busy-hour run on both kernels; fails only if the wheel's
# schedule diverges from the heap oracle. Throughput is not gated here.
cargo run --release -q -p vgprs-bench --bin harness -- kernelbench --check

echo "==> chaos determinism smoke (node + trunk faults: threads x kernels + zero plan)"
# A fixed fault plan — node faults and the four inter-shard trunk
# classes (loss, dup, reorder, partition) — must fingerprint
# identically at every thread count on both kernels, a zero-intensity
# plan must reproduce the fault-free run byte for byte (trunk fabric
# disarmed is the bare mailbox), a reference trunk run must actually
# retransmit (non-vacuity), and per-class trunk damage must be
# monotone in intensity.
cargo run --release -q -p vgprs-bench --bin harness -- chaos --check

echo "==> surge determinism + monotonicity smoke (flash crowds + overload controls)"
# A surged, controlled run must fingerprint identically at every thread
# count on both kernels, a zero-shock plan must reproduce the flat busy
# hour byte for byte, and overload-control interventions must grow
# monotonically with shock intensity.
cargo run --release -q -p vgprs-bench --bin harness -- surge --check

echo "==> KPI regression gate (fresh small run vs committed baseline)"
# A fresh canonical small-population run is structurally diffed against
# baselines/load_small.json under diff-thresholds.toml. A regressed,
# missing or drifted KPI exits nonzero. After an *intentional* KPI
# change, refresh the baseline with scripts/update-baselines.sh and
# commit it with the change.
cargo run --release -q -p vgprs-bench --bin harness -- diff --check

echo "==> no ignored tests"
# An #[ignore]d test is a silently skipped promise. Fail loudly instead.
if grep -rn '#\[ignore' crates tests; then
    echo "error: ignored tests found (listed above)" >&2
    exit 1
fi

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
