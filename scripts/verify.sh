#!/usr/bin/env bash
# Full offline verification: build, test, lint. This is what CI (and the
# repo's tier-1 gate) runs; it must pass with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> OK"
