#!/usr/bin/env bash
# Regenerates the committed KPI baselines that `harness diff --check`
# (and therefore scripts/verify.sh) gates against.
#
# Run this ONLY after an intentional KPI change — a new feature, a
# semantic fix, a schema extension — and commit the refreshed
# baselines/load_small.json together with the change that moved the
# numbers, so the diff gate's history tracks the why. An unintentional
# drift should be fixed, not baked into a new baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --quiet
./target/release/harness diff --update-baseline "$@"

echo
echo "Re-running the gate against the fresh baseline:"
./target/release/harness diff --check "$@"
echo
echo "Baseline refreshed. Review 'git diff baselines/' before committing."
