//! Failure injection: every scarce resource in the architecture must
//! fail the way GSM/GPRS/H.323 prescribe — clean rejections, no leaked
//! state, no stuck endpoints.

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{MobileStation, MsState};
use vgprs_h323::Gatekeeper;
use vgprs_sim::{Network, SimDuration};
use vgprs_wire::{CallId, Command, Imsi, Ipv4Addr, Message, Msisdn, TransportAddr};

fn imsi(i: u32) -> Imsi {
    Imsi::parse(&format!("4669200000001{i:02}")).unwrap()
}

fn msisdn(i: u32) -> Msisdn {
    Msisdn::parse(&format!("8869121000{i:02}")).unwrap()
}

/// Radio congestion: with a single traffic channel, the second
/// simultaneous call is blocked and cleanly released.
#[test]
fn tch_exhaustion_blocks_second_call() {
    let mut net = Network::new(42);
    let mut zone = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            tch_capacity: 1,
            ..VgprsZoneConfig::taiwan()
        },
    );
    let ms1 = zone.add_subscriber(&mut net, "ms1", imsi(1), 0x1, msisdn(1));
    let ms2 = zone.add_subscriber(&mut net, "ms2", imsi(2), 0x2, msisdn(2));
    let alias1 = Msisdn::parse("886220001111").unwrap();
    let alias2 = Msisdn::parse("886220002222").unwrap();
    zone.add_terminal(&mut net, "t1", alias1);
    zone.add_terminal(&mut net, "t2", alias2);
    for ms in [ms1, ms2] {
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    }
    net.run_until_quiescent();
    net.inject(
        SimDuration::ZERO,
        ms1,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: alias1,
        }),
    );
    net.inject(
        SimDuration::from_millis(500),
        ms2,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called: alias2,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(10));
    assert_eq!(
        net.node::<MobileStation>(ms1).unwrap().state(),
        MsState::Active,
        "first call holds the only TCH"
    );
    assert_eq!(
        net.node::<MobileStation>(ms2).unwrap().state(),
        MsState::Idle,
        "second call blocked and released"
    );
    assert_eq!(net.stats().counter("bsc.tch_blocked"), 1);
    assert_eq!(net.stats().counter("vmsc.assignment_blocked"), 1);
    assert_eq!(
        net.node::<Vmsc>(zone.vmsc).unwrap().active_calls(),
        1,
        "no leaked call state"
    );
}

/// Gatekeeper admission control: with a zero bandwidth budget every call
/// is rejected with ARJ and both sides clear (paper step 2.5's "it is
/// possible that an ARJ message is received … and the call is released").
#[test]
fn gatekeeper_bandwidth_exhaustion_rejects_calls() {
    let mut net = Network::new(42);
    let mut zone = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            gk_bandwidth: 0,
            ..VgprsZoneConfig::taiwan()
        },
    );
    let ms = zone.add_subscriber(&mut net, "ms1", imsi(1), 0x1, msisdn(1));
    let alias = Msisdn::parse("886220001111").unwrap();
    zone.add_terminal(&mut net, "t1", alias);
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    // Registration itself needs no bandwidth, so it succeeded:
    assert_eq!(net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(), 1);
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: alias,
        }),
    );
    net.run_until_quiescent();
    assert_eq!(
        net.node::<MobileStation>(ms).unwrap().state(),
        MsState::Idle,
        "call rejected and cleared"
    );
    assert!(net.stats().counter("gk.admission_rejected_bandwidth") >= 1);
    assert_eq!(net.node::<Vmsc>(zone.vmsc).unwrap().active_calls(), 0);
    assert_eq!(
        net.node::<Gatekeeper>(zone.gk).unwrap().bandwidth_used(),
        0
    );
}

/// GGSN address-pool exhaustion: registrations beyond the pool size fail
/// with a location-update reject; earlier registrations are unaffected.
#[test]
fn ggsn_pool_exhaustion_fails_late_registrations() {
    let mut net = Network::new(42);
    let zone = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            // /30 ⇒ 3 usable addresses, one burned by the GK route space:
            // hosts .1 .2 .3 of 10.200.0.0/30 → 3 signaling contexts max
            pool: (Ipv4Addr::from_octets(10, 200, 0, 0), 30),
            gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 1, 0, 2), 1719),
            ..VgprsZoneConfig::taiwan()
        },
    );
    let mut mss = Vec::new();
    for i in 0..5u32 {
        let ms = zone.add_subscriber(&mut net, &format!("ms{i}"), imsi(i), 0x10 + u64::from(i), msisdn(i));
        mss.push(ms);
        net.inject(
            SimDuration::from_millis(u64::from(i) * 300),
            ms,
            Message::Cmd(Command::PowerOn),
        );
    }
    net.run_until_quiescent();
    let registered = net.node::<Vmsc>(zone.vmsc).unwrap().registered_count();
    assert_eq!(registered, 3, "exactly the pool size registers");
    assert!(net.stats().counter("ggsn.pool_exhausted") >= 2);
    let rejected = mss
        .iter()
        .filter(|&&ms| net.node::<MobileStation>(ms).unwrap().state() == MsState::Off)
        .count();
    assert_eq!(rejected, 2, "the overflow subscribers were rejected");
}

/// A subscriber barred from international calls is stopped by the VLR's
/// authorization (paper step 2.2), and the MS clears back to idle.
#[test]
fn international_call_barred_by_profile() {
    let mut net = Network::new(42);
    let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    // Provision with a domestic-only profile.
    net.node_mut::<vgprs_gsm::Hlr>(zone.hlr).unwrap().provision(
        imsi(1),
        0x1,
        vgprs_wire::SubscriberProfile::domestic_only(msisdn(1)),
    );
    let ms = zone.add_roamer(&mut net, "ms1", imsi(1), 0x1, msisdn(1));
    zone.add_terminal(&mut net, "t1", Msisdn::parse("447220001111").unwrap());
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            // a UK number: international from Taiwan
            called: Msisdn::parse("447220001111").unwrap(),
        }),
    );
    net.run_until_quiescent();
    assert_eq!(net.stats().counter("vlr.outgoing_call_denied"), 1);
    assert_eq!(net.stats().counter("vmsc.mo_calls_denied"), 1);
    assert_eq!(
        net.node::<MobileStation>(ms).unwrap().state(),
        MsState::Idle
    );
    // …and the same subscriber can still call domestically.
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called: Msisdn::parse("886220009999").unwrap(),
        }),
    );
    net.run_until_quiescent();
    assert_eq!(net.stats().counter("vlr.outgoing_call_authorized"), 1);
}
