//! The classic circuit-switched GSM baseline, end to end: registration,
//! mobile-originated and mobile-terminated calls against the PSTN, and
//! clean release in both directions. This is the system the VMSC
//! replaces, and the "before" side of every comparison.

use vgprs_core::{GsmZone, GsmZoneConfig, LatencyProfile};
use vgprs_gsm::{GsmMsc, MobileStation, MsState};
use vgprs_pstn::{PhoneState, PstnPhone, PstnSwitch, TrunkClass};
use vgprs_sim::{Interface, Network, NodeId, SimDuration};
use vgprs_wire::{CallId, CellId, Command, Imsi, Lai, Message, Msisdn};

struct World {
    net: Network<Message>,
    zone: GsmZone,
    switch: NodeId,
    ms: NodeId,
    ms_msisdn: Msisdn,
    phone: NodeId,
    phone_msisdn: Msisdn,
}

fn build() -> World {
    let mut net = Network::new(42);
    let switch = net.add_node("pstn", PstnSwitch::new("tw"));
    let zone = GsmZone::build(
        &mut net,
        GsmZoneConfig {
            name: "tw".into(),
            country_code: "886".into(),
            home_prefix: "8869".into(),
            msrn_prefix: "8869990".into(),
            lai: Lai::new(466, 92, 1),
            cell: CellId(1),
            tch_capacity: 16,
            auth_on_access: true,
            latency: LatencyProfile::default(),
        },
        switch,
    );
    let ms_msisdn = Msisdn::parse("886912000001").unwrap();
    let ms = zone.add_subscriber(
        &mut net,
        "ms1",
        Imsi::parse("466920000000001").unwrap(),
        0xABCD,
        ms_msisdn,
    );
    let phone_msisdn = Msisdn::parse("886221230001").unwrap();
    let phone = net.add_node("phone", PstnPhone::new(phone_msisdn, switch));
    net.connect(phone, switch, Interface::Isup, SimDuration::from_millis(5));
    {
        let s = net.node_mut::<PstnSwitch>(switch).unwrap();
        // Fixed line lives on the switch; mobile numbers route to the
        // MSC: the home prefix for GMSC interrogation, the MSRN prefix
        // for delivery legs.
        s.add_route("88622", phone, TrunkClass::Local);
        s.add_route("8869", zone.msc, TrunkClass::Local);
    }
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    World {
        net,
        zone,
        switch,
        ms,
        ms_msisdn,
        phone,
        phone_msisdn,
    }
}

#[test]
fn classic_registration_completes() {
    let w = build();
    let m = w.net.node::<MobileStation>(w.ms).unwrap();
    assert_eq!(m.state(), MsState::Idle);
    assert!(m.tmsi().is_some());
    assert!(w.net.trace().contains_subsequence(&[
        "Um_Location_Update_Request",
        "MAP_Update_Location_Area",
        "MAP_Update_Location",
        "MAP_Insert_Subs_Data",
        "MAP_Update_Location_Area_ack",
        "Um_Location_Update_Accept",
    ]));
    // Crucially, NO GPRS or H.323 involvement in classic GSM:
    assert!(!w.net.trace().labels().iter().any(|l| l.starts_with("GPRS")
        || l.starts_with("RAS")
        || l.contains("PDP")));
}

#[test]
fn classic_mo_call_to_fixed_line() {
    let mut w = build();
    w.net.trace_mut().clear();
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: w.phone_msisdn,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(8));
    assert_eq!(w.net.node::<MobileStation>(w.ms).unwrap().state(), MsState::Active);
    assert_eq!(w.net.node::<PstnPhone>(w.phone).unwrap().state(), PhoneState::Active);
    assert!(w.net.trace().contains_subsequence(&[
        "Um_CM_Service_Request",
        "Um_Setup",
        "MAP_Send_Info_For_Outgoing_Call",
        "ISUP_IAM",
        "ISUP_ACM",
        "Um_Alerting",
        "ISUP_ANM",
        "Um_Connect",
    ]));
    // Voice flows both ways over the circuit path.
    let m = w.net.node::<MobileStation>(w.ms).unwrap();
    let p = w.net.node::<PstnPhone>(w.phone).unwrap();
    assert!(m.frames_received > 50, "{}", m.frames_received);
    assert!(p.frames_received > 50, "{}", p.frames_received);
}

#[test]
fn classic_mt_call_via_gmsc_and_msrn() {
    let mut w = build();
    w.net.trace_mut().clear();
    // The fixed line dials the mobile: switch → MSC (home prefix, GMSC
    // role) → HLR SRI → MSRN → second leg → paging → delivery.
    let called = w.ms_msisdn;
    w.net.inject(
        SimDuration::ZERO,
        w.phone,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(10));
    assert_eq!(w.net.node::<MobileStation>(w.ms).unwrap().state(), MsState::Active);
    assert_eq!(w.net.node::<PstnPhone>(w.phone).unwrap().state(), PhoneState::Active);
    assert!(w.net.trace().contains_subsequence(&[
        "ISUP_IAM",                        // phone → switch → GMSC
        "MAP_Send_Routing_Information",    // GMSC → HLR
        "MAP_Provide_Roaming_Number",      // HLR → VLR
        "MAP_Send_Routing_Information_ack",
        "ISUP_IAM",                        // GMSC → switch → serving MSC
        "MAP_Send_Info_For_Incoming_Call", // MSRN resolution
        "A_Paging",
        "Um_Paging_Response",
        "Um_Alerting",
        "ISUP_ACM",
        "Um_Connect",
        "ISUP_ANM",
    ]));
}

#[test]
fn classic_release_from_each_side() {
    // MS hangs up.
    let mut w = build();
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: w.phone_msisdn,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(6));
    w.net.inject(SimDuration::ZERO, w.ms, Message::Cmd(Command::Hangup));
    w.net.run_until_quiescent();
    assert_eq!(w.net.node::<MobileStation>(w.ms).unwrap().state(), MsState::Idle);
    assert_eq!(w.net.node::<PstnPhone>(w.phone).unwrap().state(), PhoneState::Idle);
    assert_eq!(w.net.node::<GsmMsc>(w.zone.msc).unwrap().active_calls(), 0);
    assert_eq!(w.net.node::<PstnSwitch>(w.switch).unwrap().active_calls(), 0);

    // Fixed line hangs up.
    let mut w = build();
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: w.phone_msisdn,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(6));
    w.net
        .inject(SimDuration::ZERO, w.phone, Message::Cmd(Command::Hangup));
    w.net.run_until_quiescent();
    assert_eq!(w.net.node::<MobileStation>(w.ms).unwrap().state(), MsState::Idle);
    assert_eq!(w.net.node::<GsmMsc>(w.zone.msc).unwrap().active_calls(), 0);
}

#[test]
fn classic_call_to_unreachable_number_cleared() {
    let mut w = build();
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::Dial {
            call: CallId(3),
            called: Msisdn::parse("85299999999").unwrap(), // no route
        }),
    );
    w.net.run_until_quiescent();
    assert_eq!(w.net.node::<MobileStation>(w.ms).unwrap().state(), MsState::Idle);
    assert_eq!(w.net.stats().counter("pstn.unroutable"), 1);
    assert_eq!(w.net.node::<GsmMsc>(w.zone.msc).unwrap().active_calls(), 0);
}

#[test]
fn classic_paging_timeout_when_ms_unreachable() {
    // The MS powers off without an IMSI detach (battery pulled): the VLR
    // still considers it registered, so an incoming call pages into the
    // void until the paging timer clears the trunk.
    let mut w = build();
    w.net
        .inject(SimDuration::ZERO, w.ms, Message::Cmd(Command::PowerOff));
    w.net.run_until_quiescent();
    let called = w.ms_msisdn;
    w.net.inject(
        SimDuration::ZERO,
        w.phone,
        Message::Cmd(Command::Dial {
            call: CallId(4),
            called,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(30));
    assert_eq!(w.net.stats().counter("msc.paging_timeouts"), 1);
    assert_eq!(
        w.net.node::<PstnPhone>(w.phone).unwrap().state(),
        PhoneState::Idle,
        "the caller's trunk was released"
    );
    assert_eq!(w.net.node::<GsmMsc>(w.zone.msc).unwrap().active_calls(), 0);
    assert_eq!(w.net.node::<PstnSwitch>(w.switch).unwrap().active_calls(), 0);
}
