//! Idle-mode mobility across vGPRS serving areas: a subscriber moves from
//! one VMSC's location area to another's, re-registers end to end (GSM
//! location update → HLR relocation → GPRS attach → gatekeeper
//! re-registration), and remains reachable at the new area.

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{Hlr, MobileStation, MsState, Vlr};
use vgprs_h323::Gatekeeper;
use vgprs_sim::{Interface, Network, SimDuration};
use vgprs_wire::{CallId, CellId, Command, Imsi, Ipv4Addr, Lai, Message, Msisdn, TransportAddr};

struct TwoAreas {
    net: Network<Message>,
    zone1: VgprsZone,
    zone2: VgprsZone,
    ms: vgprs_sim::NodeId,
    imsi: Imsi,
    msisdn: Msisdn,
}

fn build() -> TwoAreas {
    let mut net = Network::new(42);
    let zone1 = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let zone2 = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            name: "tw2".into(),
            lai: Lai::new(466, 92, 2),
            cell: CellId(2),
            msrn_prefix: "8869991".into(),
            pool: (Ipv4Addr::from_octets(10, 201, 0, 0), 16),
            gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 2, 0, 2), 1719),
            ..VgprsZoneConfig::taiwan()
        },
    );
    // Zone 2's subscribers are homed in zone 1's HLR (one operator, one
    // HLR, two serving areas).
    net.connect(zone2.vlr, zone1.hlr, Interface::D, SimDuration::from_millis(5));
    net.node_mut::<Vlr>(zone2.vlr)
        .unwrap()
        .add_hlr_route("466", zone1.hlr);

    let imsi = Imsi::parse("466920000000001").unwrap();
    let msisdn = Msisdn::parse("886912000001").unwrap();
    let ms = zone1.add_subscriber(&mut net, "ms1", imsi, 0xABCD, msisdn);
    // The MS can also camp on zone 2's cell.
    net.connect(ms, zone2.bts, Interface::Um, SimDuration::from_millis(5));
    net.node_mut::<vgprs_gsm::Bts>(zone2.bts)
        .unwrap()
        .register_ms(ms);
    net.node_mut::<MobileStation>(ms)
        .unwrap()
        .add_neighbor(CellId(2), zone2.bts);

    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    TwoAreas {
        net,
        zone1,
        zone2,
        ms,
        imsi,
        msisdn,
    }
}

#[test]
fn idle_movement_relocates_the_subscriber() {
    let mut w = build();
    assert_eq!(
        w.net.node::<Vmsc>(w.zone1.vmsc).unwrap().registered_count(),
        1
    );
    // Walk into the second location area while idle.
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    w.net.run_until_quiescent();

    // The MS re-registered through zone 2's VMSC.
    assert_eq!(
        w.net.node::<MobileStation>(w.ms).unwrap().state(),
        MsState::Idle
    );
    assert_eq!(
        w.net.node::<Vmsc>(w.zone2.vmsc).unwrap().registered_count(),
        1,
        "registered at the new serving area"
    );
    // The HLR relocated the subscriber and purged the old VLR.
    assert_eq!(
        w.net.node::<Hlr>(w.zone1.hlr).unwrap().serving_vlr(&w.imsi),
        Some(w.zone2.vlr)
    );
    assert_eq!(
        w.net.node::<Vlr>(w.zone1.vlr).unwrap().visitor_count(),
        0,
        "MAP_Cancel_Location purged the old VLR"
    );
    assert!(w.net.trace().contains_subsequence(&[
        "Um_Location_Update_Request",
        "MAP_Cancel_Location",
        "GPRS_Attach_Request",
        "RAS_RRQ",
        "Um_Location_Update_Accept",
    ]));
    // Zone 2's gatekeeper now translates the alias.
    assert!(w
        .net
        .node::<Gatekeeper>(w.zone2.gk)
        .unwrap()
        .lookup(&w.msisdn)
        .is_some());
}

#[test]
fn after_movement_calls_reach_the_new_area() {
    let mut w = build();
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    w.net.run_until_quiescent();

    // A terminal in zone 2 calls the subscriber.
    let term = {
        let mut z2 = w.zone2.clone();
        let t = z2.add_terminal(&mut w.net, "term2", Msisdn::parse("886220002222").unwrap());
        w.net.run_until_quiescent();
        t
    };
    let called = w.msisdn;
    w.net.inject(
        SimDuration::ZERO,
        term,
        Message::Cmd(Command::Dial {
            call: CallId(5),
            called,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(10));
    assert_eq!(
        w.net.node::<MobileStation>(w.ms).unwrap().state(),
        MsState::Active,
        "the incoming call found the subscriber in the new area"
    );
    assert!(w.net.node::<MobileStation>(w.ms).unwrap().frames_received > 50);
}

#[test]
fn relocation_purges_the_old_serving_area() {
    // When the subscriber re-registers in area 2, the HLR's
    // MAP_Cancel_Location reaches area 1's VLR, which tells the old VMSC
    // to purge: the stale gatekeeper alias is unregistered (URQ) and the
    // leftover signaling PDP context is deactivated. A zone-1 caller is
    // then rejected immediately instead of paging into the void.
    let mut w = build();
    assert_eq!(
        w.net
            .node::<vgprs_gprs::Sgsn>(w.zone1.sgsn)
            .unwrap()
            .active_pdp_count(),
        1,
        "precondition: one signaling context at area 1"
    );
    w.net.inject(
        SimDuration::ZERO,
        w.ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    w.net.run_until_quiescent();

    // Old area fully cleaned.
    assert_eq!(w.net.stats().counter("vmsc.purged"), 1);
    assert!(w.net.trace().contains_subsequence(&["MAP_Purge_MS", "RAS_URQ", "RAS_UCF"]));
    assert_eq!(
        w.net
            .node::<vgprs_gprs::Sgsn>(w.zone1.sgsn)
            .unwrap()
            .active_pdp_count(),
        0,
        "the old signaling context was released"
    );
    assert!(
        w.net
            .node::<Gatekeeper>(w.zone1.gk)
            .unwrap()
            .lookup(&w.msisdn)
            .is_none(),
        "the stale alias was unregistered"
    );

    // A zone-1 caller now fails fast (unknown alias) rather than paging.
    let term1 = {
        let mut z1 = w.zone1.clone();
        let t = z1.add_terminal(&mut w.net, "term1", Msisdn::parse("886220003333").unwrap());
        w.net.run_until_quiescent();
        t
    };
    let called = w.msisdn;
    w.net.inject(
        SimDuration::ZERO,
        term1,
        Message::Cmd(Command::Dial {
            call: CallId(6),
            called,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(5));
    assert_eq!(
        w.net
            .node::<vgprs_h323::H323Terminal>(term1)
            .unwrap()
            .calls_failed,
        1,
        "admission rejected for the departed alias"
    );
    assert_eq!(w.net.stats().counter("vmsc.paging_timeouts"), 0);
    assert_eq!(w.net.node::<Vmsc>(w.zone1.vmsc).unwrap().active_calls(), 0);
}

#[test]
fn unreachable_ms_paging_times_out() {
    // Battery pulled (no detach, no relocation): the registration stays
    // valid everywhere, so an incoming call pages — and must give up via
    // the paging timer instead of wedging the caller.
    let mut w = build();
    w.net
        .inject(SimDuration::ZERO, w.ms, Message::Cmd(Command::PowerOff));
    w.net.run_until_quiescent();
    let term1 = {
        let mut z1 = w.zone1.clone();
        let t = z1.add_terminal(&mut w.net, "term1", Msisdn::parse("886220003333").unwrap());
        w.net.run_until_quiescent();
        t
    };
    let called = w.msisdn;
    w.net.inject(
        SimDuration::ZERO,
        term1,
        Message::Cmd(Command::Dial {
            call: CallId(6),
            called,
        }),
    );
    w.net.run_until(w.net.now() + SimDuration::from_secs(30));
    assert_eq!(w.net.stats().counter("vmsc.paging_timeouts"), 1);
    assert_eq!(
        w.net
            .node::<vgprs_h323::H323Terminal>(term1)
            .unwrap()
            .state(),
        vgprs_h323::TerminalState::Idle,
        "the caller was released"
    );
    assert_eq!(w.net.node::<Vmsc>(w.zone1.vmsc).unwrap().active_calls(), 0);
}
