//! Degraded-transport behavior: packet loss and jitter on the H.323
//! zone's IP segments hurt voice (measurably, via the E-model) but never
//! destabilize signaling or leak state.

use vgprs_bench::scenarios::SingleZone;
use vgprs_core::Vmsc;
use vgprs_gsm::{MobileStation, MsState};
use vgprs_media::{EModel, Vocoder};
use vgprs_sim::{LinkQuality, SimDuration};
use vgprs_wire::CallId;

/// Runs a call with the given Gi/Gn link quality; returns
/// (ms_frames, terminal_frames, mean_delay_ms).
fn run_with_quality(quality: Option<LinkQuality>) -> (u64, u64, f64) {
    let mut s = SingleZone::build(42);
    if let Some(q) = quality {
        // Degrade the packet core links that carry the tunneled voice.
        s.net.set_link_quality(s.zone.ggsn, s.zone.router, q);
        s.net.set_link_quality(s.zone.sgsn, s.zone.ggsn, q);
    }
    s.call_from_ms(CallId(1), SimDuration::from_secs(20));
    let ms_frames = s.net.node::<MobileStation>(s.ms).unwrap().frames_received;
    let term_frames = s
        .net
        .node::<vgprs_h323::H323Terminal>(s.term)
        .unwrap()
        .frames_received;
    let delay = s
        .net
        .stats()
        .histogram("term.voice_e2e_ms")
        .map(|h| h.mean())
        .unwrap_or(f64::NAN);
    (ms_frames, term_frames, delay)
}

#[test]
fn packet_loss_degrades_mos_proportionally() {
    let (clean_ms, clean_term, clean_delay) = run_with_quality(None);
    let lossy = LinkQuality::new(SimDuration::from_millis(3)).with_loss(0.05);
    let (lossy_ms, lossy_term, lossy_delay) = run_with_quality(Some(lossy));

    // Signaling survived in both runs (the calls connected and talked).
    assert!(clean_term > 800, "{clean_term}");
    assert!(lossy_term > 500, "{lossy_term}");
    // ~5 % loss per link, two lossy links ⇒ ≈10 % fewer frames end to end.
    let ratio = lossy_term as f64 / clean_term as f64;
    assert!(
        (0.82..=0.97).contains(&ratio),
        "two 5%-loss hops should strip ≈10% of frames: ratio {ratio}"
    );
    // Score both with the E-model: loss must cost well over a MOS point.
    let model = EModel::for_codec(&Vocoder::gsm_full_rate());
    let m2e = |d: f64| SimDuration::from_micros(((d + 80.0) * 1000.0) as u64);
    let clean_mos = model.mos(m2e(clean_delay), 0.0);
    let lossy_mos = model.mos(m2e(lossy_delay), 1.0 - ratio);
    assert!(
        clean_mos - lossy_mos > 0.5,
        "loss must show up in MOS: {clean_mos} vs {lossy_mos}"
    );
    let _ = (clean_ms, lossy_ms);
}

#[test]
fn jitter_inflates_tail_delay_only() {
    let jittery =
        LinkQuality::new(SimDuration::from_millis(3)).with_jitter(SimDuration::from_millis(30));
    let mut s = SingleZone::build(42);
    s.net.set_link_quality(s.zone.ggsn, s.zone.router, jittery);
    s.call_from_ms(CallId(1), SimDuration::from_secs(20));
    // Everything still works…
    assert_eq!(
        s.net.node::<MobileStation>(s.ms).unwrap().state(),
        MsState::Active
    );
    assert_eq!(s.net.node::<Vmsc>(s.zone.vmsc).unwrap().active_calls(), 1);
    // …but the delay distribution spread out.
    let h = s.net.stats().histogram("term.voice_e2e_ms").unwrap();
    assert!(
        h.percentile(95.0) - h.percentile(5.0) > 15.0,
        "30 ms of jitter must widen the spread: p5 {} p95 {}",
        h.percentile(5.0),
        h.percentile(95.0)
    );
}
