//! The paper's own rejected design variant, measured: "vGPRS registration
//! and call procedures can be easily modified to deactivate the PDP
//! contexts when the MSs are idle. However, this approach may
//! significantly increase the call setup time" (Section 6).

use vgprs_bench::experiments::c2_idle_ablation;
use vgprs_core::{VgprsZone, VgprsZoneConfig};
use vgprs_gprs::Sgsn;
use vgprs_gsm::{MobileStation, MsState};
use vgprs_sim::{Network, SimDuration};
use vgprs_wire::{CallId, Command, Imsi, Message, Msisdn};

#[test]
fn idle_deactivation_increases_setup_time() {
    let r = c2_idle_ablation(42);
    assert!(
        r.idle_mode_mo_ms > r.standard_mo_ms + 10.0,
        "the reactivation round trip must cost real time: {r:?}"
    );
    assert_eq!(r.reactivations, 1, "{r:?}");
}

#[test]
fn idle_mode_frees_sgsn_contexts_between_calls() {
    let mut net = Network::new(42);
    let mut zone = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            deactivate_idle_contexts: true,
            ..VgprsZoneConfig::taiwan()
        },
    );
    let imsi: Imsi = "466920000000001".parse().unwrap();
    let msisdn: Msisdn = "886912000001".parse().unwrap();
    let alias: Msisdn = "886220001111".parse().unwrap();
    let ms = zone.add_subscriber(&mut net, "ms", imsi, 0xABCD, msisdn);
    zone.add_terminal(&mut net, "t", alias);
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    // Registered, but no resident context (unlike standard vGPRS).
    assert_eq!(net.node::<Sgsn>(zone.sgsn).unwrap().active_pdp_count(), 0);
    assert_eq!(net.stats().counter("vmsc.signaling_context_deactivated"), 1);

    // A call still works (context reactivates transparently) …
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: alias,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(8));
    assert_eq!(net.node::<MobileStation>(ms).unwrap().state(), MsState::Active);

    // … and everything is torn down again afterwards.
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::Hangup));
    net.run_until_quiescent();
    assert_eq!(net.node::<MobileStation>(ms).unwrap().state(), MsState::Idle);
    assert_eq!(net.node::<Sgsn>(zone.sgsn).unwrap().active_pdp_count(), 0);
}
