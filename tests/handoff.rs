//! Reproduction of the paper's Figure 9: inter-system handoff with the
//! VMSC as the anchor.

use vgprs_bench::scenarios::{intersystem_handoff, intervmsc_handoff};

#[test]
fn figure9_anchor_vmsc_keeps_voice_flowing() {
    let report = intersystem_handoff(42);
    assert_eq!(report.handoffs_completed, 1, "{report:?}");
    assert!(
        report.frames_before > 100,
        "voice flowed before the move: {report:?}"
    );
    assert!(
        report.frames_after > 100,
        "downlink voice continues through the anchor + E-trunk: {report:?}"
    );
    assert!(
        report.term_frames_after > 100,
        "uplink voice continues from the new cell: {report:?}"
    );
}

#[test]
fn section7_vmsc_to_vmsc_handoff_follows_the_same_procedure() {
    let report = intervmsc_handoff(42);
    assert_eq!(report.handoffs_completed, 1, "{report:?}");
    assert!(report.frames_before > 100, "{report:?}");
    assert!(
        report.frames_after > 100,
        "downlink continues via the target VMSC: {report:?}"
    );
    assert!(
        report.term_frames_after > 100,
        "uplink continues via anchor → H.323: {report:?}"
    );
}
