//! Randomized stress: random subscriber populations and call patterns
//! must never wedge the system, and conservation invariants must hold
//! when the dust settles.
//!
//! These were proptest properties; they are now seeded-loop tests so the
//! workspace builds with zero external dependencies. Each iteration
//! derives its scenario parameters from [`SimRng`], so the case set is
//! deterministic and reproducible from the loop seed alone.

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{MobileStation, MsState};
use vgprs_h323::Gatekeeper;
use vgprs_sim::{Network, SimDuration, SimRng};
use vgprs_wire::{CallId, Command, Imsi, Message, Msisdn};

fn imsi(i: usize) -> Imsi {
    Imsi::parse(&format!("4669200000{i:05}")).unwrap()
}

fn msisdn(i: usize) -> Msisdn {
    Msisdn::parse(&format!("8869120{i:05}")).unwrap()
}

fn alias(i: usize) -> Msisdn {
    Msisdn::parse(&format!("8862200{i:05}")).unwrap()
}

/// Any mix of subscribers, staggered power-ons, call targets and talk
/// times: when every call has been hung up, nothing is leaked.
#[test]
fn random_call_storm_conserves_state() {
    let mut gen = SimRng::new(0xC0FFEE);
    for case in 0..8 {
        let seed = gen.range(0, 1_000);
        let subs = gen.range(2, 8) as usize;
        let dial_stagger_ms = gen.range(1, 800);
        let talk_secs = gen.range(1, 8);

        let mut net = Network::new(seed);
        let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
        let mut mss = Vec::new();
        for i in 0..subs {
            let ms = zone.add_subscriber(
                &mut net,
                &format!("ms{i}"),
                imsi(i),
                0x9000 + i as u64,
                msisdn(i),
            );
            zone.add_terminal(&mut net, &format!("t{i}"), alias(i));
            mss.push(ms);
            net.inject(
                SimDuration::from_millis(i as u64 * 11),
                ms,
                Message::Cmd(Command::PowerOn),
            );
        }
        net.run_until_quiescent();
        assert_eq!(
            net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(),
            subs,
            "case {case}: registration incomplete"
        );

        // Everyone dials a terminal (possibly with heavy overlap).
        for (i, ms) in mss.iter().enumerate() {
            net.inject(
                SimDuration::from_millis(i as u64 * dial_stagger_ms),
                *ms,
                Message::Cmd(Command::Dial {
                    call: CallId(500 + i as u64),
                    called: alias(i),
                }),
            );
        }
        net.run_until(net.now() + SimDuration::from_secs(6 + talk_secs));
        // Everyone hangs up (idle phones ignore the command).
        for ms in &mss {
            net.inject(SimDuration::ZERO, *ms, Message::Cmd(Command::Hangup));
        }
        net.run_until_quiescent();

        // Conservation invariants.
        let vmsc = net.node::<Vmsc>(zone.vmsc).unwrap();
        assert_eq!(vmsc.active_calls(), 0, "case {case}: leaked call state");
        let gk = net.node::<Gatekeeper>(zone.gk).unwrap();
        assert_eq!(
            gk.bandwidth_used(),
            0,
            "case {case}: admissions not disengaged"
        );
        for ms in &mss {
            let m = net.node::<MobileStation>(*ms).unwrap();
            assert_eq!(m.state(), MsState::Idle, "case {case}");
        }
        // Every voice context that was activated was also deactivated.
        let stats = net.stats();
        assert_eq!(
            stats.counter("vmsc.voice_context_requested"),
            stats.counter("vmsc.voice_context_deactivated"),
            "case {case}: voice PDP contexts unbalanced"
        );
        // The signaling contexts stay (the paper's always-on design).
        assert_eq!(stats.counter("sgsn.attaches"), subs as u64, "case {case}");
    }
}

/// Determinism: the same seed yields the same trace, event for event.
#[test]
fn same_seed_same_history() {
    let run = |seed: u64| {
        let mut net = Network::new(seed);
        let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
        let ms = zone.add_subscriber(&mut net, "ms", imsi(0), 0x77, msisdn(0));
        zone.add_terminal(&mut net, "t", alias(0));
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        net.inject(
            SimDuration::ZERO,
            ms,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: alias(0),
            }),
        );
        net.run_until(net.now() + SimDuration::from_secs(6));
        (net.trace().labels().join("|"), net.now())
    };
    let mut gen = SimRng::new(0xBEEF);
    for _ in 0..4 {
        let seed = gen.range(0, 10_000);
        assert_eq!(run(seed), run(seed), "seed {seed}");
    }
}
