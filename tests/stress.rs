//! Property-based stress: random subscriber populations and call
//! patterns must never wedge the system, and conservation invariants
//! must hold when the dust settles.

use proptest::prelude::*;
use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{MobileStation, MsState};
use vgprs_h323::Gatekeeper;
use vgprs_sim::{Network, SimDuration};
use vgprs_wire::{CallId, Command, Imsi, Message, Msisdn};

fn imsi(i: usize) -> Imsi {
    Imsi::parse(&format!("4669200000{i:05}")).unwrap()
}

fn msisdn(i: usize) -> Msisdn {
    Msisdn::parse(&format!("8869120{i:05}")).unwrap()
}

fn alias(i: usize) -> Msisdn {
    Msisdn::parse(&format!("8862200{i:05}")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case builds and runs a full network
        ..ProptestConfig::default()
    })]

    /// Any mix of subscribers, staggered power-ons, call targets and talk
    /// times: when every call has been hung up, nothing is leaked.
    #[test]
    fn random_call_storm_conserves_state(
        seed in 0u64..1_000,
        subs in 2usize..8,
        dial_stagger_ms in 1u64..800,
        talk_secs in 1u64..8,
    ) {
        let mut net = Network::new(seed);
        let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
        let mut mss = Vec::new();
        for i in 0..subs {
            let ms = zone.add_subscriber(
                &mut net,
                &format!("ms{i}"),
                imsi(i),
                0x9000 + i as u64,
                msisdn(i),
            );
            zone.add_terminal(&mut net, &format!("t{i}"), alias(i));
            mss.push(ms);
            net.inject(
                SimDuration::from_millis(i as u64 * 11),
                ms,
                Message::Cmd(Command::PowerOn),
            );
        }
        net.run_until_quiescent();
        prop_assert_eq!(
            net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(),
            subs
        );

        // Everyone dials a terminal (possibly with heavy overlap).
        for (i, ms) in mss.iter().enumerate() {
            net.inject(
                SimDuration::from_millis(i as u64 * dial_stagger_ms),
                *ms,
                Message::Cmd(Command::Dial {
                    call: CallId(500 + i as u64),
                    called: alias(i),
                }),
            );
        }
        net.run_until(net.now() + SimDuration::from_secs(6 + talk_secs));
        // Everyone hangs up (idle phones ignore the command).
        for ms in &mss {
            net.inject(SimDuration::ZERO, *ms, Message::Cmd(Command::Hangup));
        }
        net.run_until_quiescent();

        // Conservation invariants.
        let vmsc = net.node::<Vmsc>(zone.vmsc).unwrap();
        prop_assert_eq!(vmsc.active_calls(), 0, "no leaked call state");
        let gk = net.node::<Gatekeeper>(zone.gk).unwrap();
        prop_assert_eq!(gk.bandwidth_used(), 0, "all admissions disengaged");
        for ms in &mss {
            let m = net.node::<MobileStation>(*ms).unwrap();
            prop_assert_eq!(m.state(), MsState::Idle);
        }
        // Every voice context that was activated was also deactivated.
        let stats = net.stats();
        prop_assert_eq!(
            stats.counter("vmsc.voice_context_requested"),
            stats.counter("vmsc.voice_context_deactivated"),
            "voice PDP contexts balanced"
        );
        // The signaling contexts stay (the paper's always-on design).
        prop_assert_eq!(stats.counter("sgsn.attaches"), subs as u64);
    }

    /// Determinism: the same seed yields the same trace, event for event.
    #[test]
    fn same_seed_same_history(seed in 0u64..10_000) {
        let run = |seed: u64| {
            let mut net = Network::new(seed);
            let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
            let ms = zone.add_subscriber(&mut net, "ms", imsi(0), 0x77, msisdn(0));
            zone.add_terminal(&mut net, "t", alias(0));
            net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
            net.run_until_quiescent();
            net.inject(
                SimDuration::ZERO,
                ms,
                Message::Cmd(Command::Dial {
                    call: CallId(1),
                    called: alias(0),
                }),
            );
            net.run_until(net.now() + SimDuration::from_secs(6));
            (net.trace().labels().join("|"), net.now())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
