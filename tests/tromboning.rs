//! Reproduction of the paper's Figures 7 and 8: tromboning in classic
//! GSM call delivery to a roamer, and its elimination by vGPRS with a
//! visited-network gatekeeper.

use vgprs_bench::scenarios::{tromboning_classic, tromboning_vgprs};

#[test]
fn figure7_classic_gsm_uses_two_international_trunks() {
    let report = tromboning_classic(42);
    assert!(report.connected, "the roamer call must connect: {report:?}");
    assert_eq!(
        report.international_trunks, 2,
        "Figure 7: the call setup results in two international calls: {report:?}"
    );
}

#[test]
fn figure8_vgprs_call_is_local() {
    let report = tromboning_vgprs(42, true);
    assert!(report.connected, "the roamer call must connect: {report:?}");
    assert_eq!(
        report.international_trunks, 0,
        "Figure 8: the call from y to x is a local phone call: {report:?}"
    );
    assert!(report.local_trunks >= 1, "{report:?}");
}

#[test]
fn figure8_fallback_when_gatekeeper_misses() {
    // x never registered in HK: the gateway's admission fails and the
    // switch cranks the call back onto the normal international route
    // ("the GK will instruct y to connect to the international telephone
    // network as a normal PSTN call").
    let report = tromboning_vgprs(42, false);
    assert!(
        !report.connected,
        "x is nowhere to be found, so the call cannot complete: {report:?}"
    );
    assert!(
        report.international_trunks >= 1,
        "the fallback route is international: {report:?}"
    );
}

#[test]
fn vgprs_roaming_call_is_cheaper() {
    let classic = tromboning_classic(7);
    let vgprs = tromboning_vgprs(7, true);
    assert!(classic.connected && vgprs.connected);
    assert!(
        vgprs.trunk_cost_60s < classic.trunk_cost_60s / 10.0,
        "eliminating two international trunks must slash the cost: \
         classic {:.1} vs vgprs {:.1}",
        classic.trunk_cost_60s,
        vgprs.trunk_cost_60s
    );
}
