//! Reproduction of the paper's architecture figures (1–3) as checkable
//! invariants: which elements exist, which interfaces carry traffic, and
//! which protocol rides which link.

use vgprs_bench::experiments::interface_usage;
use vgprs_bench::scenarios::SingleZone;
use vgprs_sim::{Interface, SimDuration};
use vgprs_wire::CallId;

/// Figure 1: the GPRS data path MS → BSS → SGSN → GGSN → PSDN, shown by
/// the registration's RRQ packet traversing Gb → Gn → Gi in order.
#[test]
fn figure1_data_path_traversal() {
    let s = SingleZone::build(42);
    let t = s.net.trace();
    // (The H.323 terminal also sends an RRQ at start-up; index-order the
    // MS's RRQ through its three encapsulation stages instead of using
    // first-occurrence times.)
    let gb = t.find_label("LLC:RAS_RRQ", 0).expect("RRQ on Gb");
    let gn = t.find_label("GTP:RAS_RRQ", gb).expect("RRQ tunneled on Gn");
    let lan = t.find_label("RAS_RRQ", gn).expect("RRQ on the LAN");
    assert!(gb < gn && gn < lan, "Gb → Gn → Gi ordering: {gb} {gn} {lan}");
}

/// Figure 2(a): the VMSC's interfaces. One register + call cycle must
/// exercise A (BSC), B (VLR), Gb (SGSN) — plus Gn/Gi/LAN beyond it — and
/// the air + Abis legs.
#[test]
fn figure2_interfaces_carry_traffic() {
    let rows = interface_usage(42);
    let count = |iface: Interface| {
        rows.iter()
            .find(|r| r.interface == iface)
            .map(|r| r.messages)
            .unwrap_or(0)
    };
    for iface in [
        Interface::Um,
        Interface::Abis,
        Interface::A,
        Interface::B,
        Interface::D,
        Interface::Gb,
        Interface::Gn,
        Interface::Gi,
        Interface::Lan,
    ] {
        assert!(count(iface) > 0, "interface {iface} carried no traffic");
    }
    // And the ones a single-zone cycle must NOT touch:
    for iface in [Interface::E, Interface::Isup] {
        assert_eq!(count(iface), 0, "interface {iface} unexpectedly used");
    }
}

/// Figure 2(b): the voice path is (1)(2)(5)(6)(4) — circuit-switched up
/// to the VMSC, packet beyond. Evidence: during a call, voice frames
/// cross Um/Abis/A as `Voice_Frame` and Gb/Gn as RTP-in-tunnel, and RTP
/// never appears on the A interface or voice frames on Gn.
#[test]
fn figure2_voice_path_split() {
    let mut s = SingleZone::build(42);
    s.call_from_ms(CallId(1), SimDuration::from_secs(3));
    // Media is untraced by design; use the stats instead.
    let stats = s.net.stats();
    assert!(
        stats.counter("ms.voice_frames_received") > 0,
        "circuit voice reached the MS"
    );
    assert!(
        stats.counter("term.rtp_received") > 0,
        "RTP reached the terminal"
    );
    // The MS never sees RTP and the terminal never sees TCH frames:
    assert_eq!(stats.counter("ms.unexpected_message"), 0);
    assert_eq!(stats.counter("term.unexpected_message"), 0);
}

/// Figure 3: protocol layering. H.323 messages cross Gb wrapped in LLC
/// and Gn wrapped in GTP; they appear unwrapped only on LAN/Gi links.
#[test]
fn figure3_encapsulation_per_link() {
    let mut s = SingleZone::build(42);
    s.net.trace_mut().clear();
    s.call_from_ms(CallId(1), SimDuration::from_secs(1));
    for (label, iface) in s.net.trace().labeled_interfaces() {
        if label.starts_with("LLC:") {
            assert_eq!(iface, Interface::Gb, "LLC framing only on Gb: {label}");
        }
        if label.starts_with("GTP:") {
            assert_eq!(iface, Interface::Gn, "GTP tunnel only on Gn: {label}");
        }
        if label.starts_with("RAS_") || label.starts_with("Q931_") {
            assert!(
                matches!(iface, Interface::Lan | Interface::Gi),
                "bare H.323 only on IP links: {label} on {iface}"
            );
        }
        if label.starts_with("Um_") {
            assert_eq!(iface, Interface::Um);
        }
        if label.starts_with("MAP_") {
            assert!(iface.is_ss7(), "MAP only on SS7 interfaces: {label} on {iface}");
        }
    }
}

/// The paper's confidentiality invariant, checked structurally: no
/// message that crosses a LAN/Gi link during registration + call ever
/// contains the subscriber's IMSI digits.
#[test]
fn imsi_never_crosses_into_the_h323_domain() {
    let s = SingleZone::build(42);
    let imsi_digits = s.ms_imsi.to_string();
    // Structural scan: the full debug rendering of every message that
    // crossed a LAN/Gi link must be free of the IMSI digits …
    for iface in [Interface::Lan, Interface::Gi] {
        assert!(
            !s.net.trace().any_on_interface_contains(iface, &imsi_digits),
            "IMSI leaked onto {iface}"
        );
        // … while the SS7/GPRS side legitimately carries it:
    }
    assert!(
        s.net
            .trace()
            .any_on_interface_contains(Interface::B, &imsi_digits),
        "sanity: the B interface does carry the IMSI"
    );
    assert_eq!(s.net.stats().counter("gk.imsi_disclosures"), 0);
}

/// Air-interface identity confidentiality (GSM 03.20): after the first
/// registration allocates a TMSI, paging for incoming calls uses the
/// TMSI, keeping the IMSI off the air.
#[test]
fn paging_uses_tmsi_not_imsi() {
    let mut s = SingleZone::build(42);
    // The very first registration legitimately sends the IMSI once (no
    // TMSI exists yet); scope the check to everything after it.
    s.net.trace_mut().clear();
    let called = s.ms_msisdn;
    s.net.inject(
        SimDuration::ZERO,
        s.term,
        vgprs_wire::Message::Cmd(vgprs_wire::Command::Dial {
            call: CallId(9),
            called,
        }),
    );
    let deadline = s.net.now() + SimDuration::from_secs(8);
    s.net.run_until(deadline);
    assert!(s.net.trace().count_label("Um_Paging") > 0, "paging happened");
    assert_eq!(s.net.stats().counter("vmsc.paged_by_tmsi"), 1);
    assert_eq!(s.net.stats().counter("vmsc.paged_by_imsi"), 0);
    // Structural: the paging (and everything else in this call flow)
    // kept the IMSI off the air interface.
    let imsi_digits = s.ms_imsi.to_string();
    assert!(!s
        .net
        .trace()
        .any_on_interface_contains(Interface::Um, &imsi_digits));
    // …and the TMSI-paged MS was actually reached.
    assert_eq!(
        s.net
            .node::<vgprs_gsm::MobileStation>(s.ms)
            .unwrap()
            .state(),
        vgprs_gsm::MsState::Active
    );
}
