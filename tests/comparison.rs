//! The Section 6 comparison claims (C1–C5), asserted as *shapes*: who
//! wins, in which direction, and where the crossover falls.

use vgprs_bench::experiments::{
    c1_voice_quality, c2_setup_latency, c3_context_memory, c4_signaling, c5_handoff_cost,
};

#[test]
fn c1_vgprs_voice_survives_load_tr_does_not() {
    let rows = c1_voice_quality(&[1, 4], 42);
    let light = &rows[0];
    let heavy = &rows[1];
    // At light load both systems deliver usable voice.
    assert!(light.vgprs_mos > 3.0, "{light:?}");
    assert!(light.tr_mos > 3.0, "{light:?}");
    // Under load the circuit air interface is unaffected …
    assert!(
        (heavy.vgprs_mos - light.vgprs_mos).abs() < 0.1,
        "vGPRS must be load-invariant: {light:?} vs {heavy:?}"
    );
    // … while the shared packet channel collapses (the paper's
    // "VoIP with required quality can not be satisfied").
    assert!(
        heavy.tr_mos < 2.0,
        "TR must degrade under load: {heavy:?}"
    );
}

#[test]
fn c2_preactivated_context_wins_and_gap_grows_with_core_latency() {
    let rows = c2_setup_latency(&[1, 10], 42);
    for row in &rows {
        assert!(
            row.vgprs_mo_ms < row.tr_mo_ms,
            "pre-activated context must be faster (MO): {row:?}"
        );
        assert!(
            row.vgprs_mt_ms < row.tr_mt_ms,
            "pre-activated context must be faster (MT): {row:?}"
        );
    }
    let gap_1x = rows[0].tr_mo_ms - rows[0].vgprs_mo_ms;
    let gap_10x = rows[1].tr_mo_ms - rows[1].vgprs_mo_ms;
    assert!(
        gap_10x > gap_1x,
        "the per-call activation penalty grows with core latency: {gap_1x} vs {gap_10x}"
    );
}

#[test]
fn c3_vgprs_pays_in_resident_contexts() {
    // The tradeoff the paper concedes: always-on signaling contexts cost
    // SGSN/GGSN memory proportional to *registered* subscribers, while
    // the TR's cost tracks *active* calls only.
    let rows = c3_context_memory(&[(10, 1), (20, 2)], 42);
    for row in &rows {
        assert_eq!(
            row.vgprs_contexts,
            row.subscribers + row.active_calls,
            "one signaling context per subscriber + one voice context per call: {row:?}"
        );
        assert_eq!(
            row.tr_contexts, row.active_calls,
            "TR contexts track active calls only: {row:?}"
        );
    }
}

#[test]
fn c4_confidentiality_and_signaling() {
    let (rows, conf) = c4_signaling(42);
    assert_eq!(conf.vgprs_imsi_disclosures, 0, "vGPRS leaks no IMSI");
    assert_eq!(conf.tr_imsi_disclosures, 1, "TR leaks one IMSI per subscriber");
    // vGPRS spends more signaling (GSM + GPRS + H.323 per procedure) —
    // the honest cost of serving unmodified handsets.
    for row in &rows {
        assert!(
            row.vgprs_messages > 0 && row.tr_messages > 0,
            "both systems signaled: {row:?}"
        );
    }
}

#[test]
fn c5_anchor_adds_bounded_detour() {
    let r = c5_handoff_cost(42);
    assert_eq!(r.handoffs, 1);
    assert!(
        r.delay_after_ms > r.delay_before_ms,
        "the anchor + E-trunk path is longer: {r:?}"
    );
    assert!(
        r.delay_after_ms - r.delay_before_ms < 20.0,
        "but only by roughly the inter-MSC trunk latency: {r:?}"
    );
}
