//! Quickstart: bring up a complete vGPRS network, register a standard GSM
//! handset, and place a voice call to an H.323 terminal.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vgprs::core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs::gsm::MobileStation;
use vgprs::h323::H323Terminal;
use vgprs::sim::{LadderDiagram, Network, SimDuration};
use vgprs::wire::{CallId, Command, Imsi, Message, Msisdn};

fn main() {
    // 1. Build the serving network of the paper's Figure 2(b): BTS, BSC,
    //    VMSC, VLR, HLR, SGSN, GGSN, PSDN router and gatekeeper.
    let mut net = Network::new(42);
    let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());

    // 2. One ordinary GSM subscriber (no H.323 in the handset!) and one
    //    wireline H.323 terminal.
    let imsi: Imsi = "466920000000001".parse().expect("valid IMSI");
    let msisdn: Msisdn = "886912000001".parse().expect("valid MSISDN");
    let callee: Msisdn = "886220001111".parse().expect("valid alias");
    let ms = zone.add_subscriber(&mut net, "ms", imsi, 0xABCD, msisdn);
    let term = zone.add_terminal(&mut net, "terminal", callee);

    // 3. Power the handset on: GSM location update + GPRS attach +
    //    signaling PDP context + H.323 registration (paper Figure 4).
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    println!("=== Registration (paper Figure 4) ===");
    print!("{}", LadderDiagram::new(net.trace()).render());

    // 4. Dial. The air interface stays circuit-switched; the VMSC
    //    transcodes to RTP and carries it through the GPRS tunnel.
    net.trace_mut().clear();
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: callee,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(8));
    println!("\n=== Call origination (paper Figure 5) ===");
    print!("{}", LadderDiagram::new(net.trace()).render());

    // 5. Hang up and inspect the outcome.
    net.trace_mut().clear();
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::Hangup));
    net.run_until_quiescent();

    let handset = net.node::<MobileStation>(ms).expect("ms");
    let terminal = net.node::<H323Terminal>(term).expect("terminal");
    let vmsc = net.node::<Vmsc>(zone.vmsc).expect("vmsc");
    println!("\n=== Outcome ===");
    println!("handset connected calls : {}", handset.calls_connected);
    println!("handset frames heard    : {}", handset.frames_received);
    println!("terminal frames heard   : {}", terminal.frames_received);
    println!("VMSC registered MSs     : {}", vmsc.registered_count());
    println!(
        "voice one-way delay     : {:.1} ms (mean at terminal)",
        net.stats()
            .histogram("term.voice_e2e_ms")
            .map(|h| h.mean())
            .unwrap_or(f64::NAN)
    );
}
