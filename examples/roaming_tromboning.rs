//! The paper's headline economics: Figures 7 and 8 side by side.
//!
//! A UK subscriber roams to Hong Kong. Someone in Hong Kong calls their
//! UK number. Classic GSM hauls the call to the UK and back (two
//! international trunks); vGPRS with a visited-network gatekeeper keeps
//! it local.
//!
//! ```text
//! cargo run --example roaming_tromboning
//! ```

use vgprs_bench::scenarios::{tromboning_classic, tromboning_vgprs};

fn main() {
    println!("A UK subscriber roams to Hong Kong; a Hong Kong caller dials");
    println!("their +44 number. Who pays for international trunks?\n");

    let classic = tromboning_classic(42);
    println!("— classic GSM (paper Figure 7) —");
    println!("  connected             : {}", classic.connected);
    println!("  international trunks  : {}", classic.international_trunks);
    println!("  trunk cost for 60 s   : {:.1} units", classic.trunk_cost_60s);

    let vgprs = tromboning_vgprs(42, true);
    println!("\n— vGPRS with local gatekeeper (paper Figure 8) —");
    println!("  connected             : {}", vgprs.connected);
    println!("  international trunks  : {}", vgprs.international_trunks);
    println!("  local trunks          : {}", vgprs.local_trunks);
    println!("  trunk cost for 60 s   : {:.1} units", vgprs.trunk_cost_60s);

    let fallback = tromboning_vgprs(42, false);
    println!("\n— gatekeeper miss: normal PSTN fallback —");
    println!("  connected             : {}", fallback.connected);
    println!("  international trunks  : {}", fallback.international_trunks);

    println!(
        "\nvGPRS makes the roamer call {:.0}x cheaper.",
        classic.trunk_cost_60s / vgprs.trunk_cost_60s.max(0.01)
    );
}
