//! The paper's Figure 9: inter-system handoff between a VMSC and a
//! classic GSM MSC, with the VMSC as the anchor.
//!
//! ```text
//! cargo run --example handoff
//! ```

use vgprs_bench::experiments::c5_handoff_cost;
use vgprs_bench::scenarios::intersystem_handoff;

fn main() {
    println!("An MS talks through a VMSC, then walks into a cell owned by a");
    println!("neighboring classic GSM MSC. The VMSC anchors the call; voice");
    println!("continues over an inter-MSC trunk (paper Figure 9).\n");

    let r = intersystem_handoff(42);
    println!("handoffs completed      : {}", r.handoffs_completed);
    println!("MS frames before move   : {}", r.frames_before);
    println!("MS frames after move    : {}", r.frames_after);
    println!("terminal frames after   : {}", r.term_frames_after);

    let c = c5_handoff_cost(42);
    println!("\nanchor detour cost (Section 7's coexistence price):");
    println!("  delay before handoff  : {:.2} ms", c.delay_before_ms);
    println!("  delay after handoff   : {:.2} ms", c.delay_after_ms);
    println!(
        "  added per frame       : {:.2} ms",
        c.delay_after_ms - c.delay_before_ms
    );
}
