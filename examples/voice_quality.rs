//! Experiment C1: why the paper insists on the circuit-switched air
//! interface. MOS vs. concurrent calls for vGPRS (dedicated traffic
//! channels) against the TR 22.973 baseline (shared packet channel).
//!
//! ```text
//! cargo run --release --example voice_quality
//! ```

use vgprs_bench::experiments::c1_voice_quality;

fn main() {
    println!("MOS vs. concurrent calls in one cell (GSM-FR, E-model scoring)");
    println!("vGPRS: voice on dedicated TCHs.  TR 22.973: voice on a shared 160 kbit/s PDCH.\n");
    println!(
        "{:>6} | {:>12} {:>7} {:>5} | {:>12} {:>7} {:>5}",
        "calls", "vGPRS delay", "loss", "MOS", "TR delay", "loss", "MOS"
    );
    for row in c1_voice_quality(&[1, 2, 3, 4, 6, 8], 42) {
        println!(
            "{:>6} | {:>10.1}ms {:>6.1}% {:>5.2} | {:>10.1}ms {:>6.1}% {:>5.2}",
            row.calls,
            row.vgprs_delay_ms,
            row.vgprs_loss * 100.0,
            row.vgprs_mos,
            row.tr_delay_ms,
            row.tr_loss * 100.0,
            row.tr_mos
        );
    }
    println!("\nThe TR baseline's MOS collapses once the PDCH saturates;");
    println!("vGPRS stays flat — the paper's \"real-time communication\" claim.");
}
