//! Capacity study: a busy hour at one vGPRS cell. Many subscribers place
//! staggered calls; we watch traffic-channel occupancy, gatekeeper
//! admissions and voice quality hold up (or degrade) under load.
//!
//! ```text
//! cargo run --release --example busy_hour
//! ```

use vgprs::core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs::gsm::MobileStation;
use vgprs::sim::{Network, SimDuration};
use vgprs::wire::{CallId, Command, Imsi, Message, Msisdn};

fn main() {
    let subscribers = 24;
    let tch_capacity = 8; // deliberately scarce: blocking will happen
    let mut net = Network::new(7);
    let mut zone = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            tch_capacity,
            ..VgprsZoneConfig::taiwan()
        },
    );

    let mut mss = Vec::new();
    for i in 0..subscribers {
        let imsi: Imsi = format!("4669200001000{i:02}").parse().expect("valid");
        let msisdn: Msisdn = format!("88691210{i:04}").parse().expect("valid");
        let alias: Msisdn = format!("88622010{i:04}").parse().expect("valid");
        let ms = zone.add_subscriber(&mut net, &format!("ms{i}"), imsi, 0x3000 + i, msisdn);
        zone.add_terminal(&mut net, &format!("t{i}"), alias);
        mss.push((ms, alias));
        net.inject(
            SimDuration::from_millis(i * 9),
            ms,
            Message::Cmd(Command::PowerOn),
        );
    }
    net.run_until_quiescent();
    println!(
        "{} subscribers registered through one VMSC ({} TCHs in the cell)",
        net.node::<Vmsc>(zone.vmsc).expect("vmsc").registered_count(),
        tch_capacity
    );

    // Everyone tries to call within the same minute.
    for (i, (ms, alias)) in mss.iter().enumerate() {
        net.inject(
            SimDuration::from_millis(i as u64 * 400),
            *ms,
            Message::Cmd(Command::Dial {
                call: CallId(1000 + i as u64),
                called: *alias,
            }),
        );
    }
    net.run_until(net.now() + SimDuration::from_secs(40));

    let connected: u64 = mss
        .iter()
        .map(|(ms, _)| net.node::<MobileStation>(*ms).expect("ms").calls_connected)
        .sum();
    println!("\ncalls attempted          : {subscribers}");
    println!("calls connected          : {connected}");
    println!(
        "blocked at the cell      : {} (no traffic channel)",
        net.stats().counter("bsc.tch_blocked")
    );
    println!(
        "gatekeeper admissions    : {}",
        net.stats().counter("gk.admissions")
    );
    println!(
        "voice contexts activated : {}",
        net.stats().counter("vmsc.voice_context_requested")
    );
    if let Some(h) = net.stats().histogram("term.voice_e2e_ms") {
        println!(
            "voice delay (connected)  : mean {:.1} ms, p95 {:.1} ms",
            h.mean(),
            h.percentile(95.0)
        );
    }
    println!("\nScarce radio blocks excess calls at the BSC — the VoIP core");
    println!("never saturates, exactly the division of labor vGPRS intends.");
}
