//! Capacity study: a busy hour at one vGPRS serving area, driven by the
//! `vgprs-load` traffic engine. A population places Poisson call
//! attempts against deliberately scarce radio (8 traffic channels), and
//! the streaming KPI report shows the cell blocking excess calls while
//! the VoIP core stays healthy.
//!
//! ```text
//! cargo run --release --example busy_hour
//! ```

use vgprs::load::{run_load, CallMix, LoadConfig, PopulationConfig};

fn main() {
    let cfg = LoadConfig {
        subscribers: 96,
        shards: 1,     // one serving area, one cell
        threads: 1,
        seed: 7,
        tch_capacity: 8, // deliberately scarce: blocking will happen
        population: PopulationConfig {
            calls_per_sub_hour: 60.0, // everyone calls within the hour...
            window_secs: 60,          // ...compressed into one minute
            mean_hold_secs: 40.0,
            mix: CallMix {
                mo: 0.6,
                mt: 0.3,
                m2m: 0.1,
            },
            mobility_fraction: 0.0,
            ..PopulationConfig::default()
        },
        ..LoadConfig::default()
    };
    let report = run_load(&cfg);
    print!("{}", report.render());

    println!(
        "\n{} attempts met {} traffic channels: {:.1}% blocked at the BSC,",
        report.attempts(),
        cfg.tch_capacity,
        report.blocking_rate() * 100.0
    );
    println!(
        "yet the calls that got a channel scored a {:.2} MOS — scarce radio",
        report.mos()
    );
    println!("blocks excess calls at the cell; the VoIP core never saturates,");
    println!("exactly the division of labor vGPRS intends.");
}
