//! # vgprs-gprs — the GPRS packet core substrate
//!
//! The two GPRS support nodes of the paper's Figure 1 plus the external
//! packet-data network:
//!
//! * [`Sgsn`] — attach/detach, PDP session management toward the
//!   endpoints on Gb, GTP tunneling toward the GGSN on Gn, HLR checks on
//!   Gr,
//! * [`Ggsn`] — PDP context anchor: address allocation (dynamic pool +
//!   provisioned static addresses), tunnel switching, Gi routing, and the
//!   network-requested activation path (with packet buffering) that the
//!   TR 22.973 baseline's call termination depends on,
//! * [`IpRouter`] — the PSDN connecting the GGSN with the H.323 zone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ggsn;
mod router;
mod sgsn;

pub use ggsn::Ggsn;
pub use router::IpRouter;
pub use sgsn::Sgsn;
