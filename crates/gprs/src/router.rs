//! The external packet-data network (PSDN) of the paper's Figure 1: a
//! prefix-routing IP node connecting the GGSN's Gi side with the H.323
//! zone's LAN.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{Ipv4Addr, Message};

/// Deterministic multiply-shift hasher for [`Ipv4Addr`] keys. Avoids
/// SipHash setup per lookup; the seed is fixed so runs stay reproducible
/// regardless of process environment.
#[derive(Default)]
struct HostHasher(u64);

impl Hasher for HostHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

/// A simple longest-prefix IP router.
#[derive(Debug, Default)]
pub struct IpRouter {
    routes: Vec<(Ipv4Addr, u8, NodeId)>,
    /// Host routes (exact address match), checked before prefixes. A hash
    /// map, not a scan: population-scale runs register one host per
    /// wireline terminal, and every routed packet (every RTP frame on the
    /// LAN) pays for this lookup.
    hosts: HashMap<Ipv4Addr, NodeId, BuildHasherDefault<HostHasher>>,
}

impl IpRouter {
    /// Creates a router with an empty table.
    pub fn new() -> Self {
        IpRouter::default()
    }

    /// Adds a prefix route.
    pub fn add_prefix(&mut self, prefix: Ipv4Addr, len: u8, next_hop: NodeId) {
        self.routes.push((prefix, len, next_hop));
    }

    /// Adds a host route for a single address. The first route added for
    /// an address wins, matching the old scan-in-insertion-order lookup.
    pub fn add_host(&mut self, addr: Ipv4Addr, next_hop: NodeId) {
        self.hosts.entry(addr).or_insert(next_hop);
    }

    /// The next hop for `dst`, if any.
    pub fn lookup(&self, dst: Ipv4Addr) -> Option<NodeId> {
        if let Some(&hop) = self.hosts.get(&dst) {
            return Some(hop);
        }
        self.routes
            .iter()
            .filter(|(p, l, _)| dst.in_prefix(*p, *l))
            .max_by_key(|(_, l, _)| *l)
            .map(|&(_, _, hop)| hop)
    }
}

impl Node<Message> for IpRouter {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Lan | Interface::Gi, Message::Ip(packet)) => {
                match self.lookup(packet.dst.ip) {
                    Some(hop) => match packet.forwarded() {
                        Some(p) => ctx.send(hop, Message::Ip(p)),
                        None => ctx.count("router.ttl_expired"),
                    },
                    None => ctx.count("router.no_route"),
                }
            }
            _ => ctx.count("router.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};
    use vgprs_wire::{IpPacket, IpPayload, Msisdn, RasMessage, TransportAddr};

    struct Probe {
        got: Vec<Message>,
    }
    impl Node<Message> for Probe {
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.got.push(m);
        }
    }

    struct Feeder {
        router: NodeId,
        packets: Vec<IpPacket>,
    }
    impl Node<Message> for Feeder {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for p in self.packets.drain(..) {
                ctx.send(self.router, Message::Ip(p));
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            _m: Message,
        ) {
        }
    }

    fn packet_to(dst: Ipv4Addr) -> IpPacket {
        IpPacket::new(
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 1719),
            TransportAddr::new(dst, 1719),
            IpPayload::Ras(RasMessage::Rcf {
                alias: Msisdn::parse("88691234567").unwrap(),
            }),
        )
    }

    #[test]
    fn host_route_beats_prefix() {
        let mut net = Network::new(1);
        let router = net.add_node("router", IpRouter::new());
        let generic = net.add_node("generic", Probe { got: Vec::new() });
        let specific = net.add_node("specific", Probe { got: Vec::new() });
        let target = Ipv4Addr::from_octets(10, 0, 0, 7);
        let f = net.add_node(
            "f",
            Feeder {
                router,
                packets: vec![packet_to(target)],
            },
        );
        net.connect(generic, router, Interface::Lan, SimDuration::from_millis(1));
        net.connect(specific, router, Interface::Lan, SimDuration::from_millis(1));
        net.connect(f, router, Interface::Lan, SimDuration::from_millis(1));
        {
            let r = net.node_mut::<IpRouter>(router).unwrap();
            r.add_prefix(Ipv4Addr::from_octets(10, 0, 0, 0), 8, generic);
            r.add_host(target, specific);
        }
        net.run_until_quiescent();
        assert_eq!(net.node::<Probe>(specific).unwrap().got.len(), 1);
        assert!(net.node::<Probe>(generic).unwrap().got.is_empty());
    }

    #[test]
    fn longest_prefix_wins() {
        let mut net = Network::new(1);
        let router = net.add_node("router", IpRouter::new());
        let wide = net.add_node("wide", Probe { got: Vec::new() });
        let narrow = net.add_node("narrow", Probe { got: Vec::new() });
        let f = net.add_node(
            "f",
            Feeder {
                router,
                packets: vec![packet_to(Ipv4Addr::from_octets(10, 200, 3, 4))],
            },
        );
        for n in [wide, narrow, f] {
            net.connect(n, router, Interface::Lan, SimDuration::from_millis(1));
        }
        {
            let r = net.node_mut::<IpRouter>(router).unwrap();
            r.add_prefix(Ipv4Addr::from_octets(10, 0, 0, 0), 8, wide);
            r.add_prefix(Ipv4Addr::from_octets(10, 200, 0, 0), 16, narrow);
        }
        net.run_until_quiescent();
        assert_eq!(net.node::<Probe>(narrow).unwrap().got.len(), 1);
        assert!(net.node::<Probe>(wide).unwrap().got.is_empty());
    }

    #[test]
    fn no_route_counted() {
        let mut net = Network::new(1);
        let router = net.add_node("router", IpRouter::new());
        let f = net.add_node(
            "f",
            Feeder {
                router,
                packets: vec![packet_to(Ipv4Addr::from_octets(9, 9, 9, 9))],
            },
        );
        net.connect(f, router, Interface::Lan, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("router.no_route"), 1);
    }

    #[test]
    fn ttl_expiry_counted() {
        let mut net = Network::new(1);
        let router = net.add_node("router", IpRouter::new());
        let sink = net.add_node("sink", Probe { got: Vec::new() });
        let mut dead = packet_to(Ipv4Addr::from_octets(10, 0, 0, 7));
        dead.ttl = 1;
        let f = net.add_node(
            "f",
            Feeder {
                router,
                packets: vec![dead],
            },
        );
        net.connect(sink, router, Interface::Lan, SimDuration::from_millis(1));
        net.connect(f, router, Interface::Lan, SimDuration::from_millis(1));
        net.node_mut::<IpRouter>(router).unwrap().add_prefix(
            Ipv4Addr::from_octets(10, 0, 0, 0),
            8,
            sink,
        );
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("router.ttl_expired"), 1);
        assert!(net.node::<Probe>(sink).unwrap().got.is_empty());
    }
}
