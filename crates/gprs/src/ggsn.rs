//! Gateway GPRS Support Node.
//!
//! The GGSN anchors PDP contexts: it allocates PDP (IP) addresses, keeps
//! the context records the paper's step 1.3 describes ("IMSI, IP address,
//! QoS profile negotiated, SGSN address, and so on"), switches GTP
//! tunnels, and routes between the GPRS core and the external packet data
//! network over Gi. For static PDP addresses it supports the
//! network-requested activation the TR 22.973 baseline depends on,
//! buffering the triggering packets until the context comes up.

use std::collections::{HashMap, VecDeque};

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{
    Cause, Command, GtpMessage, Imsi, IpPacket, Ipv4Addr, Message, Nsapi, QosProfile, Teid,
};

/// One PDP context record (paper step 1.3: "IMSI, IP address, QoS profile
/// negotiated, SGSN address, and so on"). The identity fields are kept
/// for report/debug output even where routing only needs the tunnel pair.
#[derive(Debug)]
struct PdpRecord {
    #[allow(dead_code)]
    imsi: Imsi,
    #[allow(dead_code)]
    nsapi: Nsapi,
    addr: Ipv4Addr,
    #[allow(dead_code)]
    qos: QosProfile,
    sgsn: NodeId,
    sgsn_teid: Teid,
}

/// A subscriber with a provisioned static PDP address.
#[derive(Debug)]
struct StaticEntry {
    imsi: Imsi,
    serving_sgsn: NodeId,
    /// Packets waiting for network-requested activation.
    buffered: VecDeque<IpPacket>,
}

/// Maximum packets buffered per static address while activation runs.
const STATIC_BUFFER_CAP: usize = 8;

/// The GGSN node.
#[derive(Debug)]
pub struct Ggsn {
    /// Prefix of the PDP address pool (dynamic + static).
    pool_prefix: Ipv4Addr,
    pool_prefix_len: u8,
    /// The Gi next hop (the PSDN router).
    router: Option<NodeId>,
    pdp: HashMap<Teid, PdpRecord>,
    by_addr: HashMap<Ipv4Addr, Teid>,
    by_sub: HashMap<(Imsi, Nsapi), Teid>,
    statics: HashMap<Ipv4Addr, StaticEntry>,
    static_of_imsi: HashMap<Imsi, Ipv4Addr>,
    next_dynamic: u32,
    next_teid: u32,
    /// Fault injection: while true (crashed or blackholed) the node
    /// silently drops every protocol message.
    down: bool,
}

impl Ggsn {
    /// Creates a GGSN owning the `prefix/len` PDP address pool.
    ///
    /// # Panics
    ///
    /// Panics if `len > 30` (the pool must hold at least a few addresses).
    pub fn new(prefix: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 30, "pool prefix too small");
        Ggsn {
            pool_prefix: prefix,
            pool_prefix_len: len,
            router: None,
            pdp: HashMap::new(),
            by_addr: HashMap::new(),
            by_sub: HashMap::new(),
            statics: HashMap::new(),
            static_of_imsi: HashMap::new(),
            next_dynamic: 0,
            next_teid: 0,
            down: false,
        }
    }

    /// Sets the Gi next hop toward the external packet network.
    pub fn set_router(&mut self, router: NodeId) {
        self.router = Some(router);
    }

    /// Provisions a static PDP address for a subscriber served by `sgsn`
    /// (required by the TR 22.973 baseline's network-initiated activation).
    ///
    /// # Panics
    ///
    /// Panics if the address is outside the GGSN's pool.
    pub fn provision_static(&mut self, imsi: Imsi, addr: Ipv4Addr, sgsn: NodeId) {
        assert!(
            addr.in_prefix(self.pool_prefix, self.pool_prefix_len),
            "static address {addr} outside pool"
        );
        self.statics.insert(
            addr,
            StaticEntry {
                imsi,
                serving_sgsn: sgsn,
                buffered: VecDeque::new(),
            },
        );
        self.static_of_imsi.insert(imsi, addr);
    }

    /// Number of active PDP contexts (experiment C3's measured quantity).
    pub fn active_pdp_count(&self) -> usize {
        self.pdp.len()
    }

    /// True if `addr` belongs to this GGSN's pool.
    pub fn owns(&self, addr: Ipv4Addr) -> bool {
        addr.in_prefix(self.pool_prefix, self.pool_prefix_len)
    }

    fn alloc_dynamic(&mut self) -> Option<Ipv4Addr> {
        // Walk the pool; skip static provisions and in-use addresses.
        let host_bits = 32 - self.pool_prefix_len;
        let pool_size: u64 = 1u64 << host_bits;
        for _ in 0..pool_size {
            self.next_dynamic = (self.next_dynamic + 1) % (pool_size as u32);
            if self.next_dynamic == 0 {
                continue; // skip the network address
            }
            let candidate = Ipv4Addr(self.pool_prefix.0 | self.next_dynamic);
            if !self.by_addr.contains_key(&candidate) && !self.statics.contains_key(&candidate) {
                return Some(candidate);
            }
        }
        None
    }

    fn alloc_teid(&mut self) -> Teid {
        self.next_teid += 1;
        Teid(0x6000_0000 | self.next_teid)
    }

    fn route_ip(&mut self, ctx: &mut Context<'_, Message>, packet: IpPacket) {
        let dst = packet.dst.ip;
        if self.owns(dst) {
            // Downlink into the GPRS core.
            if let Some(&teid) = self.by_addr.get(&dst) {
                let pdp = &self.pdp[&teid];
                ctx.send(
                    pdp.sgsn,
                    Message::Gtp(GtpMessage::TPdu {
                        teid: pdp.sgsn_teid,
                        inner: Box::new(Message::Ip(packet)),
                    }),
                );
                return;
            }
            // No context: static address → network-requested activation
            // (paper Section 6's description of the TR termination path).
            if let Some(entry) = self.statics.get_mut(&dst) {
                if entry.buffered.len() < STATIC_BUFFER_CAP {
                    entry.buffered.push_back(packet);
                } else {
                    ctx.count("ggsn.static_buffer_overflow");
                }
                ctx.count("ggsn.pdu_notifications");
                let (imsi, sgsn) = (entry.imsi, entry.serving_sgsn);
                ctx.send(
                    sgsn,
                    Message::Gtp(GtpMessage::PduNotificationRequest { imsi, addr: dst }),
                );
                return;
            }
            ctx.count("ggsn.downlink_no_context");
            return;
        }
        // Uplink toward the external network.
        match self.router {
            Some(router) => {
                match packet.forwarded() {
                    Some(p) => ctx.send(router, Message::Ip(p)),
                    None => ctx.count("ggsn.ttl_expired"),
                }
            }
            None => ctx.count("ggsn.no_gi_route"),
        }
    }

    fn handle_gtp(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: GtpMessage) {
        match msg {
            GtpMessage::CreatePdpRequest {
                imsi,
                nsapi,
                qos,
                static_addr,
                sgsn_teid,
            } => {
                // Pick the address: an explicitly requested static address,
                // the subscriber's provisioned static address, or a
                // dynamic one.
                let addr = match static_addr.or_else(|| self.static_of_imsi.get(&imsi).copied()) {
                    Some(a) if self.owns(a) => Some(a),
                    Some(_) => None,
                    None => self.alloc_dynamic(),
                };
                let Some(addr) = addr else {
                    ctx.count("ggsn.pool_exhausted");
                    ctx.send(
                        from,
                        Message::Gtp(GtpMessage::CreatePdpResponse {
                            imsi,
                            nsapi,
                            result: Err(Cause::PdpResourceUnavailable),
                        }),
                    );
                    return;
                };
                let teid = self.alloc_teid();
                self.pdp.insert(
                    teid,
                    PdpRecord {
                        imsi,
                        nsapi,
                        addr,
                        qos,
                        sgsn: from,
                        sgsn_teid,
                    },
                );
                self.by_addr.insert(addr, teid);
                self.by_sub.insert((imsi, nsapi), teid);
                ctx.count("ggsn.pdp_created");
                ctx.send(
                    from,
                    Message::Gtp(GtpMessage::CreatePdpResponse {
                        imsi,
                        nsapi,
                        result: Ok((addr, teid, qos)),
                    }),
                );
                // Flush anything buffered for a static address.
                if let Some(entry) = self.statics.get_mut(&addr) {
                    let buffered: Vec<IpPacket> = entry.buffered.drain(..).collect();
                    for p in buffered {
                        self.route_ip(ctx, p);
                    }
                }
            }
            GtpMessage::DeletePdpRequest { imsi, nsapi } => {
                if let Some(teid) = self.by_sub.remove(&(imsi, nsapi)) {
                    if let Some(rec) = self.pdp.remove(&teid) {
                        self.by_addr.remove(&rec.addr);
                    }
                    ctx.count("ggsn.pdp_deleted");
                }
                ctx.send(
                    from,
                    Message::Gtp(GtpMessage::DeletePdpResponse { imsi, nsapi }),
                );
            }
            GtpMessage::TPdu { teid, inner } => {
                if !self.pdp.contains_key(&teid) {
                    ctx.count("ggsn.tpdu_unknown_teid");
                    return;
                }
                match *inner {
                    Message::Ip(packet) => self.route_ip(ctx, packet),
                    _ => ctx.count("ggsn.tpdu_not_ip"),
                }
            }
            GtpMessage::PduNotificationResponse { .. } => {}
            _ => ctx.count("ggsn.unhandled_gtp"),
        }
    }
}

impl Node<Message> for Ggsn {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(Command::Crash)) => {
                // Dynamic PDP records are volatile; static provisioning is
                // operator configuration and survives the restart.
                self.pdp.clear();
                self.by_addr.clear();
                self.by_sub.clear();
                self.down = true;
                ctx.count("ggsn.crashes");
            }
            (Interface::Internal, Message::Cmd(Command::Blackhole)) => {
                self.down = true;
                ctx.count("ggsn.blackholes");
            }
            (Interface::Internal, Message::Cmd(Command::Restore)) => {
                self.down = false;
            }
            _ if self.down => ctx.count("ggsn.dropped_while_down"),
            (Interface::Gn, Message::Gtp(m)) => self.handle_gtp(ctx, from, m),
            (Interface::Gi | Interface::Lan, Message::Ip(p)) => self.route_ip(ctx, p),
            _ => ctx.count("ggsn.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};
    use vgprs_wire::{IpPayload, Msisdn, RasMessage, TransportAddr};

    fn imsi(last: char) -> Imsi {
        Imsi::parse(&format!("46692012345678{last}")).unwrap()
    }

    fn nsapi() -> Nsapi {
        Nsapi::new(5).unwrap()
    }

    fn pool() -> Ipv4Addr {
        Ipv4Addr::from_octets(10, 200, 0, 0)
    }

    struct Probe {
        got: Vec<Message>,
    }
    impl Node<Message> for Probe {
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.got.push(m);
        }
    }

    struct SgsnStub {
        ggsn: NodeId,
        send: Vec<Message>,
        got: Vec<Message>,
    }
    impl Node<Message> for SgsnStub {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for m in self.send.drain(..) {
                ctx.send(self.ggsn, m);
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.got.push(m);
        }
    }

    fn create_req(i: Imsi, n: Nsapi, static_addr: Option<Ipv4Addr>) -> Message {
        Message::Gtp(GtpMessage::CreatePdpRequest {
            imsi: i,
            nsapi: n,
            qos: QosProfile::signaling(),
            static_addr,
            sgsn_teid: Teid(0x5000_0001),
        })
    }

    fn rig(send: Vec<Message>) -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let ggsn = net.add_node("ggsn", Ggsn::new(pool(), 16));
        let sgsn = net.add_node(
            "sgsn",
            SgsnStub {
                ggsn,
                send,
                got: Vec::new(),
            },
        );
        let router = net.add_node("router", Probe { got: Vec::new() });
        net.connect(sgsn, ggsn, Interface::Gn, SimDuration::from_millis(2));
        net.connect(ggsn, router, Interface::Gi, SimDuration::from_millis(2));
        net.node_mut::<Ggsn>(ggsn).unwrap().set_router(router);
        (net, ggsn, sgsn, router)
    }

    #[test]
    fn dynamic_allocation_unique_addresses() {
        let (mut net, ggsn, sgsn, _router) = rig(vec![
            create_req(imsi('1'), nsapi(), None),
            create_req(imsi('2'), nsapi(), None),
        ]);
        net.run_until_quiescent();
        let got = &net.node::<SgsnStub>(sgsn).unwrap().got;
        let mut addrs = Vec::new();
        for m in got {
            if let Message::Gtp(GtpMessage::CreatePdpResponse {
                result: Ok((a, _, _)),
                ..
            }) = m
            {
                addrs.push(*a);
            }
        }
        assert_eq!(addrs.len(), 2);
        assert_ne!(addrs[0], addrs[1]);
        assert_eq!(net.node::<Ggsn>(ggsn).unwrap().active_pdp_count(), 2);
    }

    #[test]
    fn delete_frees_address_for_reuse() {
        let (mut net, ggsn, _sgsn, _router) = rig(vec![
            create_req(imsi('1'), nsapi(), None),
            Message::Gtp(GtpMessage::DeletePdpRequest {
                imsi: imsi('1'),
                nsapi: nsapi(),
            }),
        ]);
        net.run_until_quiescent();
        assert_eq!(net.node::<Ggsn>(ggsn).unwrap().active_pdp_count(), 0);
        assert_eq!(net.stats().counter("ggsn.pdp_deleted"), 1);
    }

    fn packet_to(dst: Ipv4Addr) -> IpPacket {
        IpPacket::new(
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 1719),
            TransportAddr::new(dst, 1719),
            IpPayload::Ras(RasMessage::Rcf {
                alias: Msisdn::parse("88691234567").unwrap(),
            }),
        )
    }

    #[test]
    fn uplink_routed_to_gi() {
        let (mut net, _ggsn, _sgsn, router) = rig(vec![create_req(imsi('1'), nsapi(), None)]);
        net.run_until_quiescent();
        // tunnel a packet headed outside the pool
        struct Tunneler {
            ggsn: NodeId,
            teid: Teid,
        }
        impl Node<Message> for Tunneler {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(
                    self.ggsn,
                    Message::Gtp(GtpMessage::TPdu {
                        teid: self.teid,
                        inner: Box::new(Message::Ip(packet_to(Ipv4Addr::from_octets(
                            10, 0, 0, 9,
                        )))),
                    }),
                );
            }
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Message>,
                _f: NodeId,
                _i: Interface,
                _m: Message,
            ) {
            }
        }
        let ggsn_id = net.node::<SgsnStub>(_sgsn).unwrap().ggsn;
        let teid = Teid(0x6000_0001);
        let t = net.add_node("tun", Tunneler { ggsn: ggsn_id, teid });
        net.connect(t, ggsn_id, Interface::Gn, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<Probe>(router).unwrap().got;
        assert_eq!(got.len(), 1);
        assert!(matches!(got[0], Message::Ip(_)));
    }

    #[test]
    fn downlink_to_context_tunneled() {
        let (mut net, _ggsn, sgsn, _router) = rig(vec![create_req(imsi('1'), nsapi(), None)]);
        net.run_until_quiescent();
        // find allocated address
        let addr = {
            let got = &net.node::<SgsnStub>(sgsn).unwrap().got;
            got.iter()
                .find_map(|m| match m {
                    Message::Gtp(GtpMessage::CreatePdpResponse {
                        result: Ok((a, _, _)),
                        ..
                    }) => Some(*a),
                    _ => None,
                })
                .expect("created")
        };
        // push a packet for that address in over Gi
        struct GiFeeder {
            ggsn: NodeId,
            dst: Ipv4Addr,
        }
        impl Node<Message> for GiFeeder {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(self.ggsn, Message::Ip(packet_to(self.dst)));
            }
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Message>,
                _f: NodeId,
                _i: Interface,
                _m: Message,
            ) {
            }
        }
        let ggsn_id = net.node::<SgsnStub>(sgsn).unwrap().ggsn;
        let f = net.add_node("gi", GiFeeder { ggsn: ggsn_id, dst: addr });
        net.connect(f, ggsn_id, Interface::Gi, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<SgsnStub>(sgsn).unwrap().got;
        assert!(got
            .iter()
            .any(|m| matches!(m, Message::Gtp(GtpMessage::TPdu { .. }))));
    }

    #[test]
    fn static_address_triggers_notification_and_buffers() {
        let (mut net, ggsn, sgsn, _router) = rig(vec![]);
        let static_addr = Ipv4Addr::from_octets(10, 200, 100, 1);
        net.node_mut::<Ggsn>(ggsn)
            .unwrap()
            .provision_static(imsi('1'), static_addr, sgsn);
        struct GiFeeder {
            ggsn: NodeId,
            dst: Ipv4Addr,
        }
        impl Node<Message> for GiFeeder {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(self.ggsn, Message::Ip(packet_to(self.dst)));
            }
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Message>,
                _f: NodeId,
                _i: Interface,
                _m: Message,
            ) {
            }
        }
        let f = net.add_node(
            "gi",
            GiFeeder {
                ggsn,
                dst: static_addr,
            },
        );
        net.connect(f, ggsn, Interface::Gi, SimDuration::from_millis(1));
        net.run_until_quiescent();
        // SGSN stub got the PDU notification
        let got = &net.node::<SgsnStub>(sgsn).unwrap().got;
        assert!(got.iter().any(|m| matches!(
            m,
            Message::Gtp(GtpMessage::PduNotificationRequest { .. })
        )));
        assert_eq!(net.stats().counter("ggsn.pdu_notifications"), 1);

        // Now activate with the static address: buffered packet flushes.
        struct Activator {
            ggsn: NodeId,
            addr: Ipv4Addr,
        }
        impl Node<Message> for Activator {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(
                    self.ggsn,
                    Message::Gtp(GtpMessage::CreatePdpRequest {
                        imsi: Imsi::parse("466920123456781").unwrap(),
                        nsapi: Nsapi::new(6).unwrap(),
                        qos: QosProfile::realtime_voice(),
                        static_addr: Some(self.addr),
                        sgsn_teid: Teid(0x5000_0009),
                    }),
                );
            }
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Message>,
                _f: NodeId,
                _i: Interface,
                _m: Message,
            ) {
            }
        }
        let a = net.add_node(
            "act",
            Activator {
                ggsn,
                addr: static_addr,
            },
        );
        net.connect(a, ggsn, Interface::Gn, SimDuration::from_millis(1));
        net.run_until_quiescent();
        // The flushed packet goes down the NEW tunnel — to the activator,
        // which is the SGSN that created the context.
        assert_eq!(net.node::<Ggsn>(ggsn).unwrap().active_pdp_count(), 1);
    }

    #[test]
    fn pool_exhaustion_rejected() {
        let mut net = Network::new(1);
        // /30 pool: hosts .1 .2 .3 (0 skipped) → 3 usable
        let ggsn = net.add_node("ggsn", Ggsn::new(Ipv4Addr::from_octets(10, 200, 0, 0), 30));
        let reqs: Vec<Message> = "1234"
            .chars()
            .map(|c| create_req(imsi(c), nsapi(), None))
            .collect();
        let sgsn = net.add_node(
            "sgsn",
            SgsnStub {
                ggsn,
                send: reqs,
                got: Vec::new(),
            },
        );
        net.connect(sgsn, ggsn, Interface::Gn, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<SgsnStub>(sgsn).unwrap().got;
        let rejects = got
            .iter()
            .filter(|m| {
                matches!(
                    m,
                    Message::Gtp(GtpMessage::CreatePdpResponse {
                        result: Err(Cause::PdpResourceUnavailable),
                        ..
                    })
                )
            })
            .count();
        assert_eq!(rejects, 1, "fourth allocation must fail on a /30");
        assert_eq!(net.stats().counter("ggsn.pool_exhausted"), 1);
    }
}
