//! Serving GPRS Support Node.
//!
//! The SGSN terminates Gb toward its attached endpoints (the BSC's PCU
//! for real GPRS MSs, or the VMSC acting as an MS — paper Figure 2), runs
//! GTP tunnels to the GGSN over Gn, and checks subscribers against the
//! HLR over Gr.

use std::collections::{HashMap, VecDeque};

use vgprs_sim::{Context, Interface, Node, NodeId, SimDuration, SimTime, TimerToken};
use vgprs_wire::{
    Cause, Command, GmmMessage, GtpMessage, Imsi, IpPacket, Ipv4Addr, MapMessage, Message,
    Nsapi, PointCode, QosProfile, Teid, Tmsi,
};

/// Timer tag of the admission-queue drain tick (the SGSN's only timer).
const ADMISSION_DRAIN_TAG: u64 = 1;

/// A PDP activation deferred by the admission control, with everything
/// needed to replay it and the time it entered the queue.
#[derive(Debug)]
struct PendingActivation {
    endpoint: NodeId,
    imsi: Imsi,
    nsapi: Nsapi,
    qos: QosProfile,
    static_addr: Option<Ipv4Addr>,
    queued_at: SimTime,
}

/// Mobility-management context of one attached endpoint.
#[derive(Debug)]
struct MmContext {
    /// The node speaking Gb for this subscriber (BSC or VMSC).
    endpoint: NodeId,
    /// Kept for report output (GSM 03.60 MM context).
    #[allow(dead_code)]
    ptmsi: Tmsi,
}

/// One PDP context as the SGSN sees it.
#[derive(Debug)]
struct SgsnPdp {
    sgsn_teid: Teid,
    ggsn_teid: Option<Teid>,
    addr: Option<Ipv4Addr>,
    qos: QosProfile,
}

/// The SGSN node.
#[derive(Debug)]
pub struct Sgsn {
    point_code: PointCode,
    ggsn: NodeId,
    hlr: Option<NodeId>,
    mm: HashMap<Imsi, MmContext>,
    pdp: HashMap<(Imsi, Nsapi), SgsnPdp>,
    teid_index: HashMap<Teid, (Imsi, Nsapi)>,
    next_teid: u32,
    next_ptmsi: u32,
    /// Overload control: PDP activations admitted per simulated second
    /// (`0` = unlimited, the historical behavior).
    admission_rate_per_s: u32,
    /// Index of the one-second window activations were last counted in.
    admission_window: u64,
    /// Activations admitted in the current window.
    admission_in_window: u32,
    /// Activations deferred to a later window (bounded, FIFO).
    admission_queue: VecDeque<PendingActivation>,
    /// The armed drain tick, if any.
    admission_drain: Option<TimerToken>,
    /// Fault injection: while true (crashed or blackholed) the node
    /// silently drops every protocol message.
    down: bool,
}

impl Sgsn {
    /// Creates an SGSN tunneling into `ggsn`.
    pub fn new(point_code: PointCode, ggsn: NodeId) -> Self {
        Sgsn {
            point_code,
            ggsn,
            hlr: None,
            mm: HashMap::new(),
            pdp: HashMap::new(),
            teid_index: HashMap::new(),
            next_teid: 0,
            next_ptmsi: 0,
            admission_rate_per_s: 0,
            admission_window: 0,
            admission_in_window: 0,
            admission_queue: VecDeque::new(),
            admission_drain: None,
            down: false,
        }
    }

    /// Connects the SGSN to an HLR; attaches are then authorized over Gr.
    /// Without an HLR every attach is accepted (closed testbed).
    pub fn set_hlr(&mut self, hlr: NodeId) {
        self.hlr = Some(hlr);
    }

    /// Enables PDP admission control: at most `rate` activations proceed
    /// per simulated second; excess requests wait in a bounded queue
    /// (twice the rate) for the next window, and overflow is rejected
    /// with a network-congestion cause. `0` disables the control.
    pub fn with_admission_rate(mut self, rate: u32) -> Self {
        self.admission_rate_per_s = rate;
        self
    }

    /// Number of attached subscribers.
    pub fn attached_count(&self) -> usize {
        self.mm.len()
    }

    /// Number of active PDP contexts — the resource the paper's Section 6
    /// context-memory comparison (experiment C3) measures.
    pub fn active_pdp_count(&self) -> usize {
        self.pdp.len()
    }

    fn alloc_teid(&mut self) -> Teid {
        self.next_teid += 1;
        Teid(0x5000_0000 | self.next_teid)
    }

    fn accept_attach(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, endpoint: NodeId) {
        self.next_ptmsi += 1;
        let ptmsi = Tmsi(0xB000_0000 | self.next_ptmsi);
        self.mm.insert(imsi, MmContext { endpoint, ptmsi });
        ctx.count("sgsn.attaches");
        ctx.send(
            endpoint,
            Message::Gmm(GmmMessage::AttachAccept { imsi, ptmsi }),
        );
    }

    fn handle_gmm(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: GmmMessage) {
        match msg {
            GmmMessage::AttachRequest { imsi } => match self.hlr {
                Some(hlr) => {
                    // Remember the endpoint while the HLR answers.
                    self.mm.insert(
                        imsi,
                        MmContext {
                            endpoint: from,
                            ptmsi: Tmsi(0),
                        },
                    );
                    ctx.send(
                        hlr,
                        Message::Map(MapMessage::UpdateGprsLocation {
                            imsi,
                            sgsn: self.point_code,
                        }),
                    );
                }
                None => self.accept_attach(ctx, imsi, from),
            },
            GmmMessage::DetachRequest { imsi } => {
                if let Some(mm) = self.mm.remove(&imsi) {
                    // Tear down every remaining context of the subscriber.
                    let nsapis: Vec<Nsapi> = self
                        .pdp
                        .keys()
                        .filter(|(i, _)| *i == imsi)
                        .map(|(_, n)| *n)
                        .collect();
                    for nsapi in nsapis {
                        self.remove_pdp(ctx, imsi, nsapi);
                    }
                    ctx.count("sgsn.detaches");
                    ctx.send(mm.endpoint, Message::Gmm(GmmMessage::DetachAccept { imsi }));
                }
            }
            GmmMessage::ActivatePdpContextRequest {
                imsi,
                nsapi,
                qos,
                static_addr,
            } => self.admit_or_defer(ctx, from, imsi, nsapi, qos, static_addr),
            GmmMessage::DeactivatePdpContextRequest { imsi, nsapi } => {
                self.remove_pdp(ctx, imsi, nsapi);
                if let Some(mm) = self.mm.get(&imsi) {
                    ctx.send(
                        mm.endpoint,
                        Message::Gmm(GmmMessage::DeactivatePdpContextAccept { imsi, nsapi }),
                    );
                }
            }
            _ => ctx.count("sgsn.unhandled_gmm"),
        }
        let _ = from;
    }

    /// Runs PDP admission control in front of [`Self::activate_pdp`]:
    /// admit inside the window budget, defer behind the bounded queue,
    /// or reject with a network-congestion cause on overflow. A rate of
    /// `0` admits everything immediately (historical behavior).
    fn admit_or_defer(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        imsi: Imsi,
        nsapi: Nsapi,
        qos: QosProfile,
        static_addr: Option<Ipv4Addr>,
    ) {
        let rate = self.admission_rate_per_s;
        // Low-precedence signaling contexts (one per subscriber, set up
        // at registration) ride through: the control targets the
        // per-call conversational activations that spike under load.
        if rate == 0 || qos.precedence == vgprs_wire::Precedence::Low {
            self.activate_pdp(ctx, from, imsi, nsapi, qos, static_addr);
            return;
        }
        let window = ctx.now().as_millis() / 1_000;
        if window != self.admission_window {
            self.admission_window = window;
            self.admission_in_window = 0;
        }
        if self.admission_in_window < rate && self.admission_queue.is_empty() {
            self.admission_in_window += 1;
            self.activate_pdp(ctx, from, imsi, nsapi, qos, static_addr);
        } else if self.admission_queue.len() < 2 * rate as usize {
            ctx.count("sgsn.pdp_admission_deferred");
            self.admission_queue.push_back(PendingActivation {
                endpoint: from,
                imsi,
                nsapi,
                qos,
                static_addr,
                queued_at: ctx.now(),
            });
            if self.admission_drain.is_none() {
                let delay =
                    SimDuration::from_micros(1_000_000 - ctx.now().as_micros() % 1_000_000);
                self.admission_drain = Some(ctx.set_timer(delay, ADMISSION_DRAIN_TAG));
            }
        } else {
            ctx.count("sgsn.pdp_admission_rejected");
            ctx.send(
                from,
                Message::Gmm(GmmMessage::ActivatePdpContextReject {
                    imsi,
                    nsapi,
                    cause: Cause::NetworkCongestion,
                }),
            );
        }
    }

    /// Drain tick: admit up to one window's budget from the deferred
    /// queue, oldest first, and re-arm while a backlog remains.
    fn drain_admission_queue(&mut self, ctx: &mut Context<'_, Message>) {
        self.admission_drain = None;
        self.admission_window = ctx.now().as_millis() / 1_000;
        self.admission_in_window = 0;
        while self.admission_in_window < self.admission_rate_per_s {
            let Some(p) = self.admission_queue.pop_front() else {
                break;
            };
            ctx.observe_duration(
                "sgsn.pdp_admission_delay_ms",
                ctx.now().duration_since(p.queued_at),
            );
            self.admission_in_window += 1;
            self.activate_pdp(ctx, p.endpoint, p.imsi, p.nsapi, p.qos, p.static_addr);
        }
        if !self.admission_queue.is_empty() && self.admission_drain.is_none() {
            let delay = SimDuration::from_micros(1_000_000 - ctx.now().as_micros() % 1_000_000);
            self.admission_drain = Some(ctx.set_timer(delay, ADMISSION_DRAIN_TAG));
        }
    }

    /// The activation proper: attach check, tunnel allocation, GTP
    /// create toward the GGSN.
    fn activate_pdp(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        imsi: Imsi,
        nsapi: Nsapi,
        qos: QosProfile,
        static_addr: Option<Ipv4Addr>,
    ) {
        if !self.mm.contains_key(&imsi) {
            ctx.count("sgsn.activation_not_attached");
            ctx.send(
                from,
                Message::Gmm(GmmMessage::ActivatePdpContextReject {
                    imsi,
                    nsapi,
                    cause: Cause::SubscriberAbsent,
                }),
            );
            return;
        }
        let sgsn_teid = self.alloc_teid();
        self.pdp.insert(
            (imsi, nsapi),
            SgsnPdp {
                sgsn_teid,
                ggsn_teid: None,
                addr: None,
                qos,
            },
        );
        self.teid_index.insert(sgsn_teid, (imsi, nsapi));
        ctx.send(
            self.ggsn,
            Message::Gtp(GtpMessage::CreatePdpRequest {
                imsi,
                nsapi,
                qos,
                static_addr,
                sgsn_teid,
            }),
        );
    }

    fn remove_pdp(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, nsapi: Nsapi) {
        if let Some(pdp) = self.pdp.remove(&(imsi, nsapi)) {
            self.teid_index.remove(&pdp.sgsn_teid);
            ctx.count("sgsn.pdp_deactivated");
            ctx.send(
                self.ggsn,
                Message::Gtp(GtpMessage::DeletePdpRequest { imsi, nsapi }),
            );
        }
    }

    fn handle_gtp(&mut self, ctx: &mut Context<'_, Message>, msg: GtpMessage) {
        match msg {
            GtpMessage::CreatePdpResponse {
                imsi,
                nsapi,
                result,
            } => {
                let Some(mm_endpoint) = self.mm.get(&imsi).map(|m| m.endpoint) else {
                    return;
                };
                match result {
                    Ok((addr, ggsn_teid, qos)) => {
                        if let Some(pdp) = self.pdp.get_mut(&(imsi, nsapi)) {
                            pdp.ggsn_teid = Some(ggsn_teid);
                            pdp.addr = Some(addr);
                            pdp.qos = qos;
                        }
                        ctx.count("sgsn.pdp_activated");
                        ctx.send(
                            mm_endpoint,
                            Message::Gmm(GmmMessage::ActivatePdpContextAccept {
                                imsi,
                                nsapi,
                                addr,
                                qos,
                            }),
                        );
                    }
                    Err(cause) => {
                        if let Some(pdp) = self.pdp.remove(&(imsi, nsapi)) {
                            self.teid_index.remove(&pdp.sgsn_teid);
                        }
                        ctx.count("sgsn.pdp_rejected");
                        ctx.send(
                            mm_endpoint,
                            Message::Gmm(GmmMessage::ActivatePdpContextReject {
                                imsi,
                                nsapi,
                                cause,
                            }),
                        );
                    }
                }
            }
            GtpMessage::DeletePdpResponse { .. } => {}
            GtpMessage::TPdu { teid, inner } => {
                // Downlink: unwrap and deliver over Gb as an LLC frame.
                let Some(&(imsi, nsapi)) = self.teid_index.get(&teid) else {
                    ctx.count("sgsn.tpdu_unknown_teid");
                    return;
                };
                let Some(mm) = self.mm.get(&imsi) else {
                    return;
                };
                match *inner {
                    Message::Ip(packet) => {
                        ctx.send(
                            mm.endpoint,
                            Message::Llc {
                                imsi,
                                nsapi,
                                inner: Box::new(packet),
                            },
                        );
                    }
                    other => {
                        let _ = other;
                        ctx.count("sgsn.tpdu_not_ip");
                    }
                }
            }
            GtpMessage::PduNotificationRequest { imsi, addr } => {
                // Network-requested activation (TR 22.973 termination path).
                let Some(mm) = self.mm.get(&imsi) else {
                    ctx.count("sgsn.notification_not_attached");
                    return;
                };
                ctx.count("sgsn.pdu_notifications");
                ctx.send(
                    mm.endpoint,
                    Message::Gmm(GmmMessage::RequestPdpContextActivation {
                        imsi,
                        nsapi: Nsapi::new(6).expect("6 is a valid NSAPI"),
                        addr,
                    }),
                );
                ctx.send(
                    self.ggsn,
                    Message::Gtp(GtpMessage::PduNotificationResponse { imsi }),
                );
            }
            _ => ctx.count("sgsn.unhandled_gtp"),
        }
    }

    fn handle_llc_uplink(
        &mut self,
        ctx: &mut Context<'_, Message>,
        imsi: Imsi,
        nsapi: Nsapi,
        inner: IpPacket,
    ) {
        let Some(pdp) = self.pdp.get(&(imsi, nsapi)) else {
            ctx.count("sgsn.llc_no_context");
            return;
        };
        let Some(ggsn_teid) = pdp.ggsn_teid else {
            ctx.count("sgsn.llc_context_pending");
            return;
        };
        ctx.send(
            self.ggsn,
            Message::Gtp(GtpMessage::TPdu {
                teid: ggsn_teid,
                inner: Box::new(Message::Ip(inner)),
            }),
        );
    }
}

impl Node<Message> for Sgsn {
    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _token: TimerToken, tag: u64) {
        if self.down {
            if tag == ADMISSION_DRAIN_TAG {
                // The tick is consumed even while down; forget the token
                // so the control can re-arm after a restore.
                self.admission_drain = None;
            }
            return;
        }
        if tag == ADMISSION_DRAIN_TAG {
            self.drain_admission_queue(ctx);
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(Command::Crash)) => {
                // State loss: every MM and PDP context is gone; attached
                // subscribers must re-attach and re-activate from scratch.
                self.mm.clear();
                self.pdp.clear();
                self.teid_index.clear();
                self.admission_queue.clear();
                self.admission_in_window = 0;
                if let Some(token) = self.admission_drain.take() {
                    ctx.cancel_timer(token);
                }
                self.down = true;
                ctx.count("sgsn.crashes");
            }
            (Interface::Internal, Message::Cmd(Command::Blackhole)) => {
                self.down = true;
                ctx.count("sgsn.blackholes");
            }
            (Interface::Internal, Message::Cmd(Command::Restore)) => {
                self.down = false;
            }
            _ if self.down => ctx.count("sgsn.dropped_while_down"),
            (Interface::Gb, Message::Gmm(m)) => self.handle_gmm(ctx, from, m),
            (Interface::Gb, Message::Llc { imsi, nsapi, inner }) => {
                self.handle_llc_uplink(ctx, imsi, nsapi, *inner)
            }
            (Interface::Gn, Message::Gtp(m)) => self.handle_gtp(ctx, m),
            (Interface::Gr, Message::Map(MapMessage::UpdateGprsLocationAck {
                imsi,
                rejection,
            })) => {
                let Some(mm) = self.mm.get(&imsi) else {
                    return;
                };
                let endpoint = mm.endpoint;
                match rejection {
                    None => self.accept_attach(ctx, imsi, endpoint),
                    Some(cause) => {
                        self.mm.remove(&imsi);
                        ctx.count("sgsn.attach_rejected");
                        ctx.send(
                            endpoint,
                            Message::Gmm(GmmMessage::AttachReject { imsi, cause }),
                        );
                    }
                }
            }
            _ => ctx.count("sgsn.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};
    use vgprs_wire::{IpPayload, RasMessage, TransportAddr};

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    fn nsapi() -> Nsapi {
        Nsapi::new(5).unwrap()
    }

    /// Sends its queued messages spaced 50 ms apart so each request's
    /// response round-trip completes before the next request fires.
    struct Endpoint {
        sgsn: NodeId,
        send: Vec<Message>,
        got: Vec<Message>,
    }
    impl Node<Message> for Endpoint {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for (i, _) in self.send.iter().enumerate() {
                ctx.set_timer(SimDuration::from_millis(50 * i as u64), i as u64);
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.got.push(m);
        }
        fn on_timer(
            &mut self,
            ctx: &mut Context<'_, Message>,
            _t: vgprs_sim::TimerToken,
            tag: u64,
        ) {
            let m = self.send[tag as usize].clone();
            ctx.send(self.sgsn, m);
        }
    }

    /// GGSN stub that accepts every tunnel.
    struct GgsnStub {
        sgsn: Option<NodeId>,
        next: u32,
    }
    impl Node<Message> for GgsnStub {
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Message>,
            from: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.sgsn = Some(from);
            if let Message::Gtp(GtpMessage::CreatePdpRequest { imsi, nsapi, qos, .. }) = m {
                self.next += 1;
                ctx.send(
                    from,
                    Message::Gtp(GtpMessage::CreatePdpResponse {
                        imsi,
                        nsapi,
                        result: Ok((Ipv4Addr::from_octets(10, 200, 0, self.next as u8), Teid(self.next), qos)),
                    }),
                );
            }
        }
    }

    fn rig(send: Vec<Message>) -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let ggsn = net.add_node("ggsn", GgsnStub { sgsn: None, next: 0 });
        let sgsn = net.add_node("sgsn", Sgsn::new(PointCode(50), ggsn));
        let ep = net.add_node(
            "endpoint",
            Endpoint {
                sgsn,
                send,
                got: Vec::new(),
            },
        );
        net.connect(sgsn, ggsn, Interface::Gn, SimDuration::from_millis(2));
        net.connect(ep, sgsn, Interface::Gb, SimDuration::from_millis(2));
        (net, sgsn, ggsn, ep)
    }

    #[test]
    fn attach_without_hlr_accepted() {
        let (mut net, sgsn, _ggsn, ep) =
            rig(vec![Message::Gmm(GmmMessage::AttachRequest { imsi: imsi() })]);
        net.run_until_quiescent();
        assert_eq!(net.node::<Sgsn>(sgsn).unwrap().attached_count(), 1);
        let got = &net.node::<Endpoint>(ep).unwrap().got;
        assert!(matches!(
            got[0],
            Message::Gmm(GmmMessage::AttachAccept { .. })
        ));
    }

    #[test]
    fn pdp_activation_creates_tunnel() {
        let (mut net, sgsn, _ggsn, ep) = rig(vec![
            Message::Gmm(GmmMessage::AttachRequest { imsi: imsi() }),
            Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                imsi: imsi(),
                nsapi: nsapi(),
                qos: QosProfile::signaling(),
                static_addr: None,
            }),
        ]);
        net.run_until_quiescent();
        assert_eq!(net.node::<Sgsn>(sgsn).unwrap().active_pdp_count(), 1);
        let got = &net.node::<Endpoint>(ep).unwrap().got;
        assert!(got.iter().any(|m| matches!(
            m,
            Message::Gmm(GmmMessage::ActivatePdpContextAccept { .. })
        )));
        assert_eq!(net.stats().counter("sgsn.pdp_activated"), 1);
    }

    #[test]
    fn activation_requires_attach() {
        let (mut net, sgsn, _ggsn, ep) =
            rig(vec![Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                imsi: imsi(),
                nsapi: nsapi(),
                qos: QosProfile::signaling(),
                static_addr: None,
            })]);
        net.run_until_quiescent();
        assert_eq!(net.node::<Sgsn>(sgsn).unwrap().active_pdp_count(), 0);
        let got = &net.node::<Endpoint>(ep).unwrap().got;
        assert!(matches!(
            got[0],
            Message::Gmm(GmmMessage::ActivatePdpContextReject {
                cause: Cause::SubscriberAbsent,
                ..
            })
        ));
    }

    fn sample_packet() -> IpPacket {
        IpPacket::new(
            TransportAddr::new(Ipv4Addr::from_octets(10, 200, 0, 1), 1719),
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 9), 1719),
            IpPayload::Ras(RasMessage::Rcf {
                alias: vgprs_wire::Msisdn::parse("88691234567").unwrap(),
            }),
        )
    }

    #[test]
    fn uplink_llc_tunneled_to_ggsn() {
        let (mut net, _sgsn, ggsn, _ep) = rig(vec![
            Message::Gmm(GmmMessage::AttachRequest { imsi: imsi() }),
            Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                imsi: imsi(),
                nsapi: nsapi(),
                qos: QosProfile::signaling(),
                static_addr: None,
            }),
            Message::Llc {
                imsi: imsi(),
                nsapi: nsapi(),
                inner: Box::new(sample_packet()),
            },
        ]);
        net.run_until_quiescent();
        // the stub GGSN received the tunneled packet (it ignores TPdu, but
        // the trace shows it)
        assert!(net
            .trace()
            .labels()
            .iter()
            .any(|l| l.starts_with("GTP:RAS_RCF")));
        let _ = ggsn;
    }

    #[test]
    fn uplink_without_context_dropped() {
        let (mut net, _sgsn, _ggsn, _ep) = rig(vec![
            Message::Gmm(GmmMessage::AttachRequest { imsi: imsi() }),
            Message::Llc {
                imsi: imsi(),
                nsapi: nsapi(),
                inner: Box::new(sample_packet()),
            },
        ]);
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("sgsn.llc_no_context"), 1);
    }

    #[test]
    fn detach_tears_down_contexts() {
        let (mut net, sgsn, _ggsn, _ep) = rig(vec![
            Message::Gmm(GmmMessage::AttachRequest { imsi: imsi() }),
            Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                imsi: imsi(),
                nsapi: nsapi(),
                qos: QosProfile::signaling(),
                static_addr: None,
            }),
            Message::Gmm(GmmMessage::DetachRequest { imsi: imsi() }),
        ]);
        net.run_until_quiescent();
        let s = net.node::<Sgsn>(sgsn).unwrap();
        assert_eq!(s.attached_count(), 0);
        assert_eq!(s.active_pdp_count(), 0);
        assert_eq!(net.stats().counter("sgsn.pdp_deactivated"), 1);
    }

    #[test]
    fn pdu_notification_relayed_to_endpoint() {
        let (mut net, sgsn, _ggsn, ep) =
            rig(vec![Message::Gmm(GmmMessage::AttachRequest { imsi: imsi() })]);
        net.run_until_quiescent();
        // GGSN-side feeder sends the notification over Gn
        struct Feeder {
            sgsn: NodeId,
        }
        impl Node<Message> for Feeder {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(
                    self.sgsn,
                    Message::Gtp(GtpMessage::PduNotificationRequest {
                        imsi: Imsi::parse("466920123456789").unwrap(),
                        addr: Ipv4Addr::from_octets(10, 200, 100, 1),
                    }),
                );
            }
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Message>,
                _f: NodeId,
                _i: Interface,
                _m: Message,
            ) {
            }
        }
        let f = net.add_node("f", Feeder { sgsn });
        net.connect(f, sgsn, Interface::Gn, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<Endpoint>(ep).unwrap().got;
        assert!(got.iter().any(|m| matches!(
            m,
            Message::Gmm(GmmMessage::RequestPdpContextActivation { .. })
        )));
        assert_eq!(net.stats().counter("sgsn.pdu_notifications"), 1);
    }
}
