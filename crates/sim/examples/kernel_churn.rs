//! Raw event-kernel churn: heap vs. wheel at fixed queue depths.
//!
//! Pre-fills a queue to a target depth, then measures hold-one-push-one
//! churn — the steady-state pattern the simulator's run loop produces.
//! Run with `cargo run --release -p vgprs-sim --example kernel_churn`.

use std::time::Instant;

use vgprs_sim::{CalendarWheel, SimRng, SimTime};

/// Mean inter-event gap, microseconds (the 20 ms frame cadence).
const MEAN_GAP_US: f64 = 20_000.0;
const OPS: usize = 2_000_000;

trait Queue {
    fn push(&mut self, at: SimTime, v: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

struct Heap {
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u64)>>,
    seq: u64,
}

impl Queue for Heap {
    fn push(&mut self, at: SimTime, v: u64) {
        self.seq += 1;
        self.heap.push(std::cmp::Reverse((at, self.seq, v)));
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap.pop().map(|std::cmp::Reverse((at, _, v))| (at, v))
    }
}

impl Queue for CalendarWheel<u64> {
    fn push(&mut self, at: SimTime, v: u64) {
        CalendarWheel::push(self, at, v);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        CalendarWheel::pop(self)
    }
}

fn churn(q: &mut impl Queue, depth: usize, rng: &mut SimRng) -> f64 {
    let mut now = SimTime::from_micros(0);
    for _ in 0..depth {
        let dt = rng.exponential(MEAN_GAP_US) as u64;
        q.push(now + vgprs_sim::SimDuration::from_micros(dt), 0);
    }
    let start = Instant::now();
    for i in 0..OPS {
        let (at, _) = q.pop().expect("queue stays full");
        now = at;
        let dt = rng.exponential(MEAN_GAP_US) as u64;
        q.push(now + vgprs_sim::SimDuration::from_micros(dt), i as u64);
    }
    OPS as f64 / start.elapsed().as_secs_f64()
}

/// The simulator's real pattern: most pushes land only microseconds
/// ahead of the clock (LAN / backplane hops), a band sits at the frame
/// cadence, and a trickle goes minutes out (re-registration timers).
fn sim_like(q: &mut impl Queue, depth: usize, rng: &mut SimRng) -> f64 {
    let mut now = SimTime::from_micros(0);
    for _ in 0..depth {
        let dt = rng.exponential(MEAN_GAP_US) as u64;
        q.push(now + vgprs_sim::SimDuration::from_micros(dt), 0);
    }
    let start = Instant::now();
    for i in 0..OPS {
        let (at, _) = q.pop().expect("queue stays full");
        now = at;
        let dt = match rng.range(0, 10) {
            0..=6 => rng.range(50, 2_000),            // same-slot hop
            7..=8 => rng.exponential(MEAN_GAP_US) as u64, // frame cadence
            _ => rng.range(10_000_000, 300_000_000),  // far-future timer
        };
        q.push(now + vgprs_sim::SimDuration::from_micros(dt), i as u64);
    }
    OPS as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("uniform 20 ms churn");
    println!("{:>9} | {:>12} | {:>12} | {:>7}", "depth", "heap ops/s", "wheel ops/s", "ratio");
    for depth in [100, 1_000, 10_000, 100_000, 1_000_000] {
        let mut rng = SimRng::new(1);
        let heap = churn(
            &mut Heap {
                heap: std::collections::BinaryHeap::new(),
                seq: 0,
            },
            depth,
            &mut rng,
        );
        let mut rng = SimRng::new(1);
        let wheel = churn(&mut CalendarWheel::new(), depth, &mut rng);
        println!(
            "{:>9} | {:>12.0} | {:>12.0} | {:>6.2}x",
            depth,
            heap,
            wheel,
            wheel / heap
        );
    }
    println!("sim-like mix (70% sub-slot, 20% frame cadence, 10% far timers)");
    println!("{:>9} | {:>12} | {:>12} | {:>7}", "depth", "heap ops/s", "wheel ops/s", "ratio");
    for depth in [100, 1_000, 10_000, 100_000] {
        let mut rng = SimRng::new(1);
        let heap = sim_like(
            &mut Heap {
                heap: std::collections::BinaryHeap::new(),
                seq: 0,
            },
            depth,
            &mut rng,
        );
        let mut rng = SimRng::new(1);
        let wheel = sim_like(&mut CalendarWheel::new(), depth, &mut rng);
        println!(
            "{:>9} | {:>12.0} | {:>12.0} | {:>6.2}x",
            depth,
            heap,
            wheel,
            wheel / heap
        );
    }
}
