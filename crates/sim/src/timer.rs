//! Timer bookkeeping: O(1) cancellation via per-slot generation counters.
//!
//! The previous kernel recorded cancellations in a `HashSet<TimerToken>`
//! consulted when each timer event popped. That had two defects: a hash
//! probe on the hot path for every firing timer, and a leak — cancelling a
//! timer whose event had already fired (or cancelling twice) inserted a
//! token that nothing would ever remove, so long-lived networks grew the
//! set without bound.
//!
//! The [`TimerTable`] replaces the set. Every armed timer occupies a slot
//! with a generation counter; the [`TimerToken`](crate::TimerToken) packs
//! `(generation, slot)`. Cancelling or firing a timer bumps the slot's
//! generation and returns the slot to a free list, so:
//!
//! * a queued timer event whose token generation no longer matches is a
//!   *stale* event — it was cancelled — and is counted, not dispatched;
//! * cancel-after-fire and double-cancel find a mismatched generation and
//!   are free no-ops, leaving no residual state;
//! * the table's size is bounded by the peak number of *concurrently*
//!   armed timers, not by the total ever cancelled.

use crate::context::TimerToken;

/// Bits of a [`TimerToken`] holding the slot index (low half).
const SLOT_SHIFT: u32 = 32;

/// Slot/generation table for armed timers. See the [module docs](self).
#[derive(Debug, Default)]
pub(crate) struct TimerTable {
    /// Current generation of each slot. A token is live iff its packed
    /// generation equals its slot's current generation.
    gens: Vec<u32>,
    /// Slots available for reuse.
    free: Vec<u32>,
    /// Number of currently armed timers.
    live: usize,
}

impl TimerTable {
    pub(crate) fn new() -> Self {
        TimerTable::default()
    }

    /// Arms a new timer: reuses a free slot or grows the table.
    pub(crate) fn alloc(&mut self) -> TimerToken {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.gens.push(0);
                (self.gens.len() - 1) as u32
            }
        };
        self.live += 1;
        TimerToken(((self.gens[slot as usize] as u64) << SLOT_SHIFT) | slot as u64)
    }

    /// Cancels a timer. Returns true if it was live (now cancelled);
    /// cancelling a fired, cancelled, or unknown timer is a no-op.
    pub(crate) fn cancel(&mut self, token: TimerToken) -> bool {
        self.retire(token)
    }

    /// Attempts to fire the timer behind a popped event. Returns false for
    /// stale (cancelled) events.
    pub(crate) fn try_fire(&mut self, token: TimerToken) -> bool {
        self.retire(token)
    }

    fn retire(&mut self, token: TimerToken) -> bool {
        let slot = (token.0 & u32::MAX as u64) as usize;
        let generation = (token.0 >> SLOT_SHIFT) as u32;
        match self.gens.get_mut(slot) {
            Some(g) if *g == generation => {
                *g = g.wrapping_add(1);
                self.free.push(slot as u32);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of currently armed timers.
    pub(crate) fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated — bounded by peak concurrency, not by
    /// churn.
    #[cfg(test)]
    pub(crate) fn slots(&self) -> usize {
        self.gens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_fire_cycle() {
        let mut t = TimerTable::new();
        let a = t.alloc();
        assert_eq!(t.live(), 1);
        assert!(t.try_fire(a));
        assert_eq!(t.live(), 0);
        // Firing again is stale.
        assert!(!t.try_fire(a));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut t = TimerTable::new();
        let a = t.alloc();
        assert!(t.try_fire(a));
        assert!(!t.cancel(a));
        assert!(!t.cancel(a));
        assert_eq!(t.live(), 0);
        assert_eq!(t.slots(), 1);
    }

    #[test]
    fn slot_reuse_bounds_table() {
        let mut t = TimerTable::new();
        for _ in 0..10_000 {
            let tok = t.alloc();
            assert!(t.try_fire(tok));
        }
        assert_eq!(t.slots(), 1, "churn must reuse the single free slot");
        assert_eq!(t.live(), 0);
    }

    #[test]
    fn reused_slot_gets_fresh_generation() {
        let mut t = TimerTable::new();
        let a = t.alloc();
        assert!(t.cancel(a));
        let b = t.alloc();
        assert_ne!(a, b, "reused slot must not alias the old token");
        assert!(!t.try_fire(a), "old token is stale");
        assert!(t.try_fire(b));
    }

    #[test]
    fn cancel_during_backoff_never_fires_stale_attempt() {
        // A retry ladder re-arms a fresh timer per attempt and cancels the
        // previous one. However the cancel/re-arm/fire operations interleave,
        // a cancelled attempt's token must never fire — even when its slot
        // has been recycled for the replacement attempt.
        let mut t = TimerTable::new();
        let mut cancelled: Vec<TimerToken> = Vec::new();
        let mut armed = t.alloc();
        for _ in 0..100 {
            assert!(t.cancel(armed), "live attempt cancels exactly once");
            cancelled.push(armed);
            armed = t.alloc();
            for stale in &cancelled {
                assert!(!t.try_fire(*stale), "cancelled attempt fired");
            }
        }
        assert_eq!(t.live(), 1, "only the newest attempt is armed");
        assert!(t.slots() <= 2, "ladder churn must not grow the table");
        assert!(t.try_fire(armed), "the live attempt still fires");
    }

    #[test]
    fn concurrent_timers_get_distinct_slots() {
        let mut t = TimerTable::new();
        let toks: Vec<_> = (0..5).map(|_| t.alloc()).collect();
        assert_eq!(t.live(), 5);
        assert_eq!(t.slots(), 5);
        for tok in &toks {
            assert!(t.cancel(*tok));
        }
        assert_eq!(t.live(), 0);
    }
}
