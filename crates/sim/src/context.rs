//! The side-effect API available to a node during a callback.

use std::fmt;


use crate::node::NodeId;
use crate::rng::SimRng;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::timer::TimerTable;

/// Handle identifying a pending timer, returned by [`Context::set_timer`].
///
/// Packs the timer table's `(generation, slot)` pair; see
/// `crates/sim/src/timer.rs`. Opaque to callers — store it, pass it to
/// [`Context::cancel_timer`], or compare it against the token handed to
/// [`Node::on_timer`](crate::Node::on_timer).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub(crate) u64);

impl fmt::Debug for TimerToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let slot = self.0 & u32::MAX as u64;
        let generation = self.0 >> 32;
        write!(f, "timer#{slot}.{generation}")
    }
}

/// Deferred side effects collected during a node callback and applied by the
/// network afterwards, keeping execution deterministic and borrow-friendly.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send { to: NodeId, msg: M },
    Timer { at: SimTime, token: TimerToken, tag: u64 },
    CancelTimer { token: TimerToken },
    Note { text: String },
}

/// A node's window onto the simulation during a callback.
///
/// All interaction with the outside world — sending messages, arming timers,
/// recording statistics, drawing randomness — goes through the context.
/// Effects are applied after the callback returns, in the order they were
/// requested.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: NodeId,
    pub(crate) effects: Vec<Effect<M>>,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) stats: &'a mut Stats,
    pub(crate) timers: &'a mut TimerTable,
}

impl<M> Context<'_, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called back.
    pub fn id(&self) -> NodeId {
        self.self_id
    }

    /// Sends `msg` to `to` over the link provisioned between the two nodes.
    ///
    /// The message is subject to the link's latency, jitter, loss and
    /// bandwidth. If no link exists the network panics when applying the
    /// effect — a missing link is a topology bug, not a runtime condition.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }

    /// Arms a one-shot timer that fires after `delay` with the given `tag`.
    /// Returns a token usable with [`cancel_timer`](Context::cancel_timer).
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerToken {
        let token = self.timers.alloc();
        self.effects.push(Effect::Timer {
            at: self.now + delay,
            token,
            tag,
        });
        token
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, token: TimerToken) {
        self.effects.push(Effect::CancelTimer { token });
    }

    /// Appends a free-text annotation to the trace, attributed to this node
    /// at the current time. Used to mark procedure steps (e.g. `"Step 1.3"`).
    pub fn note(&mut self, text: impl Into<String>) {
        self.effects.push(Effect::Note { text: text.into() });
    }

    /// Increments the named counter.
    pub fn count(&mut self, name: &str) {
        self.stats.count(name);
    }

    /// Adds `value` to the named counter.
    pub fn count_by(&mut self, name: &str, value: u64) {
        self.stats.count_by(name, value);
    }

    /// Records an observation in the named histogram.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.stats.observe(name, value);
    }

    /// Records a duration observation (in milliseconds) in the named
    /// histogram.
    pub fn observe_duration(&mut self, name: &str, value: SimDuration) {
        self.stats.observe(name, value.as_secs_f64() * 1_000.0);
    }

    /// The deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        rng: &'a mut SimRng,
        stats: &'a mut Stats,
        timers: &'a mut TimerTable,
    ) -> Context<'a, u32> {
        Context {
            now: SimTime::from_micros(1_000),
            self_id: NodeId(3),
            effects: Vec::new(),
            rng,
            stats,
            timers,
        }
    }

    #[test]
    fn effects_accumulate_in_order() {
        let mut rng = SimRng::new(0);
        let mut stats = Stats::new();
        let mut nt = TimerTable::new();
        let mut c = ctx(&mut rng, &mut stats, &mut nt);
        c.send(NodeId(1), 42);
        let t = c.set_timer(SimDuration::from_millis(5), 9);
        c.cancel_timer(t);
        c.note("hello");
        assert_eq!(c.effects.len(), 4);
        match &c.effects[1] {
            Effect::Timer { at, tag, .. } => {
                assert_eq!(*at, SimTime::from_micros(6_000));
                assert_eq!(*tag, 9);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn timer_tokens_unique() {
        let mut rng = SimRng::new(0);
        let mut stats = Stats::new();
        let mut nt = TimerTable::new();
        let mut c = ctx(&mut rng, &mut stats, &mut nt);
        let a = c.set_timer(SimDuration::ZERO, 0);
        let b = c.set_timer(SimDuration::ZERO, 0);
        assert_ne!(a, b);
        assert_eq!(nt.live(), 2);
    }

    #[test]
    fn stats_accessible() {
        let mut rng = SimRng::new(0);
        let mut stats = Stats::new();
        let mut nt = TimerTable::new();
        {
            let mut c = ctx(&mut rng, &mut stats, &mut nt);
            c.count("x");
            c.count_by("x", 2);
            c.observe("h", 1.5);
            c.observe_duration("d", SimDuration::from_millis(3));
        }
        assert_eq!(stats.counter("x"), 3);
        assert_eq!(stats.histogram("h").unwrap().count(), 1);
        assert!((stats.histogram("d").unwrap().mean() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn identity_accessors() {
        let mut rng = SimRng::new(0);
        let mut stats = Stats::new();
        let mut nt = TimerTable::new();
        let c = ctx(&mut rng, &mut stats, &mut nt);
        assert_eq!(c.id(), NodeId(3));
        assert_eq!(c.now(), SimTime::from_micros(1_000));
    }
}
