//! Simulated time: instants and durations with microsecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};


/// An instant on the simulated clock, measured in microseconds since the
/// start of the simulation.
///
/// `SimTime` is a newtype over `u64` so it cannot be confused with wall-clock
/// time or with [`SimDuration`].
///
/// # Examples
///
/// ```rust
/// use vgprs_sim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(20);
/// assert_eq!(t.as_micros(), 20_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The far end of simulated time — a sentinel deadline meaning
    /// "no deadline" (≈584,542 years in).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole + fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so that would indicate a kernel bug in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference; returns [`SimDuration::ZERO`] if `earlier` is
    /// later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 / 1_000;
        let frac = self.0 % 1_000;
        if frac == 0 {
            write!(f, "{ms}ms")
        } else {
            write!(f, "{ms}.{frac:03}ms")
        }
    }
}

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```rust
/// use vgprs_sim::SimDuration;
/// let d = SimDuration::from_millis(5) * 3;
/// assert_eq!(d.as_micros(), 15_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, )]
pub struct SimDuration(u64);

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            SimDuration::ZERO
        } else {
            SimDuration((secs * 1_000_000.0).round() as u64)
        }
    }

    /// This duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 && self.0.is_multiple_of(1_000_000) {
            write!(f, "{}s", self.0 / 1_000_000)
        } else if self.0 >= 1_000 {
            let ms = self.0 / 1_000;
            let frac = self.0 % 1_000;
            if frac == 0 {
                write!(f, "{ms}ms")
            } else {
                write!(f, "{ms}.{frac:03}ms")
            }
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_add_duration() {
        let t = SimTime::from_micros(500) + SimDuration::from_millis(2);
        assert_eq!(t.as_micros(), 2_500);
    }

    #[test]
    fn duration_since_ordering() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(350);
        assert_eq!(b.duration_since(a).as_micros(), 250);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_backwards() {
        let a = SimTime::from_micros(100);
        let b = SimTime::from_micros(350);
        let _ = a.duration_since(b);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(10) + SimDuration::from_micros(500);
        assert_eq!(d.as_micros(), 10_500);
        assert_eq!((d * 2).as_micros(), 21_000);
        assert_eq!((d / 2).as_micros(), 5_250);
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_from_secs_f64() {
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimDuration::from_micros(90).to_string(), "90us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7ms");
    }

    #[test]
    fn time_display_whole_ms() {
        assert_eq!(SimTime::from_micros(3_000).to_string(), "3ms");
    }

    #[test]
    fn max_is_latest_instant() {
        assert!(SimTime::MAX > SimTime::from_micros(u64::MAX - 1));
        assert_eq!(SimTime::MAX.as_micros(), u64::MAX);
    }
}
