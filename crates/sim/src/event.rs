//! Internal event queue with deterministic ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::context::TimerToken;
use crate::interface::Interface;
use crate::node::NodeId;
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` to `to`, as sent by `from` over `iface`.
    Deliver {
        from: NodeId,
        to: NodeId,
        iface: Interface,
        msg: M,
    },
    /// Fire a timer on `node`.
    Timer {
        node: NodeId,
        token: TimerToken,
        tag: u64,
    },
    /// Invoke `on_start` for a node added after the network started.
    Start { node: NodeId },
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    // Reversed so the BinaryHeap pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap over (time, sequence) with a monotonically increasing sequence
/// number so simultaneous events fire in scheduling order.
#[derive(Debug)]
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> EventQueue<M> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_event(node: u32, tag: u64) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId(node),
            token: TimerToken(tag),
            tag,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), timer_event(0, 0));
        q.push(SimTime::from_micros(10), timer_event(0, 1));
        q.push(SimTime::from_micros(20), timer_event(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut q = EventQueue::new();
        for tag in 0..5 {
            q.push(SimTime::from_micros(100), timer_event(0, tag));
        }
        let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(5), timer_event(0, 0));
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
    }
}
