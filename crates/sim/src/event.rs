//! Internal event queue with deterministic ordering.
//!
//! Two interchangeable kernels sit behind [`EventQueue`]: the original
//! binary heap and the hierarchical timer wheel
//! ([`CalendarWheel`](crate::CalendarWheel)). Both order events by
//! `(time, seq)` with a monotone per-queue sequence number, so
//! simultaneous events fire in scheduling order on either kernel — the
//! wheel is validated against the heap as a differential oracle (see
//! `crates/sim/tests/differential.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::context::TimerToken;
use crate::interface::Interface;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::wheel::CalendarWheel;

/// Which event-queue implementation a [`Network`](crate::Network) runs on.
///
/// The wheel is the default; the heap is retained as the differential
/// oracle the wheel is checked against (`harness kernelbench --check`)
/// and as a fallback. Both produce bit-identical schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Kernel {
    /// Binary min-heap over `(time, seq)` — `O(log n)` per operation.
    Heap,
    /// Hierarchical timer wheel — amortized `O(1)` per operation.
    #[default]
    Wheel,
}

impl Kernel {
    /// Stable lowercase name, used by the bench harness and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Heap => "heap",
            Kernel::Wheel => "wheel",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when an event fires.
#[derive(Debug)]
pub(crate) enum EventKind<M> {
    /// Deliver `msg` to `to`, as sent by `from` over `iface`.
    Deliver {
        from: NodeId,
        to: NodeId,
        iface: Interface,
        msg: M,
    },
    /// Fire a timer on `node`.
    Timer {
        node: NodeId,
        token: TimerToken,
        tag: u64,
    },
    /// Invoke `on_start` for a node added after the network started.
    Start { node: NodeId },
}

#[derive(Debug)]
pub(crate) struct Event<M> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    // Reversed so the BinaryHeap pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap over (time, sequence) with a monotonically increasing sequence
/// number so simultaneous events fire in scheduling order.
#[derive(Debug)]
pub(crate) struct HeapQueue<M> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M> HeapQueue<M> {
    pub(crate) fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind<M>)> {
        self.heap.pop().map(|e| (e.at, e.kind))
    }

    pub(crate) fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, EventKind<M>)> {
        match self.heap.peek() {
            Some(e) if e.at <= deadline => self.pop(),
            _ => None,
        }
    }

    #[cfg(test)]
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }
}

/// The per-network event queue: one of the two [`Kernel`]s.
// One EventQueue exists per Network, never in a collection, so the size
// gap between the variants costs nothing; boxing the wheel would add a
// pointer chase to every push/pop on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum EventQueue<M> {
    Heap(HeapQueue<M>),
    Wheel(CalendarWheel<EventKind<M>>),
}

impl<M> EventQueue<M> {
    pub(crate) fn new(kernel: Kernel) -> Self {
        match kernel {
            Kernel::Heap => EventQueue::Heap(HeapQueue::new()),
            Kernel::Wheel => EventQueue::Wheel(CalendarWheel::new()),
        }
    }

    pub(crate) fn kernel(&self) -> Kernel {
        match self {
            EventQueue::Heap(_) => Kernel::Heap,
            EventQueue::Wheel(_) => Kernel::Wheel,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        match self {
            EventQueue::Heap(q) => q.push(at, kind),
            EventQueue::Wheel(w) => w.push(at, kind),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind<M>)> {
        match self {
            EventQueue::Heap(q) => q.pop(),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    /// Pops the earliest event only if it is due at or before `deadline`,
    /// replacing the peek-then-pop dance in the run loop.
    pub(crate) fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, EventKind<M>)> {
        match self {
            EventQueue::Heap(q) => q.pop_at_or_before(deadline),
            EventQueue::Wheel(w) => w.pop_at_or_before(deadline),
        }
    }

    #[cfg(test)]
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        match self {
            EventQueue::Heap(q) => q.peek_time(),
            EventQueue::Wheel(w) => w.peek_time(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            EventQueue::Heap(q) => q.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_event(node: u32, tag: u64) -> EventKind<()> {
        EventKind::Timer {
            node: NodeId(node),
            token: TimerToken(tag),
            tag,
        }
    }

    fn both_kernels() -> [EventQueue<()>; 2] {
        [
            EventQueue::new(Kernel::Heap),
            EventQueue::new(Kernel::Wheel),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in both_kernels() {
            q.push(SimTime::from_micros(30), timer_event(0, 0));
            q.push(SimTime::from_micros(10), timer_event(0, 1));
            q.push(SimTime::from_micros(20), timer_event(0, 2));
            let order: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(at, _)| at.as_micros())
                .collect();
            assert_eq!(order, vec![10, 20, 30], "kernel {}", q.kernel());
        }
    }

    #[test]
    fn simultaneous_events_fifo() {
        for mut q in both_kernels() {
            for tag in 0..5 {
                q.push(SimTime::from_micros(100), timer_event(0, tag));
            }
            let tags: Vec<u64> = std::iter::from_fn(|| q.pop())
                .map(|(_, kind)| match kind {
                    EventKind::Timer { tag, .. } => tag,
                    _ => unreachable!(),
                })
                .collect();
            assert_eq!(tags, vec![0, 1, 2, 3, 4], "kernel {}", q.kernel());
        }
    }

    #[test]
    fn peek_and_len() {
        for mut q in both_kernels() {
            assert_eq!(q.len(), 0);
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_micros(5), timer_event(0, 0));
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(5)));
        }
    }

    #[test]
    fn pop_at_or_before_deadline() {
        for mut q in both_kernels() {
            q.push(SimTime::from_micros(10), timer_event(0, 0));
            q.push(SimTime::from_micros(40), timer_event(0, 1));
            let first = q.pop_at_or_before(SimTime::from_micros(20));
            assert_eq!(first.map(|(at, _)| at), Some(SimTime::from_micros(10)));
            assert!(q.pop_at_or_before(SimTime::from_micros(20)).is_none());
            assert_eq!(q.len(), 1);
        }
    }

    #[test]
    fn kernel_names_are_stable() {
        assert_eq!(Kernel::Heap.name(), "heap");
        assert_eq!(Kernel::Wheel.name(), "wheel");
        assert_eq!(Kernel::default(), Kernel::Wheel);
    }
}
