//! Node identity and behavior traits.

use std::fmt;


use crate::context::{Context, TimerToken};
use crate::interface::Interface;

/// Identifies a node registered in a [`Network`](crate::Network).
///
/// Ids are dense indices handed out by
/// [`Network::add_node`](crate::Network::add_node); they are only meaningful
/// within the network that produced them.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index, for use as a map key or report label.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Requirements on the message type carried by a [`Network`](crate::Network).
///
/// Protocol crates implement this for their PDU union. The [`label`]
/// is what appears in traces and ladder diagrams, so implementations should
/// return the protocol message name (e.g. `"MAP_Update_Location"`), not a
/// full debug dump.
///
/// [`label`]: Payload::label
pub trait Payload: Clone + fmt::Debug + Send {
    /// Short, stable message name for traces and assertions.
    fn label(&self) -> String;

    /// Approximate size on the wire in bytes, used for bandwidth
    /// serialization delay. The default suits small signaling messages.
    fn wire_size(&self) -> usize {
        64
    }

    /// Whether this message should be recorded in the trace. Media payloads
    /// (e.g. RTP frames) typically override this to `false` so signaling
    /// ladders stay readable; statistics still count every delivery.
    fn traceable(&self) -> bool {
        true
    }

    /// Whether the message rides a reliable transport. Reliable messages
    /// are exempt from link *loss* (TCP/SS7 retransmission, abstracted);
    /// latency, jitter and bandwidth still apply. Media payloads override
    /// this to `false` — RTP rides UDP and really is dropped.
    fn reliable(&self) -> bool {
        true
    }
}

/// Behavior of a simulated network element.
///
/// A node reacts to delivered messages and expired timers through its
/// [`Context`], which is the only channel for side effects (sending,
/// scheduling, statistics). Nodes never touch the event queue directly,
/// which keeps execution deterministic.
pub trait Node<M: Payload> {
    /// Invoked once when the simulation starts running (before any message
    /// delivery). Use it to kick off initial procedures.
    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let _ = ctx;
    }

    /// Invoked for every message delivered to this node.
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, iface: Interface, msg: M);

    /// Invoked when a timer set through [`Context::set_timer`] expires
    /// (unless it was cancelled). `tag` is the caller-chosen discriminator.
    fn on_timer(&mut self, ctx: &mut Context<'_, M>, token: TimerToken, tag: u64) {
        let _ = (ctx, token, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(format!("{:?}", NodeId(4)), "n4");
        assert_eq!(NodeId(4).index(), 4);
    }

    #[derive(Clone, Debug)]
    struct P;
    impl Payload for P {
        fn label(&self) -> String {
            "P".into()
        }
    }

    #[test]
    fn payload_defaults() {
        assert_eq!(P.wire_size(), 64);
        assert!(P.traceable());
        assert!(P.reliable());
    }
}
