//! # vgprs-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the substrate on which the whole vGPRS reproduction runs.
//! It provides:
//!
//! * [`SimTime`]/[`SimDuration`] — microsecond-resolution simulated time,
//! * an event queue with deterministic tie-breaking,
//! * a [`Network`] of [`Node`]s connected by typed [`Link`]s, each link
//!   tagged with the GSM/GPRS/H.323 [`Interface`] it models and configured
//!   with latency, jitter, loss and bandwidth,
//! * a message [`Trace`] that records every delivery so protocol message
//!   flows (the paper's Figures 4–6) can be rendered as ladder diagrams and
//!   asserted in tests,
//! * seeded, reproducible randomness via [`SimRng`].
//!
//! The kernel is generic over the message type `M: Payload`, so protocol
//! crates define their own PDU unions (see `vgprs-wire`) without this crate
//! knowing about them.
//!
//! ## Example
//!
//! ```rust
//! use vgprs_sim::{Network, Node, Context, Interface, NodeId, SimDuration, Payload};
//!
//! #[derive(Clone, Debug)]
//! enum Ping { Ping(u32), Pong(u32) }
//! impl Payload for Ping {
//!     fn label(&self) -> String {
//!         match self { Ping::Ping(_) => "Ping".into(), Ping::Pong(_) => "Pong".into() }
//!     }
//! }
//!
//! struct Echo;
//! impl Node<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut Context<'_, Ping>, from: NodeId, _i: Interface, msg: Ping) {
//!         if let Ping::Ping(n) = msg { ctx.send(from, Ping::Pong(n)); }
//!     }
//! }
//!
//! struct Caller { peer: NodeId, got: u32 }
//! impl Node<Ping> for Caller {
//!     fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
//!         ctx.send(self.peer, Ping::Ping(7));
//!     }
//!     fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _f: NodeId, _i: Interface, msg: Ping) {
//!         if let Ping::Pong(n) = msg { self.got = n; }
//!     }
//! }
//!
//! let mut net = Network::new(42);
//! let echo = net.add_node("echo", Echo);
//! let caller = net.add_node("caller", Caller { peer: echo, got: 0 });
//! net.connect(caller, echo, Interface::Lan, SimDuration::from_millis(5));
//! net.run_until_quiescent();
//! assert_eq!(net.trace().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backoff;
mod context;
mod event;
mod interface;
pub mod json;
mod ladder;
mod link;
mod net;
mod node;
mod rng;
mod stats;
mod time;
mod timer;
mod trace;
mod wheel;

pub use backoff::Backoff;
pub use context::{Context, TimerToken};
pub use event::Kernel;
pub use interface::Interface;
pub use ladder::LadderDiagram;
pub use link::{Link, LinkConfig, LinkQuality};
pub use net::{Network, RunOutcome};
pub use node::{Node, NodeId, Payload};
pub use rng::SimRng;
pub use json::{JsonError, JsonValue};
pub use stats::{Counter, Histogram, SparseHistogram, Stats};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
pub use wheel::CalendarWheel;
