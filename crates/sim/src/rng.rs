//! Deterministic, seedable randomness for simulations.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded random-number generator owned by the [`Network`](crate::Network).
///
/// All stochastic behavior in a simulation (link jitter, loss, talkspurt
/// lengths, call inter-arrival times) draws from this single stream, so a
/// scenario seeded identically replays an identical trace.
///
/// # Examples
///
/// ```rust
/// use vgprs_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi, got {lo}..{hi}");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    /// `p` is clamped to `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method). Used for Poisson call arrivals and talkspurt lengths.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn range_rejects_empty() {
        SimRng::new(0).range(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // out-of-range p is clamped rather than panicking
        assert!(r.chance(7.5));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.2,
            "sample mean {mean} too far from 4.0"
        );
    }
}
