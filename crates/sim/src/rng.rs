//! Deterministic, seedable randomness for simulations.
//!
//! The generator is an in-repo xoshiro256** (Blackman & Vigna) seeded
//! through splitmix64, so the workspace needs no external RNG crate and
//! the stream is stable across platforms and toolchain upgrades — a
//! prerequisite for bit-identical replay of large load runs.

/// Advances a splitmix64 state and returns the next output.
///
/// Used for seeding (it diffuses low-entropy seeds like 0, 1, 2 into
/// well-separated xoshiro states) and for deriving independent
/// sub-streams from a master seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random-number generator owned by the [`Network`](crate::Network).
///
/// All stochastic behavior in a simulation (link jitter, loss, talkspurt
/// lengths, call inter-arrival times) draws from this single stream, so a
/// scenario seeded identically replays an identical trace.
///
/// # Examples
///
/// ```rust
/// use vgprs_sim::SimRng;
/// let mut a = SimRng::new(7);
/// let mut b = SimRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Creates a generator for an independent sub-stream of `master`.
    ///
    /// Streams with different `stream` ids are statistically independent,
    /// and the derivation depends only on `(master, stream)` — not on how
    /// many other streams exist — which is what makes sharded load runs
    /// invariant to shard and thread counts.
    pub fn derive(master: u64, stream: u64) -> Self {
        let mut sm = master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        SimRng::new(splitmix64(&mut sm))
    }

    /// Next raw 64-bit value (xoshiro256** output function).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next raw 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "SimRng::range requires lo < hi, got {lo}..{hi}");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): rejects the short tail so every
        // value in the span is exactly equally likely.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    /// `p` is clamped to `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform() < p
    }

    /// Exponentially distributed value with the given mean (inverse-CDF
    /// method). Used for Poisson call arrivals and talkspurt lengths.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = (f64::EPSILON).max(self.uniform());
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // xoshiro256** seeded via splitmix64(0): pins the stream so a
        // refactor can't silently change every seeded experiment.
        let mut r = SimRng::new(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut again = SimRng::new(0);
        assert_eq!(first, (0..3).map(|_| again.next_u64()).collect::<Vec<_>>());
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn derived_streams_are_independent_and_stable() {
        let mut a1 = SimRng::derive(42, 7);
        let mut a2 = SimRng::derive(42, 7);
        let mut b = SimRng::derive(42, 8);
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| a2.next_u64()).collect::<Vec<_>>());
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.range(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn range_rejects_empty() {
        SimRng::new(0).range(5, 5);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // out-of-range p is clamped rather than panicking
        assert!(r.chance(7.5));
        assert!(!r.chance(-1.0));
    }

    #[test]
    fn exponential_mean_roughly_right() {
        let mut r = SimRng::new(11);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - 4.0).abs() < 0.2,
            "sample mean {mean} too far from 4.0"
        );
    }
}
