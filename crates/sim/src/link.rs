//! Point-to-point links with latency, jitter, loss and bandwidth.


use crate::interface::Interface;
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::SimDuration;

/// Transmission quality parameters of a [`Link`].
///
/// # Examples
///
/// ```rust
/// use vgprs_sim::{LinkQuality, SimDuration};
/// let q = LinkQuality::new(SimDuration::from_millis(10))
///     .with_jitter(SimDuration::from_millis(2))
///     .with_loss(0.01)
///     .with_bandwidth_bps(2_048_000);
/// assert_eq!(q.latency, SimDuration::from_millis(10));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkQuality {
    /// Fixed one-way propagation + processing delay.
    pub latency: SimDuration,
    /// Maximum additional uniformly distributed delay.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a message is silently dropped.
    pub loss: f64,
    /// Serialization rate in bits per second; `None` means infinite.
    pub bandwidth_bps: Option<u64>,
}

impl LinkQuality {
    /// A link with the given fixed latency, no jitter, no loss and
    /// unlimited bandwidth.
    pub fn new(latency: SimDuration) -> Self {
        LinkQuality {
            latency,
            jitter: SimDuration::ZERO,
            loss: 0.0,
            bandwidth_bps: None,
        }
    }

    /// Adds uniformly distributed jitter up to `jitter`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the loss probability, clamped to `[0, 1]`.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Sets the serialization bandwidth in bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is zero.
    pub fn with_bandwidth_bps(mut self, bps: u64) -> Self {
        assert!(bps > 0, "bandwidth must be positive");
        self.bandwidth_bps = Some(bps);
        self
    }

    /// Samples the total transfer delay for a message of `size` bytes,
    /// and whether it is lost. Reliable messages are never lost (their
    /// transport retransmits; the abstraction keeps them delivered).
    pub(crate) fn sample(
        &self,
        size: usize,
        reliable: bool,
        rng: &mut SimRng,
    ) -> Option<SimDuration> {
        if !reliable && self.loss > 0.0 && rng.chance(self.loss) {
            return None;
        }
        let mut delay = self.latency;
        if !self.jitter.is_zero() {
            delay += SimDuration::from_micros(rng.range(0, self.jitter.as_micros() + 1));
        }
        if let Some(bps) = self.bandwidth_bps {
            let bits = (size as u64) * 8;
            delay += SimDuration::from_micros(bits.saturating_mul(1_000_000) / bps);
        }
        Some(delay)
    }
}

impl Default for LinkQuality {
    /// A 1 ms ideal link.
    fn default() -> Self {
        LinkQuality::new(SimDuration::from_millis(1))
    }
}

/// Configuration handed to [`Network::connect_with`](crate::Network::connect_with).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkConfig {
    /// Reference point this link models.
    pub interface: Interface,
    /// Quality in the a→b direction.
    pub forward: LinkQuality,
    /// Quality in the b→a direction.
    pub reverse: LinkQuality,
}

impl LinkConfig {
    /// Symmetric link with identical quality both ways.
    pub fn symmetric(interface: Interface, quality: LinkQuality) -> Self {
        LinkConfig {
            interface,
            forward: quality,
            reverse: quality,
        }
    }
}

/// A provisioned link between two nodes.
#[derive(Clone, Copy, Debug)]
pub struct Link {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) config: LinkConfig,
}

impl Link {
    /// The two endpoints, in registration order.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.a, self.b)
    }

    /// The interface this link models.
    pub fn interface(&self) -> Interface {
        self.config.interface
    }

    /// Quality from `from` toward the other endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint of this link.
    pub fn quality_from(&self, from: NodeId) -> LinkQuality {
        if from == self.a {
            self.config.forward
        } else if from == self.b {
            self.config.reverse
        } else {
            panic!("{from} is not an endpoint of link {:?}-{:?}", self.a, self.b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_no_impairments() {
        let q = LinkQuality::new(SimDuration::from_millis(3));
        let mut rng = SimRng::new(1);
        assert_eq!(q.sample(100, false, &mut rng), Some(SimDuration::from_millis(3)));
    }

    #[test]
    fn sample_bandwidth_adds_serialization() {
        let q = LinkQuality::new(SimDuration::ZERO).with_bandwidth_bps(8_000);
        let mut rng = SimRng::new(1);
        // 100 bytes = 800 bits at 8000 bps = 0.1 s
        assert_eq!(q.sample(100, false, &mut rng), Some(SimDuration::from_millis(100)));
    }

    #[test]
    fn sample_jitter_bounded() {
        let q = LinkQuality::new(SimDuration::from_millis(5))
            .with_jitter(SimDuration::from_millis(2));
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let d = q.sample(10, false, &mut rng).unwrap();
            assert!(d >= SimDuration::from_millis(5));
            assert!(d <= SimDuration::from_millis(7));
        }
    }

    #[test]
    fn sample_total_loss() {
        let q = LinkQuality::new(SimDuration::ZERO).with_loss(1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(q.sample(10, false, &mut rng), None);
    }

    #[test]
    fn reliable_messages_survive_total_loss() {
        let q = LinkQuality::new(SimDuration::from_millis(2)).with_loss(1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(
            q.sample(10, true, &mut rng),
            Some(SimDuration::from_millis(2)),
            "reliable transport retransmits through loss"
        );
    }

    #[test]
    fn loss_is_clamped() {
        let q = LinkQuality::new(SimDuration::ZERO).with_loss(9.0);
        assert_eq!(q.loss, 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkQuality::new(SimDuration::ZERO).with_bandwidth_bps(0);
    }

    #[test]
    fn asymmetric_link_directionality() {
        let fast = LinkQuality::new(SimDuration::from_millis(1));
        let slow = LinkQuality::new(SimDuration::from_millis(9));
        let link = Link {
            a: NodeId(0),
            b: NodeId(1),
            config: LinkConfig {
                interface: Interface::Gn,
                forward: fast,
                reverse: slow,
            },
        };
        assert_eq!(link.quality_from(NodeId(0)), fast);
        assert_eq!(link.quality_from(NodeId(1)), slow);
        assert_eq!(link.interface(), Interface::Gn);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn quality_from_foreign_node_panics() {
        let link = Link {
            a: NodeId(0),
            b: NodeId(1),
            config: LinkConfig::symmetric(Interface::Lan, LinkQuality::default()),
        };
        let _ = link.quality_from(NodeId(7));
    }
}
