//! Named reference points between network elements.
//!
//! GSM/GPRS architecture documents name every link between two element
//! types (GSM 03.02, GSM 03.60): the air interface is *Um*, BTS–BSC is
//! *Abis*, BSC–MSC is *A*, and so on. Tagging every simulated link with its
//! interface lets traces state not only *who* exchanged a message but *over
//! which reference point*, which is exactly how the paper's Figure 3
//! describes the protocol stack.

use std::fmt;


/// The reference point a [`Link`](crate::Link) models.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[non_exhaustive]
pub enum Interface {
    /// MS ↔ BTS radio interface (GSM 04.08).
    Um,
    /// BTS ↔ BSC (GSM 08.5x).
    Abis,
    /// BSC ↔ MSC/VMSC (GSM 08.08).
    A,
    /// MSC/VMSC ↔ VLR (MAP, GSM 09.02).
    B,
    /// MSC/VMSC ↔ HLR (MAP).
    C,
    /// VLR ↔ HLR (MAP).
    D,
    /// MSC ↔ MSC (MAP, inter-system handoff).
    E,
    /// SGSN ↔ HLR (MAP, GPRS).
    Gr,
    /// BSC(PCU) ↔ SGSN (GSM 08.14/08.16).
    Gb,
    /// SGSN ↔ GGSN (GTP, GSM 09.60).
    Gn,
    /// GGSN ↔ external packet-data network.
    Gi,
    /// Generic IP LAN segment inside the H.323 zone.
    Lan,
    /// SS7 ISUP trunk signaling between switches.
    Isup,
    /// Circuit-switched voice trunk (bearer, not signaling).
    Trunk,
    /// Node-internal companion channel (e.g. VMSC vocoder ↔ PCU).
    Internal,
}

impl Interface {
    /// All interfaces, in a stable order (useful for reports).
    pub const ALL: [Interface; 15] = [
        Interface::Um,
        Interface::Abis,
        Interface::A,
        Interface::B,
        Interface::C,
        Interface::D,
        Interface::E,
        Interface::Gr,
        Interface::Gb,
        Interface::Gn,
        Interface::Gi,
        Interface::Lan,
        Interface::Isup,
        Interface::Trunk,
        Interface::Internal,
    ];

    /// Short name as used in architecture diagrams.
    pub fn name(self) -> &'static str {
        match self {
            Interface::Um => "Um",
            Interface::Abis => "Abis",
            Interface::A => "A",
            Interface::B => "B",
            Interface::C => "C",
            Interface::D => "D",
            Interface::E => "E",
            Interface::Gr => "Gr",
            Interface::Gb => "Gb",
            Interface::Gn => "Gn",
            Interface::Gi => "Gi",
            Interface::Lan => "LAN",
            Interface::Isup => "ISUP",
            Interface::Trunk => "Trunk",
            Interface::Internal => "Int",
        }
    }

    /// True for interfaces that carry SS7/MAP signaling.
    pub fn is_ss7(self) -> bool {
        matches!(
            self,
            Interface::B
                | Interface::C
                | Interface::D
                | Interface::E
                | Interface::Gr
                | Interface::Isup
        )
    }

    /// True for interfaces belonging to the GPRS packet core.
    pub fn is_packet_core(self) -> bool {
        matches!(
            self,
            Interface::Gb | Interface::Gn | Interface::Gi | Interface::Lan
        )
    }
}

impl fmt::Display for Interface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = [
            Interface::Um,
            Interface::Abis,
            Interface::A,
            Interface::B,
            Interface::C,
            Interface::D,
            Interface::E,
            Interface::Gr,
            Interface::Gb,
            Interface::Gn,
            Interface::Gi,
            Interface::Lan,
            Interface::Isup,
            Interface::Trunk,
            Interface::Internal,
        ]
        .iter()
        .map(|i| i.name())
        .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn classification() {
        assert!(Interface::B.is_ss7());
        assert!(Interface::Isup.is_ss7());
        assert!(!Interface::Um.is_ss7());
        assert!(Interface::Gn.is_packet_core());
        assert!(!Interface::A.is_packet_core());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Interface::Gb.to_string(), "Gb");
        assert_eq!(Interface::Lan.to_string(), "LAN");
    }
}
