//! A minimal JSON reader for the workspace's hand-rolled artifacts.
//!
//! The workspace is hermetic (no crates-io dependencies, so no serde);
//! every `BENCH_*.json` / `LoadReport::to_json` artifact is emitted by
//! hand and read back by this module — the `harness diff` regression
//! gate and the golden-file schema tests both parse through here.
//!
//! Scope: the JSON the repo writes. Objects, arrays, strings with the
//! escapes [`crate::Stats`] artifacts use, `null`, booleans, and f64
//! numbers. Object member order is preserved (artifacts are written in
//! a deterministic order and diffs want to report in it).

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null` (also how the writers encode NaN/infinity).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// All JSON numbers, as f64 (the precision the writers emit).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Flattens the tree into `(dotted.path, leaf)` pairs, in source
    /// order. Array elements use their index as the path segment
    /// (`cells.3.mos`); the root itself contributes the empty path when
    /// it is a leaf. This is the shape the diff engine and the schema
    /// tests compare.
    pub fn flatten(&self) -> Vec<(String, &JsonValue)> {
        let mut out = Vec::new();
        self.flatten_into(String::new(), &mut out);
        out
    }

    fn flatten_into<'a>(&'a self, path: String, out: &mut Vec<(String, &'a JsonValue)>) {
        let join = |path: &str, seg: &str| {
            if path.is_empty() {
                seg.to_owned()
            } else {
                format!("{path}.{seg}")
            }
        };
        match self {
            JsonValue::Object(members) => {
                for (k, v) in members {
                    v.flatten_into(join(&path, k), out);
                }
            }
            JsonValue::Array(items) => {
                for (i, v) in items.iter().enumerate() {
                    v.flatten_into(join(&path, &i.to_string()), out);
                }
            }
            leaf => out.push((path, leaf)),
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the document.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in the repo's
                            // artifacts; map unpaired surrogates to the
                            // replacement character instead of failing.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // the bytes are valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" -1.5e3 ").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(
            JsonValue::parse("\"a\\nb\\u0041\"").unwrap(),
            JsonValue::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let v = JsonValue::parse(
            r#"{"b": [1, {"x": 2}, []], "a": {"k": "v"}, "n": null}"#,
        )
        .unwrap();
        let JsonValue::Object(members) = &v else {
            panic!("not an object")
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "a", "n"], "member order preserved");
        assert_eq!(v.get("a").and_then(|a| a.get("k")).and_then(JsonValue::as_str), Some("v"));
        assert_eq!(
            v.get("b").and_then(JsonValue::as_array).map(<[JsonValue]>::len),
            Some(3)
        );
    }

    #[test]
    fn flatten_produces_dotted_paths() {
        let v = JsonValue::parse(r#"{"kpis": {"mos": 4.2, "h": {"p99": 7}}, "cells": [{"x": 1}, {"x": 2}]}"#)
            .unwrap();
        let flat: Vec<(String, f64)> = v
            .flatten()
            .into_iter()
            .filter_map(|(p, leaf)| leaf.as_f64().map(|x| (p, x)))
            .collect();
        assert_eq!(
            flat,
            vec![
                ("kpis.mos".to_owned(), 4.2),
                ("kpis.h.p99".to_owned(), 7.0),
                ("cells.0.x".to_owned(), 1.0),
                ("cells.1.x".to_owned(), 2.0),
            ]
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_the_report_writers_escapes() {
        // The exact escape set report.rs::json_escape produces.
        let v = JsonValue::parse(r#""a\"b\\c\nd\re\tf""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\re\tf"));
    }
}
