//! Message-flow recording.
//!
//! Every delivered message (and every [`Context::note`](crate::Context::note))
//! is appended to the network's [`Trace`]. Tests assert exact sequences
//! against the paper's figures and the ladder renderer prints them.

use crate::interface::Interface;
use crate::node::NodeId;
use crate::time::SimTime;

/// One recorded event.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEntry {
    /// A message delivered from one node to another.
    Message {
        /// Delivery time.
        at: SimTime,
        /// Sender.
        from: NodeId,
        /// Receiver.
        to: NodeId,
        /// Reference point the message crossed.
        iface: Interface,
        /// The message's [`Payload::label`](crate::Payload::label).
        label: String,
        /// The message's full `Debug` rendering — lets tests scan for
        /// sensitive content (e.g. "no IMSI on this interface").
        detail: String,
    },
    /// A free-text annotation emitted by a node.
    Note {
        /// Annotation time.
        at: SimTime,
        /// Node that emitted the note.
        node: NodeId,
        /// Annotation text.
        text: String,
    },
}

impl TraceEntry {
    /// The time of this entry.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEntry::Message { at, .. } | TraceEntry::Note { at, .. } => *at,
        }
    }

    /// The message label, if this entry is a message.
    pub fn label(&self) -> Option<&str> {
        match self {
            TraceEntry::Message { label, .. } => Some(label),
            TraceEntry::Note { .. } => None,
        }
    }

    /// The message's full debug rendering, if this entry is a message.
    pub fn detail(&self) -> Option<&str> {
        match self {
            TraceEntry::Message { detail, .. } => Some(detail),
            TraceEntry::Note { .. } => None,
        }
    }
}

/// The ordered record of everything delivered during a run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    names: Vec<String>,
}

impl Trace {
    pub(crate) fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn register_node(&mut self, name: &str) {
        self.names.push(name.to_owned());
    }

    pub(crate) fn record_message(
        &mut self,
        at: SimTime,
        from: NodeId,
        to: NodeId,
        iface: Interface,
        label: String,
        detail: String,
    ) {
        self.entries.push(TraceEntry::Message {
            at,
            from,
            to,
            iface,
            label,
            detail,
        });
    }

    pub(crate) fn record_note(&mut self, at: SimTime, node: NodeId, text: String) {
        self.entries.push(TraceEntry::Note { at, node, text });
    }

    /// The registered display name of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not created by the owning network.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0 as usize]
    }

    /// All entries in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Messages only (notes skipped), in order.
    pub fn messages(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries
            .iter()
            .filter(|e| matches!(e, TraceEntry::Message { .. }))
    }

    /// The ordered list of message labels — the shape tests compare against
    /// the paper's figures.
    pub fn labels(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter_map(|e| e.label())
            .collect()
    }

    /// Ordered (label, interface) pairs for messages.
    pub fn labeled_interfaces(&self) -> Vec<(&str, Interface)> {
        self.entries
            .iter()
            .filter_map(|e| match e {
                TraceEntry::Message { label, iface, .. } => Some((label.as_str(), *iface)),
                TraceEntry::Note { .. } => None,
            })
            .collect()
    }

    /// True if the trace contains `wanted` as a (not necessarily
    /// contiguous) subsequence of message labels. This is the primary
    /// figure-reproduction assertion: the paper's ladder lists the key
    /// messages; the simulation may interleave others (auth, ciphering)
    /// between them.
    pub fn contains_subsequence(&self, wanted: &[&str]) -> bool {
        let mut it = wanted.iter();
        let mut next = it.next();
        for e in &self.entries {
            if let (Some(w), Some(l)) = (next, e.label()) {
                if *w == l {
                    next = it.next();
                }
            }
            if next.is_none() {
                return true;
            }
        }
        next.is_none()
    }

    /// Index of the first message with the given label at or after `start`,
    /// if any.
    pub fn find_label(&self, label: &str, start: usize) -> Option<usize> {
        self.entries[start.min(self.entries.len())..]
            .iter()
            .position(|e| e.label() == Some(label))
            .map(|i| i + start)
    }

    /// The time of the first message with this label, if present.
    pub fn first_time_of(&self, label: &str) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|e| e.label() == Some(label))
            .map(|e| e.at())
    }

    /// The time of the last message with this label, if present.
    pub fn last_time_of(&self, label: &str) -> Option<SimTime> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.label() == Some(label))
            .map(|e| e.at())
    }

    /// Count of messages whose label equals `label`.
    pub fn count_label(&self, label: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.label() == Some(label))
            .count()
    }

    /// True if any message on `iface` contains `needle` in its full
    /// debug rendering — the structural confidentiality check.
    pub fn any_on_interface_contains(&self, iface: Interface, needle: &str) -> bool {
        self.entries.iter().any(|e| match e {
            TraceEntry::Message {
                iface: i, detail, ..
            } => *i == iface && detail.contains(needle),
            TraceEntry::Note { .. } => false,
        })
    }

    /// Count of messages that crossed `iface`.
    pub fn count_interface(&self, iface: Interface) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, TraceEntry::Message { iface: i, .. } if *i == iface))
            .count()
    }

    /// Clears all recorded entries (node names are kept). Scenarios use
    /// this to trace one procedure at a time.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.register_node("ms");
        t.register_node("bts");
        t.record_message(
            SimTime::from_micros(1),
            NodeId(0),
            NodeId(1),
            Interface::Um,
            "A".into(),
            "A-detail".into(),
        );
        t.record_note(SimTime::from_micros(2), NodeId(1), "step".into());
        t.record_message(
            SimTime::from_micros(3),
            NodeId(1),
            NodeId(0),
            Interface::Um,
            "B".into(),
            "B-detail".into(),
        );
        t.record_message(
            SimTime::from_micros(4),
            NodeId(0),
            NodeId(1),
            Interface::Um,
            "A".into(),
            "A-detail imsi=123".into(),
        );
        t
    }

    #[test]
    fn labels_skip_notes() {
        assert_eq!(sample().labels(), vec!["A", "B", "A"]);
    }

    #[test]
    fn subsequence_matching() {
        let t = sample();
        assert!(t.contains_subsequence(&["A", "B"]));
        assert!(t.contains_subsequence(&["A", "A"]));
        assert!(t.contains_subsequence(&["B", "A"]));
        assert!(!t.contains_subsequence(&["B", "B"]));
        assert!(t.contains_subsequence(&[]));
    }

    #[test]
    fn counting() {
        let t = sample();
        assert_eq!(t.count_label("A"), 2);
        assert_eq!(t.count_label("Z"), 0);
        assert_eq!(t.count_interface(Interface::Um), 3);
        assert_eq!(t.count_interface(Interface::A), 0);
    }

    #[test]
    fn find_and_times() {
        let t = sample();
        assert_eq!(t.find_label("A", 0), Some(0));
        assert_eq!(t.find_label("A", 1), Some(3));
        assert_eq!(t.find_label("A", 4), None);
        assert_eq!(t.first_time_of("A"), Some(SimTime::from_micros(1)));
        assert_eq!(t.last_time_of("A"), Some(SimTime::from_micros(4)));
        assert_eq!(t.first_time_of("Z"), None);
    }

    #[test]
    fn detail_scanning() {
        let t = sample();
        assert!(t.any_on_interface_contains(Interface::Um, "imsi=123"));
        assert!(!t.any_on_interface_contains(Interface::Um, "imsi=999"));
        assert!(!t.any_on_interface_contains(Interface::A, "imsi=123"));
    }

    #[test]
    fn clear_keeps_names() {
        let mut t = sample();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.node_name(NodeId(0)), "ms");
    }
}
