//! The simulated network: nodes, links, and the execution loop.

use std::any::Any;
use std::collections::{HashMap, HashSet};

use crate::context::{Context, Effect, TimerToken};
use crate::event::{EventKind, EventQueue};
use crate::interface::Interface;
use crate::link::{Link, LinkConfig, LinkQuality};
use crate::node::{Node, NodeId, Payload};
use crate::rng::SimRng;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Object-safe shim adding downcast support to every [`Node`].
///
/// `Send` is required so a whole [`Network`] can be handed between
/// worker threads — the load engine keeps every shard alive across
/// epochs and runs each epoch on whichever thread picks it up.
trait AnyNode<M: Payload>: Node<M> + Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: Payload, T: Node<M> + Send + 'static> AnyNode<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Result of an execution call such as
/// [`Network::run_until_quiescent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of events processed by this call.
    pub events: u64,
    /// Simulated time when the call returned.
    pub at: SimTime,
    /// True if the queue drained; false if the event cap stopped the run.
    pub quiescent: bool,
}

/// A deterministic simulated network of [`Node`]s.
///
/// See the [crate-level documentation](crate) for a worked example.
pub struct Network<M: Payload> {
    now: SimTime,
    nodes: Vec<Option<Box<dyn AnyNode<M>>>>,
    links: HashMap<(NodeId, NodeId), Link>,
    queue: EventQueue<M>,
    rng: SimRng,
    stats: Stats,
    trace: Trace,
    cancelled: HashSet<TimerToken>,
    next_timer: u64,
    started: bool,
    max_events: u64,
    trace_details: bool,
    trace_capture: bool,
}

impl<M: Payload> Network<M> {
    /// Creates an empty network seeded with `seed`. Identical seeds and
    /// identical scenario code produce identical traces.
    pub fn new(seed: u64) -> Self {
        Network {
            now: SimTime::ZERO,
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: EventQueue::new(),
            rng: SimRng::new(seed),
            stats: Stats::new(),
            trace: Trace::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            started: false,
            max_events: 50_000_000,
            trace_details: true,
            trace_capture: true,
        }
    }

    /// Disables per-message `Debug` detail capture in the trace (labels
    /// are always recorded). Load sweeps that never scan message
    /// contents turn this off to avoid formatting every delivery.
    pub fn set_trace_details(&mut self, enabled: bool) {
        self.trace_details = enabled;
    }

    /// Disables trace capture entirely — no labels, no notes. Node names
    /// stay registered so diagnostics still resolve ids. Population-scale
    /// runs keep every shard's network alive for the whole busy hour, so
    /// even label-only capture would grow without bound; they turn the
    /// trace off and rely on [`Stats`] instead.
    pub fn set_trace_capture(&mut self, enabled: bool) {
        self.trace_capture = enabled;
    }

    /// Caps the number of events a single run call may process (a runaway
    /// guard; the default is fifty million).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_max_events(&mut self, cap: u64) {
        assert!(cap > 0, "event cap must be positive");
        self.max_events = cap;
    }

    /// Registers a node under a display name and returns its id.
    ///
    /// If the network has already started running, the node's
    /// [`Node::on_start`] is invoked immediately.
    pub fn add_node<N>(&mut self, name: &str, node: N) -> NodeId
    where
        N: Node<M> + Send + 'static,
    {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Box::new(node)));
        self.trace.register_node(name);
        if self.started {
            // Deferred so the caller can still provision links before the
            // node's on_start sends anything.
            self.queue.push(self.now, EventKind::Start { node: id });
        }
        id
    }

    /// Provisions a symmetric link between `a` and `b` with fixed `latency`,
    /// tagged with the given interface.
    ///
    /// # Panics
    ///
    /// Panics if a link between the pair already exists, or if `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, iface: Interface, latency: SimDuration) {
        self.connect_with(
            a,
            b,
            LinkConfig::symmetric(iface, LinkQuality::new(latency)),
        );
    }

    /// Provisions a link with full [`LinkConfig`] control.
    ///
    /// # Panics
    ///
    /// Panics on duplicate links or self-links; both indicate topology bugs.
    pub fn connect_with(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        assert_ne!(a, b, "cannot link a node to itself");
        assert!(
            (a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len(),
            "link endpoints must be registered nodes"
        );
        let key = Self::link_key(a, b);
        let prev = self.links.insert(key, Link { a, b, config });
        assert!(
            prev.is_none(),
            "duplicate link between {a} and {b} (interface {})",
            config.interface
        );
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The link between two nodes, if provisioned.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&Self::link_key(a, b))
    }

    /// Iterates over all provisioned links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.values()
    }

    /// Replaces the quality of an existing link (both directions).
    ///
    /// # Panics
    ///
    /// Panics if no link exists between the pair.
    pub fn set_link_quality(&mut self, a: NodeId, b: NodeId, quality: LinkQuality) {
        let link = self
            .links
            .get_mut(&Self::link_key(a, b))
            .unwrap_or_else(|| panic!("no link between {a} and {b}"));
        link.config.forward = quality;
        link.config.reverse = quality;
    }

    /// Schedules `msg` for delivery to `to` after `delay`, bypassing links.
    ///
    /// The delivery is attributed to `to` itself over [`Interface::Internal`];
    /// scenario drivers use this to issue local commands ("dial", "answer",
    /// "power on") to nodes.
    pub fn inject(&mut self, delay: SimDuration, to: NodeId, msg: M) {
        self.queue.push(
            self.now + delay,
            EventKind::Deliver {
                from: to,
                to,
                iface: Interface::Internal,
                msg,
            },
        );
    }

    /// Immediately delivers pending work until the event queue drains.
    ///
    /// Returns how many events were processed. Stops early (with
    /// `quiescent == false`) if the event cap is reached.
    pub fn run_until_quiescent(&mut self) -> RunOutcome {
        self.ensure_started();
        let mut events = 0;
        while events < self.max_events {
            if !self.step_inner() {
                return RunOutcome {
                    events,
                    at: self.now,
                    quiescent: true,
                };
            }
            events += 1;
        }
        RunOutcome {
            events,
            at: self.now,
            quiescent: false,
        }
    }

    /// Processes events up to and including `deadline`, then sets the clock
    /// to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.ensure_started();
        let mut events = 0;
        while events < self.max_events {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step_inner();
                    events += 1;
                }
                _ => break,
            }
        }
        let quiescent = events < self.max_events;
        if self.now < deadline {
            self.now = deadline;
        }
        RunOutcome {
            events,
            at: self.now,
            quiescent,
        }
    }

    /// Processes events for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Processes a single event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        self.step_inner()
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            self.dispatch(NodeId(idx as u32), |n, ctx| n.on_start(ctx));
        }
    }

    fn step_inner(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;
        match event.kind {
            EventKind::Deliver {
                from,
                to,
                iface,
                msg,
            } => {
                self.stats.count("sim.delivered");
                if self.trace_capture && msg.traceable() {
                    let detail = if self.trace_details {
                        format!("{msg:?}")
                    } else {
                        String::new()
                    };
                    self.trace
                        .record_message(self.now, from, to, iface, msg.label(), detail);
                }
                self.dispatch(to, |n, ctx| n.on_message(ctx, from, iface, msg));
            }
            EventKind::Timer { node, token, tag } => {
                if self.cancelled.remove(&token) {
                    self.stats.count("sim.timer_cancelled");
                } else {
                    self.stats.count("sim.timer_fired");
                    self.dispatch(node, |n, ctx| n.on_timer(ctx, token, tag));
                }
            }
            EventKind::Start { node } => {
                self.dispatch(node, |n, ctx| n.on_start(ctx));
            }
        }
        true
    }

    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn AnyNode<M>, &mut Context<'_, M>),
    {
        let idx = id.0 as usize;
        let mut node = self.nodes[idx]
            .take()
            .unwrap_or_else(|| panic!("node {id} is missing or re-entered"));
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            effects: Vec::new(),
            rng: &mut self.rng,
            stats: &mut self.stats,
            next_timer: &mut self.next_timer,
        };
        f(&mut *node, &mut ctx);
        let effects = std::mem::take(&mut ctx.effects);
        self.nodes[idx] = Some(node);
        self.apply_effects(id, effects);
    }

    fn apply_effects(&mut self, from: NodeId, effects: Vec<Effect<M>>) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => {
                    let link = *self.link_between(from, to).unwrap_or_else(|| {
                        panic!(
                            "node {from} ({}) sent {} to {to} ({}) but no link exists",
                            self.trace.node_name(from),
                            msg.label(),
                            self.trace.node_name(to),
                        )
                    });
                    let quality = link.quality_from(from);
                    match quality.sample(msg.wire_size(), msg.reliable(), &mut self.rng) {
                        Some(delay) => {
                            self.queue.push(
                                self.now + delay,
                                EventKind::Deliver {
                                    from,
                                    to,
                                    iface: link.interface(),
                                    msg,
                                },
                            );
                        }
                        None => {
                            self.stats.count("sim.lost");
                        }
                    }
                }
                Effect::Timer { at, token, tag } => {
                    self.queue.push(at, EventKind::Timer { node: from, token, tag });
                }
                Effect::CancelTimer { token } => {
                    self.cancelled.insert(token);
                }
                Effect::Note { text } => {
                    if self.trace_capture {
                        self.trace.record_note(self.now, from, text);
                    }
                }
            }
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Pending (not yet processed) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The message trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (e.g. [`Trace::clear`] between procedures).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics access for scenario-level counters.
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Immutable access to a node's concrete state.
    ///
    /// Returns `None` if the node's concrete type is not `N`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this network.
    pub fn node<N: 'static>(&self, id: NodeId) -> Option<&N> {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("node is missing")
            .as_any()
            .downcast_ref::<N>()
    }

    /// Mutable access to a node's concrete state (for scenario setup only;
    /// mutating nodes mid-run bypasses the deterministic event order).
    pub fn node_mut<N: 'static>(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("node is missing")
            .as_any_mut()
            .downcast_mut::<N>()
    }

    /// The display name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.trace.node_name(id)
    }
}

impl<M: Payload> std::fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("pending", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    impl Payload for Msg {
        fn label(&self) -> String {
            match self {
                Msg::Ping(_) => "Ping".into(),
                Msg::Pong(_) => "Pong".into(),
                Msg::Tick => "Tick".into(),
            }
        }
        // These test messages model unreliable datagrams so the loss
        // tests exercise the drop path.
        fn reliable(&self) -> bool {
            false
        }
    }

    struct Echo {
        seen: u32,
    }

    impl Node<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _i: Interface, msg: Msg) {
            if let Msg::Ping(n) = msg {
                self.seen += 1;
                ctx.send(from, Msg::Pong(n + 1));
            }
        }
    }

    struct Caller {
        peer: NodeId,
        reply: Option<u32>,
        reply_at: Option<SimTime>,
    }

    impl Node<Msg> for Caller {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping(10));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.reply = Some(n);
                self.reply_at = Some(ctx.now());
            }
        }
    }

    fn ping_net() -> (Network<Msg>, NodeId, NodeId) {
        let mut net = Network::new(1);
        let echo = net.add_node("echo", Echo { seen: 0 });
        let caller = net.add_node(
            "caller",
            Caller {
                peer: echo,
                reply: None,
                reply_at: None,
            },
        );
        net.connect(caller, echo, Interface::Lan, SimDuration::from_millis(4));
        (net, echo, caller)
    }

    #[test]
    fn round_trip_latency() {
        let (mut net, echo, caller) = ping_net();
        let outcome = net.run_until_quiescent();
        assert!(outcome.quiescent);
        assert_eq!(outcome.events, 2);
        let c = net.node::<Caller>(caller).unwrap();
        assert_eq!(c.reply, Some(11));
        assert_eq!(c.reply_at, Some(SimTime::from_micros(8_000)));
        assert_eq!(net.node::<Echo>(echo).unwrap().seen, 1);
    }

    #[test]
    fn trace_records_labels_and_interfaces() {
        let (mut net, _, _) = ping_net();
        net.run_until_quiescent();
        assert_eq!(net.trace().labels(), vec!["Ping", "Pong"]);
        assert_eq!(net.trace().count_interface(Interface::Lan), 2);
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let (net, echo, _) = ping_net();
        assert!(net.node::<Caller>(echo).is_none());
    }

    #[test]
    fn inject_delivers_internal_command() {
        struct Sink {
            got: Vec<(Interface, Msg)>,
        }
        impl Node<Msg> for Sink {
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Msg>,
                _f: NodeId,
                i: Interface,
                m: Msg,
            ) {
                self.got.push((i, m));
            }
        }
        let mut net = Network::new(0);
        let sink = net.add_node("sink", Sink { got: Vec::new() });
        net.inject(SimDuration::from_millis(2), sink, Msg::Tick);
        net.run_until_quiescent();
        let s = net.node::<Sink>(sink).unwrap();
        assert_eq!(s.got, vec![(Interface::Internal, Msg::Tick)]);
        assert_eq!(net.now(), SimTime::from_micros(2_000));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Node<Msg> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                let t = ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.cancel_timer(t);
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, _m: Msg) {}
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _t: TimerToken, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut net = Network::new(0);
        let id = net.add_node("timed", Timed { fired: Vec::new() });
        net.run_until_quiescent();
        assert_eq!(net.node::<Timed>(id).unwrap().fired, vec![1, 3]);
        assert_eq!(net.stats().counter("sim.timer_cancelled"), 1);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut net, _, _) = ping_net();
        let out = net.run_until(SimTime::from_micros(5_000));
        assert_eq!(out.events, 1); // only the Ping delivered by then
        assert_eq!(net.now(), SimTime::from_micros(5_000));
        assert_eq!(net.pending_events(), 1);
        net.run_until_quiescent();
        assert_eq!(net.trace().labels(), vec!["Ping", "Pong"]);
    }

    #[test]
    fn lossy_link_counts_drops() {
        let mut net = Network::new(3);
        let echo = net.add_node("echo", Echo { seen: 0 });
        let caller = net.add_node(
            "caller",
            Caller {
                peer: echo,
                reply: None,
                reply_at: None,
            },
        );
        net.connect_with(
            caller,
            echo,
            LinkConfig::symmetric(
                Interface::Lan,
                LinkQuality::new(SimDuration::from_millis(1)).with_loss(1.0),
            ),
        );
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("sim.lost"), 1);
        assert_eq!(net.node::<Echo>(echo).unwrap().seen, 0);
    }

    #[test]
    #[should_panic(expected = "no link exists")]
    fn sending_without_link_panics() {
        let mut net = Network::new(0);
        let echo = net.add_node("echo", Echo { seen: 0 });
        let _caller = net.add_node(
            "caller",
            Caller {
                peer: echo,
                reply: None,
                reply_at: None,
            },
        );
        net.run_until_quiescent();
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_panics() {
        let (mut net, echo, caller) = ping_net();
        net.connect(caller, echo, Interface::Lan, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "cannot link a node to itself")]
    fn self_link_panics() {
        let mut net = Network::new(0);
        let echo = net.add_node("echo", Echo { seen: 0 });
        net.connect(echo, echo, Interface::Lan, SimDuration::ZERO);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut net = Network::new(seed);
            let echo = net.add_node("echo", Echo { seen: 0 });
            let caller = net.add_node(
                "caller",
                Caller {
                    peer: echo,
                    reply: None,
                    reply_at: None,
                },
            );
            net.connect_with(
                caller,
                echo,
                LinkConfig::symmetric(
                    Interface::Lan,
                    LinkQuality::new(SimDuration::from_millis(2))
                        .with_jitter(SimDuration::from_millis(3)),
                ),
            );
            net.run_until_quiescent();
            net.node::<Caller>(caller).unwrap().reply_at
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn event_cap_halts_runaway() {
        struct Looper {
            peer: Option<NodeId>,
        }
        impl Node<Msg> for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                if let Some(p) = self.peer {
                    ctx.send(p, Msg::Tick);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _i: Interface, _m: Msg) {
                ctx.send(from, Msg::Tick);
            }
        }
        let mut net = Network::new(0);
        let a = net.add_node("a", Looper { peer: None });
        let b = net.add_node("b", Looper { peer: Some(a) });
        net.connect(a, b, Interface::Lan, SimDuration::from_millis(1));
        net.set_max_events(100);
        let out = net.run_until_quiescent();
        assert!(!out.quiescent);
        assert_eq!(out.events, 100);
    }

    #[test]
    fn late_added_node_gets_on_start() {
        struct Starter {
            started: bool,
        }
        impl Node<Msg> for Starter {
            fn on_start(&mut self, _c: &mut Context<'_, Msg>) {
                self.started = true;
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, _m: Msg) {}
        }
        let mut net: Network<Msg> = Network::new(0);
        net.run_until_quiescent();
        let id = net.add_node("late", Starter { started: false });
        assert!(!net.node::<Starter>(id).unwrap().started, "deferred");
        net.run_until_quiescent();
        assert!(net.node::<Starter>(id).unwrap().started);
    }
}
