//! The simulated network: nodes, links, and the execution loop.

use std::any::Any;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::context::{Context, Effect};
use crate::event::{EventKind, EventQueue, Kernel};
use crate::interface::Interface;
use crate::link::{Link, LinkConfig, LinkQuality};
use crate::node::{Node, NodeId, Payload};
use crate::rng::SimRng;
use crate::stats::Stats;
use crate::time::{SimDuration, SimTime};
use crate::timer::TimerTable;
use crate::trace::Trace;

/// Object-safe shim adding downcast support to every [`Node`].
///
/// `Send` is required so a whole [`Network`] can be handed between
/// worker threads — the load engine keeps every shard alive across
/// epochs and runs each epoch on whichever thread picks it up.
trait AnyNode<M: Payload>: Node<M> + Send {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M: Payload, T: Node<M> + Send + 'static> AnyNode<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Fibonacci-multiply hasher for link keys, which are looked up once per
/// message send. The keys are two small `NodeId`s under simulation
/// control (no adversarial input), so the default SipHash buys nothing
/// but latency on the hot path. Lookup-only: link iteration order never
/// reaches traces, stats, or fingerprints.
#[derive(Default)]
struct LinkKeyHasher(u64);

impl Hasher for LinkKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0.rotate_left(32) ^ u64::from(n)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

type LinkMap = HashMap<(NodeId, NodeId), Link, BuildHasherDefault<LinkKeyHasher>>;

/// Result of an execution call such as
/// [`Network::run_until_quiescent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Number of events processed by this call.
    pub events: u64,
    /// Simulated time when the call returned.
    pub at: SimTime,
    /// True if the queue drained; false if the event cap stopped the run.
    pub quiescent: bool,
}

/// A deterministic simulated network of [`Node`]s.
///
/// See the [crate-level documentation](crate) for a worked example.
pub struct Network<M: Payload> {
    now: SimTime,
    nodes: Vec<Option<Box<dyn AnyNode<M>>>>,
    links: LinkMap,
    queue: EventQueue<M>,
    rng: SimRng,
    stats: Stats,
    trace: Trace,
    timers: TimerTable,
    started: bool,
    max_events: u64,
    trace_details: bool,
    trace_capture: bool,
    /// Scratch buffer reused across dispatches so steady-state callbacks
    /// do not allocate an effects vector per event.
    fx: Vec<Effect<M>>,
    // Kernel counters, batched per run call instead of a name lookup per
    // event; flushed into `stats` by `flush_counts`.
    k_delivered: u64,
    k_fired: u64,
    k_cancelled: u64,
    k_lost: u64,
}

impl<M: Payload> Network<M> {
    /// Creates an empty network seeded with `seed`. Identical seeds and
    /// identical scenario code produce identical traces.
    ///
    /// Runs on the default timer-wheel kernel; see
    /// [`with_kernel`](Network::with_kernel) to pick explicitly.
    pub fn new(seed: u64) -> Self {
        Self::with_kernel(seed, Kernel::default())
    }

    /// Creates an empty network on an explicit event [`Kernel`]. Both
    /// kernels produce bit-identical schedules; the heap survives as the
    /// differential oracle the wheel is validated against.
    pub fn with_kernel(seed: u64, kernel: Kernel) -> Self {
        Network {
            now: SimTime::ZERO,
            nodes: Vec::new(),
            links: LinkMap::default(),
            queue: EventQueue::new(kernel),
            rng: SimRng::new(seed),
            stats: Stats::new(),
            trace: Trace::new(),
            timers: TimerTable::new(),
            started: false,
            max_events: 50_000_000,
            trace_details: true,
            trace_capture: true,
            fx: Vec::new(),
            k_delivered: 0,
            k_fired: 0,
            k_cancelled: 0,
            k_lost: 0,
        }
    }

    /// The event kernel this network runs on.
    pub fn kernel(&self) -> Kernel {
        self.queue.kernel()
    }

    /// Disables per-message `Debug` detail capture in the trace (labels
    /// are always recorded). Load sweeps that never scan message
    /// contents turn this off to avoid formatting every delivery.
    pub fn set_trace_details(&mut self, enabled: bool) {
        self.trace_details = enabled;
    }

    /// Disables trace capture entirely — no labels, no notes. Node names
    /// stay registered so diagnostics still resolve ids. Population-scale
    /// runs keep every shard's network alive for the whole busy hour, so
    /// even label-only capture would grow without bound; they turn the
    /// trace off and rely on [`Stats`] instead.
    pub fn set_trace_capture(&mut self, enabled: bool) {
        self.trace_capture = enabled;
    }

    /// Caps the number of events a single run call may process (a runaway
    /// guard; the default is fifty million).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn set_max_events(&mut self, cap: u64) {
        assert!(cap > 0, "event cap must be positive");
        self.max_events = cap;
    }

    /// Registers a node under a display name and returns its id.
    ///
    /// If the network has already started running, the node's
    /// [`Node::on_start`] is invoked immediately.
    pub fn add_node<N>(&mut self, name: &str, node: N) -> NodeId
    where
        N: Node<M> + Send + 'static,
    {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(Box::new(node)));
        self.trace.register_node(name);
        if self.started {
            // Deferred so the caller can still provision links before the
            // node's on_start sends anything.
            self.queue.push(self.now, EventKind::Start { node: id });
        }
        id
    }

    /// Provisions a symmetric link between `a` and `b` with fixed `latency`,
    /// tagged with the given interface.
    ///
    /// # Panics
    ///
    /// Panics if a link between the pair already exists, or if `a == b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, iface: Interface, latency: SimDuration) {
        self.connect_with(
            a,
            b,
            LinkConfig::symmetric(iface, LinkQuality::new(latency)),
        );
    }

    /// Provisions a link with full [`LinkConfig`] control.
    ///
    /// # Panics
    ///
    /// Panics on duplicate links or self-links; both indicate topology bugs.
    pub fn connect_with(&mut self, a: NodeId, b: NodeId, config: LinkConfig) {
        assert_ne!(a, b, "cannot link a node to itself");
        assert!(
            (a.0 as usize) < self.nodes.len() && (b.0 as usize) < self.nodes.len(),
            "link endpoints must be registered nodes"
        );
        let key = Self::link_key(a, b);
        let prev = self.links.insert(key, Link { a, b, config });
        assert!(
            prev.is_none(),
            "duplicate link between {a} and {b} (interface {})",
            config.interface
        );
    }

    fn link_key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The link between two nodes, if provisioned.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        self.links.get(&Self::link_key(a, b))
    }

    /// Iterates over all provisioned links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.values()
    }

    /// Replaces the quality of an existing link (both directions).
    ///
    /// # Panics
    ///
    /// Panics if no link exists between the pair.
    pub fn set_link_quality(&mut self, a: NodeId, b: NodeId, quality: LinkQuality) {
        let link = self
            .links
            .get_mut(&Self::link_key(a, b))
            .unwrap_or_else(|| panic!("no link between {a} and {b}"));
        link.config.forward = quality;
        link.config.reverse = quality;
    }

    /// Schedules `msg` for delivery to `to` after `delay`, bypassing links.
    ///
    /// The delivery is attributed to `to` itself over [`Interface::Internal`];
    /// scenario drivers use this to issue local commands ("dial", "answer",
    /// "power on") to nodes.
    pub fn inject(&mut self, delay: SimDuration, to: NodeId, msg: M) {
        self.queue.push(
            self.now + delay,
            EventKind::Deliver {
                from: to,
                to,
                iface: Interface::Internal,
                msg,
            },
        );
    }

    /// Immediately delivers pending work until the event queue drains.
    ///
    /// Returns how many events were processed. Stops early (with
    /// `quiescent == false`) if the event cap is reached.
    pub fn run_until_quiescent(&mut self) -> RunOutcome {
        self.ensure_started();
        let mut events = 0;
        let mut quiescent = false;
        while events < self.max_events {
            let Some((at, kind)) = self.queue.pop() else {
                quiescent = true;
                break;
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.process_event(kind);
            events += 1;
        }
        self.flush_counts();
        RunOutcome {
            events,
            at: self.now,
            quiescent,
        }
    }

    /// Processes events up to and including `deadline`, then sets the clock
    /// to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.ensure_started();
        let mut events = 0;
        while events < self.max_events {
            let Some((at, kind)) = self.queue.pop_at_or_before(deadline) else {
                break;
            };
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.process_event(kind);
            events += 1;
        }
        let quiescent = events < self.max_events;
        if self.now < deadline {
            self.now = deadline;
        }
        self.flush_counts();
        RunOutcome {
            events,
            at: self.now,
            quiescent,
        }
    }

    /// Processes events for `span` of simulated time from the current clock.
    pub fn run_for(&mut self, span: SimDuration) -> RunOutcome {
        let deadline = self.now + span;
        self.run_until(deadline)
    }

    /// Processes a single event. Returns false if the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let stepped = match self.queue.pop() {
            Some((at, kind)) => {
                debug_assert!(at >= self.now, "time went backwards");
                self.now = at;
                self.process_event(kind);
                true
            }
            None => false,
        };
        self.flush_counts();
        stepped
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            self.dispatch(NodeId(idx as u32), |n, ctx| n.on_start(ctx));
        }
    }

    /// Moves the batched kernel counters into [`Stats`]. Called at the end
    /// of every run entry point so external readers always see totals.
    fn flush_counts(&mut self) {
        if self.k_delivered > 0 {
            self.stats.count_by("sim.delivered", self.k_delivered);
            self.k_delivered = 0;
        }
        if self.k_fired > 0 {
            self.stats.count_by("sim.timer_fired", self.k_fired);
            self.k_fired = 0;
        }
        if self.k_cancelled > 0 {
            self.stats.count_by("sim.timer_cancelled", self.k_cancelled);
            self.k_cancelled = 0;
        }
        if self.k_lost > 0 {
            self.stats.count_by("sim.lost", self.k_lost);
            self.k_lost = 0;
        }
    }

    fn process_event(&mut self, kind: EventKind<M>) {
        match kind {
            EventKind::Deliver {
                from,
                to,
                iface,
                msg,
            } => {
                self.k_delivered += 1;
                if self.trace_capture && msg.traceable() {
                    let detail = if self.trace_details {
                        format!("{msg:?}")
                    } else {
                        String::new()
                    };
                    self.trace
                        .record_message(self.now, from, to, iface, msg.label(), detail);
                }
                self.dispatch(to, |n, ctx| n.on_message(ctx, from, iface, msg));
            }
            EventKind::Timer { node, token, tag } => {
                if self.timers.try_fire(token) {
                    self.k_fired += 1;
                    self.dispatch(node, |n, ctx| n.on_timer(ctx, token, tag));
                } else {
                    // Stale event: the timer was cancelled after this event
                    // was queued. Counting it here (not at cancel time)
                    // matches the heap kernel's historical semantics.
                    self.k_cancelled += 1;
                }
            }
            EventKind::Start { node } => {
                self.dispatch(node, |n, ctx| n.on_start(ctx));
            }
        }
    }

    fn dispatch<F>(&mut self, id: NodeId, f: F)
    where
        F: FnOnce(&mut dyn AnyNode<M>, &mut Context<'_, M>),
    {
        let idx = id.0 as usize;
        let mut node = self.nodes[idx]
            .take()
            .unwrap_or_else(|| panic!("node {id} is missing or re-entered"));
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            effects: std::mem::take(&mut self.fx),
            rng: &mut self.rng,
            stats: &mut self.stats,
            timers: &mut self.timers,
        };
        f(&mut *node, &mut ctx);
        let mut effects = std::mem::take(&mut ctx.effects);
        self.nodes[idx] = Some(node);
        self.apply_effects(id, &mut effects);
        // Hand the (now drained) buffer back for the next dispatch.
        self.fx = effects;
    }

    fn apply_effects(&mut self, from: NodeId, effects: &mut Vec<Effect<M>>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => {
                    // Field-level access (not `link_between`) so the link
                    // borrow stays disjoint from `self.rng` and
                    // `self.queue` below — no per-send copy of the link.
                    let link = self.links.get(&Self::link_key(from, to)).unwrap_or_else(|| {
                        panic!(
                            "node {from} ({}) sent {} to {to} ({}) but no link exists",
                            self.trace.node_name(from),
                            msg.label(),
                            self.trace.node_name(to),
                        )
                    });
                    let quality = if from == link.a {
                        &link.config.forward
                    } else {
                        &link.config.reverse
                    };
                    match quality.sample(msg.wire_size(), msg.reliable(), &mut self.rng) {
                        Some(delay) => {
                            self.queue.push(
                                self.now + delay,
                                EventKind::Deliver {
                                    from,
                                    to,
                                    iface: link.interface(),
                                    msg,
                                },
                            );
                        }
                        None => {
                            self.k_lost += 1;
                        }
                    }
                }
                Effect::Timer { at, token, tag } => {
                    self.queue.push(at, EventKind::Timer { node: from, token, tag });
                }
                Effect::CancelTimer { token } => {
                    self.timers.cancel(token);
                }
                Effect::Note { text } => {
                    if self.trace_capture {
                        self.trace.record_note(self.now, from, text);
                    }
                }
            }
        }
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Pending (not yet processed) events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// The message trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable trace access (e.g. [`Trace::clear`] between procedures).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Statistics collected so far.
    ///
    /// Kernel counters (`sim.delivered`, `sim.timer_fired`, …) are batched
    /// during a run and flushed when each run call returns, so totals read
    /// between runs are always exact.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable statistics access for scenario-level counters.
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.flush_counts();
        &mut self.stats
    }

    /// Number of currently armed timers (set but neither fired nor
    /// cancelled). Cancel-after-fire and double-cancel leave no residue.
    pub fn armed_timers(&self) -> usize {
        self.timers.live()
    }

    /// Immutable access to a node's concrete state.
    ///
    /// Returns `None` if the node's concrete type is not `N`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this network.
    pub fn node<N: 'static>(&self, id: NodeId) -> Option<&N> {
        self.nodes[id.0 as usize]
            .as_ref()
            .expect("node is missing")
            .as_any()
            .downcast_ref::<N>()
    }

    /// Mutable access to a node's concrete state (for scenario setup only;
    /// mutating nodes mid-run bypasses the deterministic event order).
    pub fn node_mut<N: 'static>(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes[id.0 as usize]
            .as_mut()
            .expect("node is missing")
            .as_any_mut()
            .downcast_mut::<N>()
    }

    /// The display name a node was registered with.
    pub fn node_name(&self, id: NodeId) -> &str {
        self.trace.node_name(id)
    }
}

impl<M: Payload> std::fmt::Debug for Network<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("pending", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TimerToken;

    #[derive(Clone, Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
        Tick,
    }

    impl Payload for Msg {
        fn label(&self) -> String {
            match self {
                Msg::Ping(_) => "Ping".into(),
                Msg::Pong(_) => "Pong".into(),
                Msg::Tick => "Tick".into(),
            }
        }
        // These test messages model unreliable datagrams so the loss
        // tests exercise the drop path.
        fn reliable(&self) -> bool {
            false
        }
    }

    struct Echo {
        seen: u32,
    }

    impl Node<Msg> for Echo {
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _i: Interface, msg: Msg) {
            if let Msg::Ping(n) = msg {
                self.seen += 1;
                ctx.send(from, Msg::Pong(n + 1));
            }
        }
    }

    struct Caller {
        peer: NodeId,
        reply: Option<u32>,
        reply_at: Option<SimTime>,
    }

    impl Node<Msg> for Caller {
        fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
            ctx.send(self.peer, Msg::Ping(10));
        }
        fn on_message(&mut self, ctx: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.reply = Some(n);
                self.reply_at = Some(ctx.now());
            }
        }
    }

    fn ping_net() -> (Network<Msg>, NodeId, NodeId) {
        let mut net = Network::new(1);
        let echo = net.add_node("echo", Echo { seen: 0 });
        let caller = net.add_node(
            "caller",
            Caller {
                peer: echo,
                reply: None,
                reply_at: None,
            },
        );
        net.connect(caller, echo, Interface::Lan, SimDuration::from_millis(4));
        (net, echo, caller)
    }

    #[test]
    fn round_trip_latency() {
        let (mut net, echo, caller) = ping_net();
        let outcome = net.run_until_quiescent();
        assert!(outcome.quiescent);
        assert_eq!(outcome.events, 2);
        let c = net.node::<Caller>(caller).unwrap();
        assert_eq!(c.reply, Some(11));
        assert_eq!(c.reply_at, Some(SimTime::from_micros(8_000)));
        assert_eq!(net.node::<Echo>(echo).unwrap().seen, 1);
    }

    #[test]
    fn trace_records_labels_and_interfaces() {
        let (mut net, _, _) = ping_net();
        net.run_until_quiescent();
        assert_eq!(net.trace().labels(), vec!["Ping", "Pong"]);
        assert_eq!(net.trace().count_interface(Interface::Lan), 2);
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        let (net, echo, _) = ping_net();
        assert!(net.node::<Caller>(echo).is_none());
    }

    #[test]
    fn inject_delivers_internal_command() {
        struct Sink {
            got: Vec<(Interface, Msg)>,
        }
        impl Node<Msg> for Sink {
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Msg>,
                _f: NodeId,
                i: Interface,
                m: Msg,
            ) {
                self.got.push((i, m));
            }
        }
        let mut net = Network::new(0);
        let sink = net.add_node("sink", Sink { got: Vec::new() });
        net.inject(SimDuration::from_millis(2), sink, Msg::Tick);
        net.run_until_quiescent();
        let s = net.node::<Sink>(sink).unwrap();
        assert_eq!(s.got, vec![(Interface::Internal, Msg::Tick)]);
        assert_eq!(net.now(), SimTime::from_micros(2_000));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
        }
        impl Node<Msg> for Timed {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 1);
                let t = ctx.set_timer(SimDuration::from_millis(2), 2);
                ctx.cancel_timer(t);
                ctx.set_timer(SimDuration::from_millis(3), 3);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, _m: Msg) {}
            fn on_timer(&mut self, _c: &mut Context<'_, Msg>, _t: TimerToken, tag: u64) {
                self.fired.push(tag);
            }
        }
        let mut net = Network::new(0);
        let id = net.add_node("timed", Timed { fired: Vec::new() });
        net.run_until_quiescent();
        assert_eq!(net.node::<Timed>(id).unwrap().fired, vec![1, 3]);
        assert_eq!(net.stats().counter("sim.timer_cancelled"), 1);
    }

    #[test]
    fn cancel_after_fire_leaves_no_residual_state() {
        // Regression test for the old `cancelled: HashSet<TimerToken>`
        // leak: cancelling a timer whose event had already fired (or
        // cancelling twice) inserted a token nothing would ever remove.
        struct LateCancel {
            token: Option<TimerToken>,
            fired: u32,
        }
        impl Node<Msg> for LateCancel {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                self.token = Some(ctx.set_timer(SimDuration::from_millis(1), 1));
                // Fires after the first timer; cancels it post-fire.
                ctx.set_timer(SimDuration::from_millis(2), 2);
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, _m: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken, tag: u64) {
                self.fired += 1;
                if tag == 2 {
                    let stale = self.token.take().expect("token stored on start");
                    ctx.cancel_timer(stale); // cancel-after-fire
                    ctx.cancel_timer(stale); // double cancel
                }
            }
        }
        for kernel in [Kernel::Heap, Kernel::Wheel] {
            let mut net = Network::with_kernel(0, kernel);
            let id = net.add_node("late", LateCancel { token: None, fired: 0 });
            net.run_until_quiescent();
            assert_eq!(net.node::<LateCancel>(id).unwrap().fired, 2);
            // Cancelling after the fire must not count as a cancellation…
            assert_eq!(net.stats().counter("sim.timer_cancelled"), 0);
            assert_eq!(net.stats().counter("sim.timer_fired"), 2);
            // …and must leave no residual bookkeeping behind.
            assert_eq!(net.armed_timers(), 0, "kernel {kernel}");
            assert_eq!(net.timers.slots(), 2, "kernel {kernel}");
        }
    }

    #[test]
    fn timer_churn_reuses_slots() {
        // A long chain of set → fire → cancel-after-fire cycles must not
        // grow the timer table: the table is bounded by peak concurrency.
        struct Chain {
            prev: Option<TimerToken>,
            remaining: u32,
        }
        impl Node<Msg> for Chain {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                self.prev = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, _m: Msg) {}
            fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken, _tag: u64) {
                if let Some(stale) = self.prev.take() {
                    ctx.cancel_timer(stale); // always post-fire, always a no-op
                }
                if self.remaining > 0 {
                    self.remaining -= 1;
                    self.prev = Some(ctx.set_timer(SimDuration::from_millis(1), 0));
                }
            }
        }
        let mut net = Network::new(0);
        net.add_node("chain", Chain { prev: None, remaining: 1_000 });
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("sim.timer_fired"), 1_001);
        assert_eq!(net.armed_timers(), 0);
        assert!(
            net.timers.slots() <= 2,
            "slot churn must stay bounded, got {}",
            net.timers.slots()
        );
    }

    #[test]
    fn both_kernels_available() {
        let net: Network<Msg> = Network::new(0);
        assert_eq!(net.kernel(), Kernel::Wheel);
        let net: Network<Msg> = Network::with_kernel(0, Kernel::Heap);
        assert_eq!(net.kernel(), Kernel::Heap);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut net, _, _) = ping_net();
        let out = net.run_until(SimTime::from_micros(5_000));
        assert_eq!(out.events, 1); // only the Ping delivered by then
        assert_eq!(net.now(), SimTime::from_micros(5_000));
        assert_eq!(net.pending_events(), 1);
        net.run_until_quiescent();
        assert_eq!(net.trace().labels(), vec!["Ping", "Pong"]);
    }

    #[test]
    fn lossy_link_counts_drops() {
        let mut net = Network::new(3);
        let echo = net.add_node("echo", Echo { seen: 0 });
        let caller = net.add_node(
            "caller",
            Caller {
                peer: echo,
                reply: None,
                reply_at: None,
            },
        );
        net.connect_with(
            caller,
            echo,
            LinkConfig::symmetric(
                Interface::Lan,
                LinkQuality::new(SimDuration::from_millis(1)).with_loss(1.0),
            ),
        );
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("sim.lost"), 1);
        assert_eq!(net.node::<Echo>(echo).unwrap().seen, 0);
    }

    #[test]
    #[should_panic(expected = "no link exists")]
    fn sending_without_link_panics() {
        let mut net = Network::new(0);
        let echo = net.add_node("echo", Echo { seen: 0 });
        let _caller = net.add_node(
            "caller",
            Caller {
                peer: echo,
                reply: None,
                reply_at: None,
            },
        );
        net.run_until_quiescent();
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_panics() {
        let (mut net, echo, caller) = ping_net();
        net.connect(caller, echo, Interface::Lan, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "cannot link a node to itself")]
    fn self_link_panics() {
        let mut net = Network::new(0);
        let echo = net.add_node("echo", Echo { seen: 0 });
        net.connect(echo, echo, Interface::Lan, SimDuration::ZERO);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let mut net = Network::new(seed);
            let echo = net.add_node("echo", Echo { seen: 0 });
            let caller = net.add_node(
                "caller",
                Caller {
                    peer: echo,
                    reply: None,
                    reply_at: None,
                },
            );
            net.connect_with(
                caller,
                echo,
                LinkConfig::symmetric(
                    Interface::Lan,
                    LinkQuality::new(SimDuration::from_millis(2))
                        .with_jitter(SimDuration::from_millis(3)),
                ),
            );
            net.run_until_quiescent();
            net.node::<Caller>(caller).unwrap().reply_at
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn event_cap_halts_runaway() {
        struct Looper {
            peer: Option<NodeId>,
        }
        impl Node<Msg> for Looper {
            fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
                if let Some(p) = self.peer {
                    ctx.send(p, Msg::Tick);
                }
            }
            fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _i: Interface, _m: Msg) {
                ctx.send(from, Msg::Tick);
            }
        }
        let mut net = Network::new(0);
        let a = net.add_node("a", Looper { peer: None });
        let b = net.add_node("b", Looper { peer: Some(a) });
        net.connect(a, b, Interface::Lan, SimDuration::from_millis(1));
        net.set_max_events(100);
        let out = net.run_until_quiescent();
        assert!(!out.quiescent);
        assert_eq!(out.events, 100);
    }

    #[test]
    fn late_added_node_gets_on_start() {
        struct Starter {
            started: bool,
        }
        impl Node<Msg> for Starter {
            fn on_start(&mut self, _c: &mut Context<'_, Msg>) {
                self.started = true;
            }
            fn on_message(&mut self, _c: &mut Context<'_, Msg>, _f: NodeId, _i: Interface, _m: Msg) {}
        }
        let mut net: Network<Msg> = Network::new(0);
        net.run_until_quiescent();
        let id = net.add_node("late", Starter { started: false });
        assert!(!net.node::<Starter>(id).unwrap().started, "deferred");
        net.run_until_quiescent();
        assert!(net.node::<Starter>(id).unwrap().started);
    }
}
