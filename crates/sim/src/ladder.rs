//! ASCII ladder-diagram rendering of a [`Trace`].
//!
//! This is how the reproduction *prints* the paper's Figures 4–6: each
//! participant is a vertical lane, each message an arrow between lanes,
//! annotated with the message name — the same visual language as the
//! figures themselves.

use std::fmt::Write as _;

use crate::node::NodeId;
use crate::trace::{Trace, TraceEntry};

/// Renders a [`Trace`] (or a participant subset of it) as an ASCII ladder.
///
/// # Examples
///
/// ```rust
/// use vgprs_sim::{LadderDiagram, Trace};
/// let trace = Trace::default();
/// let ladder = LadderDiagram::new(&trace);
/// let _text = ladder.render();
/// ```
#[derive(Debug)]
pub struct LadderDiagram<'a> {
    trace: &'a Trace,
    participants: Option<Vec<NodeId>>,
    show_times: bool,
    lane_width: usize,
}

impl<'a> LadderDiagram<'a> {
    /// A ladder over every node that appears in the trace, in order of
    /// first appearance.
    pub fn new(trace: &'a Trace) -> Self {
        LadderDiagram {
            trace,
            participants: None,
            show_times: true,
            lane_width: 14,
        }
    }

    /// Restricts lanes to the given participants, in the given order.
    /// Messages to or from other nodes are omitted.
    pub fn with_participants(mut self, participants: impl Into<Vec<NodeId>>) -> Self {
        self.participants = Some(participants.into());
        self
    }

    /// Hides the time column.
    pub fn without_times(mut self) -> Self {
        self.show_times = false;
        self
    }

    /// Sets the lane width in characters (minimum 8).
    pub fn with_lane_width(mut self, width: usize) -> Self {
        self.lane_width = width.max(8);
        self
    }

    fn participant_order(&self) -> Vec<NodeId> {
        if let Some(p) = &self.participants {
            return p.clone();
        }
        let mut seen = Vec::new();
        for e in self.trace.entries() {
            let nodes: [Option<NodeId>; 2] = match e {
                TraceEntry::Message { from, to, .. } => [Some(*from), Some(*to)],
                TraceEntry::Note { node, .. } => [Some(*node), None],
            };
            for n in nodes.into_iter().flatten() {
                if !seen.contains(&n) {
                    seen.push(n);
                }
            }
        }
        seen
    }

    /// Produces the ladder as a multi-line string.
    pub fn render(&self) -> String {
        let parts = self.participant_order();
        if parts.is_empty() {
            return String::from("(empty trace)\n");
        }
        let lane = self.lane_width;
        let time_pad = if self.show_times { 12 } else { 0 };
        let mut out = String::new();

        // Header with node names centered over their lanes.
        out.push_str(&" ".repeat(time_pad));
        for p in &parts {
            let name = self.trace.node_name(*p);
            let name = if name.len() > lane { &name[..lane] } else { name };
            let pad = lane.saturating_sub(name.len());
            let left = pad / 2;
            let _ = write!(out, "{}{}{}", " ".repeat(left), name, " ".repeat(pad - left));
        }
        out.push('\n');

        let col = |p: &NodeId| -> Option<usize> {
            parts
                .iter()
                .position(|x| x == p)
                .map(|i| time_pad + i * lane + lane / 2)
        };

        for e in self.trace.entries() {
            match e {
                TraceEntry::Message {
                    at,
                    from,
                    to,
                    iface,
                    label,
                    ..
                } => {
                    let (Some(cf), Some(ct)) = (col(from), col(to)) else {
                        continue;
                    };
                    let mut line = vec![b' '; time_pad + parts.len() * lane];
                    if self.show_times {
                        let ts = format!("{:>9}", at.to_string());
                        line[..ts.len().min(time_pad)]
                            .copy_from_slice(&ts.as_bytes()[..ts.len().min(time_pad)]);
                    }
                    // lane rails
                    for p in &parts {
                        if let Some(c) = col(p) {
                            line[c] = b'|';
                        }
                    }
                    let (lo, hi) = if cf < ct { (cf, ct) } else { (ct, cf) };
                    for cell in line.iter_mut().take(hi).skip(lo + 1) {
                        *cell = b'-';
                    }
                    if cf < ct {
                        line[hi] = b'>';
                        line[lo] = b'|';
                    } else if ct < cf {
                        line[lo] = b'<';
                        line[hi] = b'|';
                    } else {
                        line[cf] = b'o'; // self-message
                    }
                    let mut text = String::from_utf8(line).expect("ascii");
                    let _ = write!(text, "  {label} [{iface}]");
                    out.push_str(&text);
                    out.push('\n');
                }
                TraceEntry::Note { at, node, text } => {
                    let name = self.trace.node_name(*node);
                    if self.show_times {
                        let _ = writeln!(out, "{:>9}  * {name}: {text}", at.to_string());
                    } else {
                        let _ = writeln!(out, "  * {name}: {text}");
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::Interface;
    use crate::time::SimTime;

    fn trace() -> Trace {
        let mut t = Trace::new();
        t.register_node("MS");
        t.register_node("BTS");
        t.register_node("BSC");
        t.record_message(
            SimTime::from_micros(1_000),
            NodeId(0),
            NodeId(1),
            Interface::Um,
            "Um_Setup".into(),
            String::new(),
        );
        t.record_message(
            SimTime::from_micros(2_000),
            NodeId(1),
            NodeId(2),
            Interface::Abis,
            "Abis_Setup".into(),
            String::new(),
        );
        t.record_message(
            SimTime::from_micros(3_000),
            NodeId(2),
            NodeId(0),
            Interface::A,
            "Back".into(),
            String::new(),
        );
        t.record_note(SimTime::from_micros(4_000), NodeId(2), "Step 2.1 done".into());
        t
    }

    #[test]
    fn renders_all_messages() {
        let t = trace();
        let out = LadderDiagram::new(&t).render();
        assert!(out.contains("Um_Setup [Um]"));
        assert!(out.contains("Abis_Setup [Abis]"));
        assert!(out.contains("Back [A]"));
        assert!(out.contains("Step 2.1 done"));
        assert!(out.contains("MS"));
        assert!(out.contains("BTS"));
    }

    #[test]
    fn arrow_direction() {
        let t = trace();
        let out = LadderDiagram::new(&t).without_times().render();
        let lines: Vec<&str> = out.lines().collect();
        // first message goes right (MS -> BTS), second right, third left
        assert!(lines[1].contains("->") || lines[1].contains('>'));
        assert!(lines[3].contains('<'));
    }

    #[test]
    fn participant_filter_drops_foreign_messages() {
        let t = trace();
        let out = LadderDiagram::new(&t)
            .with_participants(vec![NodeId(0), NodeId(1)])
            .render();
        assert!(out.contains("Um_Setup"));
        assert!(!out.contains("Abis_Setup"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let t = Trace::default();
        assert_eq!(LadderDiagram::new(&t).render(), "(empty trace)\n");
    }

    #[test]
    fn lane_width_clamped() {
        let t = trace();
        let out = LadderDiagram::new(&t).with_lane_width(1).render();
        assert!(out.contains("Um_Setup"));
    }
}
