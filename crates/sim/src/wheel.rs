//! Hierarchical timer wheel (calendar queue) — the default event kernel.
//!
//! The busy-hour workload is dominated by short-horizon, quantized work:
//! 20 ms vocoder frames, RTP ticks, GSM supervision timers. A binary heap
//! pays `O(log n)` per operation and sifts whole events through the heap
//! array; a timer wheel serves the same workload in amortized `O(1)` by
//! bucketing events into fixed-width time slots and draining each slot as a
//! batch.
//!
//! ## Layout
//!
//! * **Level 0** — 256 slots of 2^10 µs (1.024 ms) each, covering ≈262 ms of
//!   near horizon. The slot width quantizes the 20 ms frame cadence into
//!   ~20 slots, so a steady media stream occupies a rotating band of slots.
//! * **Level 1** — 256 slots of ≈262 ms each (horizon ≈67 s): call setup and
//!   supervision timers.
//! * **Level 2** — 256 slots of ≈67 s each (horizon ≈4.8 h): call hold times
//!   and long-idle work.
//! * **Overflow** — a small binary heap for anything beyond the level-2
//!   horizon. Population-scale runs put a negligible fraction of events here.
//!
//! Each level keeps a 256-bit occupancy bitmap so the drain path skips empty
//! slots with a couple of `trailing_zeros` calls instead of a linear scan.
//!
//! ## Payloads stay parked
//!
//! Simulation events are large (a `Message` alone is ~100 bytes), and a
//! binary heap sifts whole events through its array on every push and pop.
//! The wheel never does: payloads are written once into a slab (`items`)
//! whose freed indices are recycled through a free list, and everything the
//! wheel routes — through slots, cascades, the sorted batch, the overflow
//! heap — is a 24-byte [`Key`] `(at, seq, slab index)`. A payload is moved
//! exactly twice: into the slab at push, out of it at pop. Combined with
//! slot vectors whose capacity is retained across drains, steady-state
//! scheduling neither allocates nor copies payloads.
//!
//! ## Ordering contract
//!
//! Pops are strictly ordered by `(time, seq)` where `seq` is a per-wheel
//! monotone counter assigned at push — identical to the binary-heap kernel,
//! so simultaneous events drain in FIFO push order. The proof sketch (see
//! `DESIGN.md` §2.13) rests on two invariants:
//!
//! 1. every buffered key whose level-0 slot index is `<= cursor` lives in
//!    the `batch` (sorted descending; the back is the minimum) or in the
//!    `late` min-heap, and
//! 2. every key still in a wheel slot or the overflow heap has a level-0
//!    slot index strictly greater than `cursor` — hence a time strictly
//!    after every key in `batch` or `late`.
//!
//! Together they mean the minimum of `batch.last()` and `late.peek()` is
//! always the global minimum. Late pushes that land at or behind the cursor
//! (possible when a caller peeks ahead and then schedules something
//! earlier) go to the `late` heap in `O(log k)` where `k` is the handful of
//! such keys in flight — never an `O(n)` insertion into the batch.

use std::collections::BinaryHeap;

use crate::time::SimTime;

/// log2 of the level-0 slot width in microseconds (2^10 µs = 1.024 ms).
const SLOT_BITS: u32 = 10;
/// log2 of the number of slots per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Mask extracting a level-local slot index.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Number of wheel levels before the overflow heap takes over.
const LEVELS: usize = 3;
/// Words in a per-level occupancy bitmap.
const WORDS: usize = SLOTS / 64;

/// What the wheel actually routes: the ordering key plus the slab index
/// of the parked payload. 24 bytes, `Copy`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Key {
    at: u64,
    seq: u64,
    idx: u32,
}

impl Key {
    #[inline]
    fn rank(self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

/// Min-heap wrapper: `BinaryHeap<MinKey>` pops the smallest `(at, seq)`.
#[derive(PartialEq, Eq)]
struct MinKey(Key);

impl PartialOrd for MinKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for MinKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.rank().cmp(&self.0.rank())
    }
}

struct Level {
    slots: Vec<Vec<Key>>,
    occupied: [u64; WORDS],
}

impl Level {
    fn new() -> Self {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
        }
    }
}

fn set_bit(bits: &mut [u64; WORDS], idx: usize) {
    bits[idx / 64] |= 1u64 << (idx % 64);
}

fn clear_bit(bits: &mut [u64; WORDS], idx: usize) {
    bits[idx / 64] &= !(1u64 << (idx % 64));
}

/// First set bit at index `>= from`, if any.
fn find_set(bits: &[u64; WORDS], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let word = from / 64;
    let masked = bits[word] & (!0u64 << (from % 64));
    if masked != 0 {
        return Some(word * 64 + masked.trailing_zeros() as usize);
    }
    for (w, &bitsw) in bits.iter().enumerate().skip(word + 1) {
        if bitsw != 0 {
            return Some(w * 64 + bitsw.trailing_zeros() as usize);
        }
    }
    None
}

/// A hierarchical timer wheel with deterministic `(time, seq)` ordering.
///
/// Drop-in priority-queue replacement for a `BinaryHeap` keyed on
/// `(SimTime, push order)`: [`push`](CalendarWheel::push) buffers an item
/// for a given instant, [`pop`](CalendarWheel::pop) returns items in
/// non-decreasing time order with FIFO tie-breaking for equal times. See the
/// [module docs](self) for the layout and the ordering argument.
pub struct CalendarWheel<T> {
    levels: [Level; LEVELS],
    overflow: BinaryHeap<MinKey>,
    /// Keys at or behind the cursor, sorted **descending** by `(at, seq)`:
    /// the back is the minimum, so a pop is `O(1)` with no shifting.
    batch: Vec<Key>,
    /// Keys pushed at or behind the cursor after the batch was formed.
    /// Usually empty or a handful deep; pops take the smaller of
    /// `batch.last()` and `late.peek()`.
    late: BinaryHeap<MinKey>,
    /// Parked payloads; `Key::idx` points here.
    items: Vec<Option<T>>,
    /// Recycled `items` indices.
    free: Vec<u32>,
    /// Absolute level-0 slot index the wheel has drained up to.
    cursor: u64,
    next_seq: u64,
    len: usize,
}

impl<T> Default for CalendarWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarWheel<T> {
    /// Creates an empty wheel with its cursor at time zero.
    pub fn new() -> Self {
        CalendarWheel {
            levels: [Level::new(), Level::new(), Level::new()],
            overflow: BinaryHeap::new(),
            batch: Vec::new(),
            late: BinaryHeap::new(),
            items: Vec::new(),
            free: Vec::new(),
            cursor: 0,
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Buffers `item` to pop at `at`. Items pushed for the same instant pop
    /// in push order.
    pub fn push(&mut self, at: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.items[idx as usize] = Some(item);
                idx
            }
            None => {
                self.items.push(Some(item));
                (self.items.len() - 1) as u32
            }
        };
        self.place(Key {
            at: at.as_micros(),
            seq,
            idx,
        });
    }

    /// Removes and returns the earliest item, with the instant it was
    /// scheduled for.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if !self.ensure_ready_until(None) {
            return None;
        }
        Some(self.take_min())
    }

    /// Like [`pop`](CalendarWheel::pop), but leaves the queue untouched and
    /// returns `None` if the earliest item is scheduled after `deadline`.
    ///
    /// The internal cursor advances **no further than the deadline's
    /// slot**. This matters for throughput, not correctness: a run loop
    /// that drains to a deadline and then schedules near-future work keeps
    /// that work on the O(1) wheel path instead of overshooting the cursor
    /// to the next far-future event and forcing every subsequent push
    /// through the late heap.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        if !self.ensure_ready_until(Some(deadline.as_micros() >> SLOT_BITS)) {
            return None;
        }
        if self.min_key().at > deadline.as_micros() {
            return None;
        }
        Some(self.take_min())
    }

    /// The instant of the earliest buffered item. Advances the internal
    /// cursor (hence `&mut`), but removes nothing.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if !self.ensure_ready_until(None) {
            return None;
        }
        Some(SimTime::from_micros(self.min_key().at))
    }

    /// The instant of the earliest buffered item, if it is due at or
    /// before `deadline`; like [`peek_time`](CalendarWheel::peek_time) but
    /// with the cursor bounded by the deadline's slot (see
    /// [`pop_at_or_before`](CalendarWheel::pop_at_or_before)).
    pub fn next_at_or_before(&mut self, deadline: SimTime) -> Option<SimTime> {
        if !self.ensure_ready_until(Some(deadline.as_micros() >> SLOT_BITS)) {
            return None;
        }
        let at = self.min_key().at;
        (at <= deadline.as_micros()).then(|| SimTime::from_micros(at))
    }

    /// The smallest ready key. Callers must have seen
    /// [`ensure_ready_until`](Self::ensure_ready_until) return true.
    #[inline]
    fn min_key(&self) -> Key {
        match (self.batch.last(), self.late.peek()) {
            (Some(&b), Some(l)) => {
                if l.0.rank() < b.rank() {
                    l.0
                } else {
                    b
                }
            }
            (Some(&b), None) => b,
            (None, Some(l)) => l.0,
            (None, None) => unreachable!("ensure_ready guarantees a ready key"),
        }
    }

    /// Removes the smallest ready key and unparks its payload.
    #[inline]
    fn take_min(&mut self) -> (SimTime, T) {
        let key = match (self.batch.last(), self.late.peek()) {
            (Some(&b), Some(l)) if l.0.rank() < b.rank() => self.late.pop().expect("peeked").0,
            (Some(_), _) => self.batch.pop().expect("checked"),
            (None, Some(_)) => self.late.pop().expect("peeked").0,
            (None, None) => unreachable!("ensure_ready guarantees a ready key"),
        };
        let item = self.items[key.idx as usize]
            .take()
            .expect("key points at a parked payload");
        self.free.push(key.idx);
        self.len -= 1;
        (SimTime::from_micros(key.at), item)
    }

    /// Routes a key to the late heap, a wheel slot, or the overflow heap,
    /// according to where its slot lies relative to the cursor.
    fn place(&mut self, key: Key) {
        let s0 = key.at >> SLOT_BITS;
        if s0 <= self.cursor {
            // At or behind the cursor: ready now, ahead of every slot.
            self.late.push(MinKey(key));
            return;
        }
        for (l, level) in self.levels.iter_mut().enumerate() {
            let parent_shift = LEVEL_BITS * (l as u32 + 1);
            if (s0 >> parent_shift) == (self.cursor >> parent_shift) {
                let idx = ((s0 >> (LEVEL_BITS * l as u32)) & SLOT_MASK) as usize;
                set_bit(&mut level.occupied, idx);
                level.slots[idx].push(key);
                return;
            }
        }
        self.overflow.push(MinKey(key));
    }

    /// Advances the cursor until some key is ready (returns true) or it is
    /// proven that no buffered key lives at a level-0 slot `<= limit`
    /// (returns false). With `limit: None` the scan is unbounded and
    /// `false` means the wheel is empty.
    ///
    /// In the bounded-stop case the cursor parks exactly at `limit`: every
    /// slot up to `limit` has been drained or shown unoccupied, so both
    /// ordering invariants keep holding, and later pushes beyond the
    /// deadline take the normal wheel path instead of the late heap.
    fn ensure_ready_until(&mut self, limit: Option<u64>) -> bool {
        loop {
            if !self.batch.is_empty() || !self.late.is_empty() {
                return true;
            }
            if limit.is_some_and(|lim| lim < self.cursor) {
                // Everything at or before the limit was already drained.
                return false;
            }
            // Level 0: drain the next occupied slot in the current window.
            let from = (self.cursor & SLOT_MASK) as usize;
            if let Some(idx) = find_set(&self.levels[0].occupied, from) {
                let candidate = (self.cursor & !SLOT_MASK) | idx as u64;
                if let Some(lim) = limit {
                    if candidate > lim {
                        // Nothing occupied in (cursor, lim]; lim is in this
                        // same level-0 window, so no upper level covers it.
                        self.cursor = lim;
                        return false;
                    }
                }
                self.cursor = candidate;
                clear_bit(&mut self.levels[0].occupied, idx);
                // The batch is empty, so swap the slot's keys straight in:
                // the batch's old capacity parks in the slot for its next
                // fill — the slots double as the batch's free list.
                std::mem::swap(&mut self.batch, &mut self.levels[0].slots[idx]);
                self.batch
                    .sort_unstable_by_key(|k| std::cmp::Reverse(k.rank()));
                continue;
            }
            if let Some(lim) = limit {
                if (lim >> LEVEL_BITS) == (self.cursor >> LEVEL_BITS) {
                    // Level 0 is empty through the end of this window and
                    // the limit lies inside it: park and stop.
                    self.cursor = lim;
                    return false;
                }
            }
            // Levels 1..: cascade the next occupied slot down one level.
            let mut cascaded = false;
            for l in 1..LEVELS {
                let shift = LEVEL_BITS * l as u32;
                let cl = ((self.cursor >> shift) & SLOT_MASK) as usize;
                debug_assert!(
                    self.levels[l].occupied[cl / 64] & (1 << (cl % 64)) == 0,
                    "cursor's own upper-level slot must already be drained"
                );
                if let Some(idx) = find_set(&self.levels[l].occupied, cl + 1) {
                    let high = (self.cursor >> (shift + LEVEL_BITS)) << (shift + LEVEL_BITS);
                    let candidate = high | ((idx as u64) << shift);
                    if let Some(lim) = limit {
                        if candidate > lim {
                            // The next occupied region starts after the
                            // limit; every level below is already empty.
                            self.cursor = lim;
                            return false;
                        }
                    }
                    self.cursor = candidate;
                    clear_bit(&mut self.levels[l].occupied, idx);
                    let mut slot = std::mem::take(&mut self.levels[l].slots[idx]);
                    for key in slot.drain(..) {
                        self.place(key);
                    }
                    self.levels[l].slots[idx] = slot;
                    cascaded = true;
                    break;
                }
                if let Some(lim) = limit {
                    let parent = shift + LEVEL_BITS;
                    if (lim >> parent) == (self.cursor >> parent) {
                        // This level is empty through the end of its window
                        // and the limit lies inside it.
                        self.cursor = lim;
                        return false;
                    }
                }
            }
            if cascaded {
                continue;
            }
            // All levels empty: jump to the overflow's earliest block and
            // pull every overflow key of that block into the wheel.
            if let Some(head) = self.overflow.peek() {
                let top_shift = LEVEL_BITS * LEVELS as u32;
                let s0 = head.0.at >> SLOT_BITS;
                debug_assert!(s0 >= self.cursor, "overflow behind the cursor");
                if let Some(lim) = limit {
                    if s0 > lim {
                        // Park for the deadline, but never inside the
                        // head's block: once the cursor shares a block
                        // with an overflow key, later pushes land in the
                        // levels and a cascade could overtake the head
                        // without pulling it. The levels are provably
                        // empty here, so stopping short of `lim` at the
                        // block boundary is safe.
                        let block_start = (s0 >> top_shift) << top_shift;
                        self.cursor = lim.min(block_start.saturating_sub(1));
                        return false;
                    }
                }
                self.cursor = s0;
                let top_shift = LEVEL_BITS * LEVELS as u32;
                let block = s0 >> top_shift;
                while let Some(head) = self.overflow.peek() {
                    if (head.0.at >> SLOT_BITS) >> top_shift != block {
                        break;
                    }
                    let MinKey(key) = self.overflow.pop().expect("peeked");
                    self.place(key);
                }
                continue;
            }
            // Completely empty. Park at the limit, if any, so near-future
            // pushes land ahead of the cursor.
            if let Some(lim) = limit {
                self.cursor = lim;
            }
            return false;
        }
    }
}

impl<T> std::fmt::Debug for CalendarWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarWheel")
            .field("len", &self.len)
            .field("cursor", &self.cursor)
            .field("batch", &self.batch.len())
            .field("late", &self.late.len())
            .field("overflow", &self.overflow.len())
            .field("slab", &self.items.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::time::SimDuration;

    fn ms(n: u64) -> SimTime {
        SimTime::from_micros(n * 1_000)
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = CalendarWheel::new();
        w.push(SimTime::from_micros(30), 'c');
        w.push(SimTime::from_micros(10), 'a');
        w.push(SimTime::from_micros(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| w.pop()).map(|(_, c)| c).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert!(w.is_empty());
    }

    #[test]
    fn simultaneous_events_fifo() {
        let mut w = CalendarWheel::new();
        for tag in 0..50u64 {
            w.push(ms(100), tag);
        }
        let tags: Vec<u64> = std::iter::from_fn(|| w.pop()).map(|(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn slot_cascade_preserves_order() {
        // One entry per level plus interleaved near entries: a level-1
        // entry (~300 ms) and a level-2 entry (~70 s) must cascade down
        // and interleave correctly with level-0 entries.
        let mut w = CalendarWheel::new();
        w.push(ms(70_000), "l2");
        w.push(ms(300), "l1");
        w.push(ms(1), "l0");
        w.push(ms(250), "l0-late");
        w.push(ms(69_999), "l1-after-cascade");
        let order: Vec<&str> = std::iter::from_fn(|| w.pop()).map(|(_, s)| s).collect();
        assert_eq!(order, vec!["l0", "l0-late", "l1", "l1-after-cascade", "l2"]);
    }

    #[test]
    fn far_future_overflow() {
        // Beyond the level-2 horizon (~4.8 h) entries go to the overflow
        // heap and still pop in order.
        let mut w = CalendarWheel::new();
        let five_hours = SimTime::ZERO + SimDuration::from_secs(5 * 3600);
        let six_hours = SimTime::ZERO + SimDuration::from_secs(6 * 3600);
        w.push(six_hours, "later");
        w.push(five_hours, "far");
        w.push(ms(5), "near");
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop().map(|(_, s)| s), Some("near"));
        assert_eq!(w.pop(), Some((five_hours, "far")));
        assert_eq!(w.pop(), Some((six_hours, "later")));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn push_behind_cursor_after_peek() {
        // Peeking at a far entry advances the cursor; a later push for an
        // earlier instant must still pop first.
        let mut w = CalendarWheel::new();
        w.push(ms(500), "far");
        assert_eq!(w.peek_time(), Some(ms(500)));
        w.push(ms(20), "early");
        w.push(ms(20), "early-2");
        assert_eq!(w.pop().map(|(_, s)| s), Some("early"));
        assert_eq!(w.pop().map(|(_, s)| s), Some("early-2"));
        assert_eq!(w.pop().map(|(_, s)| s), Some("far"));
    }

    #[test]
    fn pop_at_or_before_respects_deadline() {
        let mut w = CalendarWheel::new();
        w.push(ms(10), 1u32);
        w.push(ms(30), 2u32);
        assert_eq!(
            w.pop_at_or_before(ms(20)),
            Some((ms(10), 1))
        );
        assert_eq!(w.pop_at_or_before(ms(20)), None);
        assert_eq!(w.len(), 1);
        assert_eq!(
            w.pop_at_or_before(ms(30)),
            Some((ms(30), 2))
        );
    }

    #[test]
    fn slab_recycles_freed_indices() {
        // Steady-state churn must not grow the payload slab: every pop
        // frees its slot for the next push.
        let mut w = CalendarWheel::new();
        for round in 0..10_000u64 {
            w.push(SimTime::from_micros(round * 100), [round; 4]);
            let (_, item) = w.pop().expect("just pushed");
            assert_eq!(item, [round; 4]);
        }
        assert!(w.is_empty());
        assert_eq!(w.items.len(), 1, "churn must reuse the single slab slot");
    }

    #[test]
    fn randomized_against_sorted_oracle() {
        // Heap-free oracle: collect (at, seq) keys, sort, and require the
        // wheel to pop in exactly that order — across several seeds, with
        // horizons spanning all levels and the overflow, and with pushes
        // interleaved mid-drain (always at or after the last popped time,
        // matching the simulation's monotone-clock contract).
        for seed in 0..8u64 {
            let mut rng = SimRng::new(seed);
            let mut w = CalendarWheel::new();
            let mut expected: Vec<(u64, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut push = |w: &mut CalendarWheel<u64>, expected: &mut Vec<(u64, u64)>, at: u64| {
                w.push(SimTime::from_micros(at), seq);
                expected.push((at, seq));
                seq += 1;
            };
            for _ in 0..500 {
                // Mix of horizons: sub-slot, level 0, level 1, level 2, overflow.
                let at = match rng.range(0, 5) {
                    0 => rng.range(0, 1_000),
                    1 => rng.range(0, 260_000),
                    2 => rng.range(0, 60_000_000),
                    3 => rng.range(0, 4 * 3_600_000_000),
                    _ => rng.range(0, 20 * 3_600_000_000),
                };
                push(&mut w, &mut expected, at);
            }
            // Drain half, interleaving monotone pushes.
            let mut popped: Vec<(u64, u64)> = Vec::new();
            for _ in 0..250 {
                let (at, item) = w.pop().expect("wheel has entries");
                popped.push((at.as_micros(), item));
                if rng.range(0, 3) == 0 {
                    let delta = rng.range(0, 3_600_000_000);
                    push(&mut w, &mut expected, at.as_micros() + delta);
                }
            }
            while let Some((at, item)) = w.pop() {
                popped.push((at.as_micros(), item));
            }
            // The oracle: all keys in (at, seq) order. Interleaved pushes
            // were >= the pop time at which they were made, so the already
            // popped prefix is unaffected.
            expected.sort_unstable();
            assert_eq!(popped, expected, "seed {seed}");
            assert!(w.is_empty());
        }
    }

    #[test]
    fn bounded_pops_against_sorted_oracle() {
        // Epoch-stepped drains with far-horizon pushes. This is the
        // regression net for cursor parking around overflow blocks: the
        // deadlines sweep the clock across several 2^34 µs top-level
        // blocks while keys sit in the overflow heap, and the cursor
        // must never park past an overflow key it has not pulled.
        for seed in 0..6u64 {
            let mut rng = SimRng::new(seed);
            let mut w = CalendarWheel::new();
            let mut oracle: Vec<(u64, u64)> = Vec::new();
            let mut popped: Vec<(u64, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let push = |w: &mut CalendarWheel<u64>,
                        oracle: &mut Vec<(u64, u64)>,
                        seq: &mut u64,
                        at: u64| {
                w.push(SimTime::from_micros(at), *seq);
                oracle.push((at, *seq));
                *seq += 1;
            };
            for epoch in 1..3_000u64 {
                // 20 s epochs: ~16 simulated hours, several block
                // boundaries.
                let deadline = epoch * 20_000_000;
                for _ in 0..rng.range(0, 4) {
                    let dt = match rng.range(0, 12) {
                        0..=5 => rng.range(0, 2_000),
                        6..=7 => rng.range(0, 60_000),
                        8 => rng.range(0, 10_000_000),
                        9 => rng.range(0, 4_000_000_000),
                        10 => rng.range(60_000_000, 40_000_000_000),
                        _ => 0,
                    };
                    push(&mut w, &mut oracle, &mut seq, now + dt);
                }
                while let Some((at, item)) =
                    w.pop_at_or_before(SimTime::from_micros(deadline))
                {
                    now = at.as_micros();
                    popped.push((now, item));
                    if rng.range(0, 4) == 0 {
                        let dt = rng.range(0, 30_000_000_000);
                        push(&mut w, &mut oracle, &mut seq, now + dt);
                    }
                }
                now = deadline;
            }
            while let Some((at, item)) = w.pop() {
                popped.push((at.as_micros(), item));
            }
            oracle.sort_unstable();
            assert_eq!(popped, oracle, "seed {seed}");
            assert!(w.is_empty());
        }
    }

    #[test]
    fn len_tracks_push_pop() {
        let mut w = CalendarWheel::new();
        assert!(w.is_empty());
        for i in 0..10 {
            w.push(ms(i * 7), i);
        }
        assert_eq!(w.len(), 10);
        w.pop();
        w.pop();
        assert_eq!(w.len(), 8);
    }
}
