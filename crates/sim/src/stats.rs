//! Named counters and histograms collected during a run.
//!
//! [`Histogram`] is a *streaming* fixed-bucket histogram: memory stays
//! O(buckets) no matter how many observations arrive, so population-scale
//! load runs (millions of calls) can record every sample. Buckets are
//! log-spaced (16 sub-buckets per power of two), giving ~3% relative
//! resolution on percentile queries; `count`, `sum`, `mean`, `min` and
//! `max` are exact. Two histograms bucket identically, so shard-local
//! histograms merge into a global one without losing resolution.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A monotonically increasing named counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Smallest resolvable magnitude: values in `(0, 2^MIN_EXP)` share the
/// underflow bucket.
const MIN_EXP: i32 = -10;
/// Largest resolvable octave: values `>= 2^(MAX_EXP + 1)` share the
/// overflow bucket.
const MAX_EXP: i32 = 20;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Bucket 0 holds zero/negative/underflow; the last bucket holds overflow.
const NUM_BUCKETS: usize = OCTAVES * SUB + 2;

/// A streaming histogram with a fixed number of log-spaced buckets.
///
/// `observe` is O(1) and allocation-free after construction; `count`,
/// `sum`, `mean`, `min` and `max` are exact, while `percentile` is
/// approximate to the bucket resolution (~3%) but always clamped into
/// the observed `[min, max]` range — so a histogram holding a single
/// repeated value reports that exact value at every percentile.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

fn bucket_index(value: f64) -> usize {
    // NaN, zero, negatives and positive underflow all land in bucket 0.
    if value.is_nan() || value < (2.0f64).powi(MIN_EXP) {
        return 0;
    }
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
    if exp > MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUB + sub
}

/// Midpoint of a regular bucket's value range.
fn bucket_midpoint(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index == NUM_BUCKETS - 1 {
        return (2.0f64).powi(MAX_EXP + 1);
    }
    let i = index - 1;
    let exp = MIN_EXP + (i / SUB) as i32;
    let sub = (i % SUB) as f64;
    (2.0f64).powi(exp) * (1.0 + (sub + 0.5) / SUB as f64)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    ///
    /// NaN lands in the underflow bucket and counts toward `count`, but
    /// never becomes the running min/max — otherwise one bad sample
    /// would leave the extremes stuck at the ±infinity sentinels while
    /// `count > 0`, and every merge downstream would inherit them.
    pub fn observe(&mut self, value: f64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if !value.is_nan() {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
    }

    /// True when the min/max fields hold real observations. An empty
    /// histogram (or one that has only seen NaN) keeps the sentinels
    /// `min = +inf, max = -inf`, which this ordering check rejects.
    fn has_extremes(&self) -> bool {
        self.min <= self.max
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.has_extremes().then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.has_extremes().then_some(self.max)
    }

    /// The `p`-th percentile (0–100) by nearest rank over the buckets.
    ///
    /// Accurate to the bucket resolution (~3% relative), exact at the
    /// extremes (`p == 0` → min, `p == 100` → max), and always within
    /// the observed `[min, max]`. Returns the 0.0 sentinel when the
    /// histogram is empty (tested; use [`Histogram::count`] to
    /// distinguish an empty histogram from one that observed zeros).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0.0;
        }
        if !self.has_extremes() {
            // Non-empty but no finite extremes (all observations NaN):
            // fall back to the raw bucket midpoints, which place every
            // NaN in the zero bucket.
            let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (i, &n) in self.buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_midpoint(i);
                }
            }
            return 0.0;
        }
        if p == 0.0 {
            return self.min;
        }
        if p == 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Bucketing is identical for
    /// all histograms, so merging loses no resolution; shard-local
    /// histograms combine into a global view this way.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        // Fold extremes only when `other` actually has some: merging an
        // empty (or all-NaN) histogram must not drag the sentinels in.
        if other.has_extremes() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Occupied buckets as `(range_midpoint, count)` pairs, in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_midpoint(i), n))
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// FNV-1a for stat-name interning. Deterministic (zero-seeded via
/// `BuildHasherDefault`, unlike `RandomState`) and far cheaper than
/// SipHash on the short `&'static str` names the hot paths pass —
/// counter bumps happen on every voice frame at population scale.
#[derive(Default)]
struct NameHasher(u64);

impl Hasher for NameHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Name-interned storage shared by counters and histograms: the hash
/// index resolves a name to a slot in `entries` once, and the value
/// lives in a flat vector from then on. Iteration is always name-sorted
/// (see [`Registry::sorted`]), so nothing downstream — fingerprints,
/// rendering, merges — can observe hash-map order.
#[derive(Clone, Debug, Default)]
struct Registry<V> {
    index: HashMap<Box<str>, u32, BuildHasherDefault<NameHasher>>,
    entries: Vec<(Box<str>, V)>,
}

impl<V: Default> Registry<V> {
    fn slot(&mut self, name: &str) -> &mut V {
        if let Some(&i) = self.index.get(name) {
            return &mut self.entries[i as usize].1;
        }
        let i = self.entries.len() as u32;
        self.index.insert(name.into(), i);
        self.entries.push((name.into(), V::default()));
        &mut self.entries[i as usize].1
    }

    fn get(&self, name: &str) -> Option<&V> {
        self.index.get(name).map(|&i| &self.entries[i as usize].1)
    }

    /// Entries in name order. Sorting ~dozens of keys on each (rare)
    /// read is what buys the allocation- and compare-free hot path.
    fn sorted(&self) -> Vec<&(Box<str>, V)> {
        let mut refs: Vec<_> = self.entries.iter().collect();
        refs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        refs
    }
}

/// The statistics sink shared by every node in a [`Network`](crate::Network).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: Registry<u64>,
    histograms: Registry<Histogram>,
}

impl Stats {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments `name` by one.
    pub fn count(&mut self, name: &str) {
        self.count_by(name, 1);
    }

    /// Increments `name` by `value`.
    pub fn count_by(&mut self, name: &str, value: u64) {
        *self.counters.slot(name) += value;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation under `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.slot(name).observe(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters
            .sorted()
            .into_iter()
            .map(|(k, v)| (k.as_ref(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms
            .sorted()
            .into_iter()
            .map(|(k, v)| (k.as_ref(), v))
    }

    /// Folds another sink into this one (counters add; histograms merge).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters.entries {
            *self.counters.slot(k) += v;
        }
        for (k, h) in &other.histograms.entries {
            self.histograms.slot(k).merge(h);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (k, v) in self.counters() {
            writeln!(f, "  {k}: {v}")?;
        }
        writeln!(f, "histograms:")?;
        for (k, h) in self.histograms() {
            writeln!(
                f,
                "  {k}: n={} mean={:.3} p50={:.3} p95={:.3} max={:.3}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.max().unwrap_or(0.0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.count("a");
        s.count("a");
        s.count_by("a", 3);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.percentile(0.0), 1.0);
        // Percentiles are bucket-resolution approximations (~3%).
        let p50 = h.percentile(50.0);
        assert!((p50 - 3.0).abs() / 3.0 < 0.05, "p50 = {p50}");
        assert_eq!(h.percentile(100.0), 5.0);
    }

    #[test]
    fn memory_is_bounded_by_buckets() {
        // A million observations cost no more memory than ten: the
        // histogram is a fixed array, never a Vec of samples.
        let mut h = Histogram::new();
        for i in 0..1_000_000u64 {
            h.observe((i % 977) as f64 + 0.5);
        }
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(std::mem::size_of_val(&*h.buckets), NUM_BUCKETS * 8);
        let p99 = h.percentile(99.0);
        assert!((900.0..=977.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_is_none_and_sentinel() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        // Documented sentinel: empty percentile is 0.0.
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.percentile(0.0), 0.0);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.observe(7.3);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 7.3, "p{p}");
        }
        assert_eq!(h.min(), Some(7.3));
        assert_eq!(h.max(), Some(7.3));
    }

    #[test]
    fn tied_values_percentiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(42.0);
        }
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 42.0, "p{p}");
        }
    }

    #[test]
    fn negative_and_zero_observations_are_exact_at_extremes() {
        let mut h = Histogram::new();
        h.observe(-5.0);
        h.observe(0.0);
        h.observe(10.0);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(10.0));
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), -5.0);
        assert_eq!(h.percentile(100.0), 10.0);
    }

    #[test]
    fn percentile_resolution_within_buckets() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.observe(i as f64 / 10.0); // 0.1 .. 1000.0
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = p * 10.0; // true percentile of the uniform ramp
            let approx = h.percentile(p);
            assert!(
                (approx - exact).abs() / exact < 0.05,
                "p{p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn extreme_magnitudes_land_in_clamp_buckets() {
        let mut h = Histogram::new();
        h.observe(1e-9); // underflow bucket
        h.observe(1e12); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.0), 1e-9);
        assert_eq!(h.percentile(100.0), 1e12);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000 {
            let v = (i as f64).mul_add(0.37, 1.0);
            whole.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [5.0, 50.0, 95.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_into_empty_preserves_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.observe(3.0);
        a.merge(&b);
        assert_eq!(a.min(), Some(3.0));
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn merge_of_empty_does_not_poison_extremes() {
        // Folding an empty shard histogram into a populated one must
        // leave min/max untouched — not drag in the ±inf sentinels.
        let mut a = Histogram::new();
        a.observe(2.0);
        a.observe(9.0);
        a.merge(&Histogram::new());
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
        assert_eq!(a.count(), 2);
        assert_eq!(a.percentile(0.0), 2.0);
        assert_eq!(a.percentile(100.0), 9.0);

        // And the symmetric case: merging shards where some are empty
        // (e.g. a KPI no call on that shard ever hit) stays finite.
        let mut merged = Histogram::new();
        for shard in [Histogram::new(), a.clone(), Histogram::new()] {
            merged.merge(&shard);
        }
        assert_eq!(merged.min(), Some(2.0));
        assert_eq!(merged.max(), Some(9.0));
    }

    #[test]
    fn nan_observation_does_not_poison_extremes() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        // count > 0 but there is no real extreme to report.
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.percentile(0.0).is_finite());
        assert!(h.percentile(100.0).is_finite());

        h.observe(5.0);
        assert_eq!(h.min(), Some(5.0));
        assert_eq!(h.max(), Some(5.0));

        // Merging an all-NaN histogram into a real one is also inert.
        let mut nan_only = Histogram::new();
        nan_only.observe(f64::NAN);
        let mut real = Histogram::new();
        real.observe(1.0);
        real.merge(&nan_only);
        assert_eq!(real.min(), Some(1.0));
        assert_eq!(real.max(), Some(1.0));
    }

    #[test]
    fn stats_merge_adds_counters_and_histograms() {
        let mut a = Stats::new();
        let mut b = Stats::new();
        a.count("x");
        b.count_by("x", 4);
        b.count("only_b");
        a.observe("h", 1.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("only_b"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
    }

    #[test]
    fn display_renders_all() {
        let mut s = Stats::new();
        s.count("calls");
        s.observe("setup_ms", 12.0);
        let out = s.to_string();
        assert!(out.contains("calls: 1"));
        assert!(out.contains("setup_ms"));
    }

    #[test]
    fn counter_iteration_order_is_name_sorted() {
        // The interned store is insertion-ordered internally; the public
        // iteration (which feeds fingerprints) must stay name-sorted.
        let mut s = Stats::new();
        s.count("zeta");
        s.count("alpha");
        s.count("mid");
        s.count("zeta");
        let names: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(s.counter("zeta"), 2);
    }

    #[test]
    fn histogram_iteration_order_is_name_sorted() {
        let mut s = Stats::new();
        s.observe("z", 1.0);
        s.observe("a", 1.0);
        let names: Vec<&str> = s.histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
