//! Named counters and histograms collected during a run.

use std::collections::BTreeMap;
use std::fmt;

/// A monotonically increasing named counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

/// A streaming histogram: retains every observation (runs are bounded), and
/// answers mean / percentile / min / max queries.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    values: Vec<f64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Smallest observation; 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .pipe_finite()
    }

    /// Largest observation; 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            .pipe_finite()
    }

    /// The `p`-th percentile (0–100) by nearest-rank; 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.values.is_empty() {
            return 0.0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN observation"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    /// All raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// The statistics sink shared by every node in a [`Network`](crate::Network).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Stats {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments `name` by one.
    pub fn count(&mut self, name: &str) {
        self.count_by(name, 1);
    }

    /// Increments `name` by `value`.
    pub fn count_by(&mut self, name: &str, value: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += value;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation under `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (k, v) in &self.counters {
            writeln!(f, "  {k}: {v}")?;
        }
        writeln!(f, "histograms:")?;
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "  {k}: n={} mean={:.3} p50={:.3} p95={:.3} max={:.3}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.max()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.count("a");
        s.count("a");
        s.count_by("a", 3);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(50.0), 3.0);
        assert_eq!(h.percentile(100.0), 5.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(99.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn display_renders_all() {
        let mut s = Stats::new();
        s.count("calls");
        s.observe("setup_ms", 12.0);
        let out = s.to_string();
        assert!(out.contains("calls: 1"));
        assert!(out.contains("setup_ms"));
    }

    #[test]
    fn histogram_iteration_order_is_name_sorted() {
        let mut s = Stats::new();
        s.observe("z", 1.0);
        s.observe("a", 1.0);
        let names: Vec<&str> = s.histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
