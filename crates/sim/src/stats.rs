//! Named counters and histograms collected during a run.
//!
//! [`Histogram`] is a *streaming* fixed-bucket histogram: memory stays
//! O(buckets) no matter how many observations arrive, so population-scale
//! load runs (millions of calls) can record every sample. Buckets are
//! log-spaced (16 sub-buckets per power of two), giving ~3% relative
//! resolution on percentile queries; `count`, `sum`, `mean`, `min` and
//! `max` are exact. Two histograms bucket identically, so shard-local
//! histograms merge into a global one without losing resolution.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// A monotonically increasing named counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

/// Sub-bucket resolution: 2^4 = 16 linear sub-buckets per octave.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Smallest resolvable magnitude: values in `(0, 2^MIN_EXP)` share the
/// underflow bucket.
const MIN_EXP: i32 = -10;
/// Largest resolvable octave: values `>= 2^(MAX_EXP + 1)` share the
/// overflow bucket.
const MAX_EXP: i32 = 20;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Bucket 0 holds zero/negative/underflow; the last bucket holds overflow.
const NUM_BUCKETS: usize = OCTAVES * SUB + 2;

/// A streaming histogram with a fixed number of log-spaced buckets.
///
/// `observe` is O(1) and allocation-free after construction; `count`,
/// `sum`, `mean`, `min` and `max` are exact, while `percentile` is
/// approximate to the bucket resolution (~3%) but always clamped into
/// the observed `[min, max]` range — so a histogram holding a single
/// repeated value reports that exact value at every percentile.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

fn bucket_index(value: f64) -> usize {
    // NaN, zero, negatives and positive underflow all land in bucket 0.
    if value.is_nan() || value < (2.0f64).powi(MIN_EXP) {
        return 0;
    }
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7FF) as i32 - 1023;
    if exp > MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUB + sub
}

/// Midpoint of a regular bucket's value range.
fn bucket_midpoint(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    if index == NUM_BUCKETS - 1 {
        return (2.0f64).powi(MAX_EXP + 1);
    }
    let i = index - 1;
    let exp = MIN_EXP + (i / SUB) as i32;
    let sub = (i % SUB) as f64;
    (2.0f64).powi(exp) * (1.0 + (sub + 0.5) / SUB as f64)
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    ///
    /// NaN lands in the underflow bucket and counts toward `count`, but
    /// never becomes the running min/max — otherwise one bad sample
    /// would leave the extremes stuck at the ±infinity sentinels while
    /// `count > 0`, and every merge downstream would inherit them.
    pub fn observe(&mut self, value: f64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if !value.is_nan() {
            if value < self.min {
                self.min = value;
            }
            if value > self.max {
                self.max = value;
            }
        }
    }

    /// True when the min/max fields hold real observations. An empty
    /// histogram (or one that has only seen NaN) keeps the sentinels
    /// `min = +inf, max = -inf`, which this ordering check rejects.
    fn has_extremes(&self) -> bool {
        self.min <= self.max
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.has_extremes().then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.has_extremes().then_some(self.max)
    }

    /// The `p`-th percentile (0–100) by nearest rank over the buckets.
    ///
    /// Accurate to the bucket resolution (~3% relative), exact at the
    /// extremes (`p == 0` → min, `p == 100` → max), and always within
    /// the observed `[min, max]`. Returns the 0.0 sentinel when the
    /// histogram is empty (tested; use [`Histogram::count`] to
    /// distinguish an empty histogram from one that observed zeros).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0.0;
        }
        if !self.has_extremes() {
            // Non-empty but no finite extremes (all observations NaN):
            // fall back to the raw bucket midpoints, which place every
            // NaN in the zero bucket.
            let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
            let mut seen = 0;
            for (i, &n) in self.buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return bucket_midpoint(i);
                }
            }
            return 0.0;
        }
        if p == 0.0 {
            return self.min;
        }
        if p == 100.0 {
            return self.max;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one. Bucketing is identical for
    /// all histograms, so merging loses no resolution; shard-local
    /// histograms combine into a global view this way.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        // Fold extremes only when `other` actually has some: merging an
        // empty (or all-NaN) histogram must not drag the sentinels in.
        if other.has_extremes() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Occupied buckets as `(range_midpoint, count)` pairs, in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_midpoint(i), n))
    }

    /// The observations recorded since `prev` was sampled, as a new
    /// histogram: the **windowed** view of a cumulative series. `prev`
    /// must be an earlier sample of the same stream (every bucket of
    /// `prev` is ≤ the corresponding bucket here); counts and sums
    /// subtract exactly.
    ///
    /// A window cannot recover which exact values arrived inside it, so
    /// the result carries **no min/max extremes** — `min()`/`max()`
    /// return `None` and percentiles fall back to bucket midpoints
    /// (~3% resolution). Critically, an *empty* window (no new samples)
    /// keeps the `+inf/-inf` sentinels, so merging it into an
    /// accumulator never poisons the accumulator's extremes — the same
    /// guard the PR 2 empty-shard merge fix established.
    pub fn delta_from(&self, prev: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (i, (cur, old)) in self.buckets.iter().zip(prev.buckets.iter()).enumerate() {
            debug_assert!(cur >= old, "bucket {i} shrank: {old} -> {cur}");
            out.buckets[i] = cur.saturating_sub(*old);
        }
        out.count = self.count.saturating_sub(prev.count);
        out.sum = if out.count == 0 { 0.0 } else { self.sum - prev.sum };
        // min/max stay at the empty sentinels: the window's true
        // extremes are unknowable from cumulative bucket counts.
        out
    }
}

/// A compact, mergeable snapshot of a [`Histogram`]: only the occupied
/// buckets, plus the exact count/sum/min/max. Built for KPI time-series
/// sampling, where thousands of per-window frames would make the dense
/// fixed-array form (~4 KB each) the dominant memory cost.
///
/// Percentiles, mean and extremes reproduce the dense histogram's
/// answers **exactly** (same bucket midpoints, same clamping, same
/// empty/NaN sentinels), so KPIs derived from a snapshot at end-of-run
/// equal KPIs derived from the live histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseHistogram {
    /// Occupied `(bucket_index, count)` pairs, ascending by index.
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for SparseHistogram {
    fn default() -> Self {
        // Not derived: the empty extremes are the ±inf sentinels, not 0.0.
        SparseHistogram::new()
    }
}

impl SparseHistogram {
    /// An empty snapshot (identity for [`SparseHistogram::merge`]).
    pub fn new() -> Self {
        SparseHistogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Samples a dense histogram into the compact form.
    pub fn from_histogram(h: &Histogram) -> Self {
        SparseHistogram {
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
        }
    }

    /// Expands back to the dense form (for windowed deltas and merges
    /// that want to reuse the dense histogram's arithmetic).
    pub fn to_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for &(i, n) in &self.buckets {
            h.buckets[i as usize] = n;
        }
        h.count = self.count;
        h.sum = self.sum;
        h.min = self.min;
        h.max = self.max;
        h
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn has_extremes(&self) -> bool {
        self.min <= self.max
    }

    /// Smallest observation, or `None` when empty (or sampled from a
    /// windowed delta, which carries no extremes).
    pub fn min(&self) -> Option<f64> {
        self.has_extremes().then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.has_extremes().then_some(self.max)
    }

    /// The `p`-th percentile (0–100), identical to
    /// [`Histogram::percentile`] on the equivalent dense histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        if !self.has_extremes() {
            let mut seen = 0;
            for &(i, n) in &self.buckets {
                seen += n;
                if seen >= rank {
                    return bucket_midpoint(i as usize);
                }
            }
            return 0.0;
        }
        if p == 0.0 {
            return self.min;
        }
        if p == 100.0 {
            return self.max;
        }
        let mut seen = 0;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_midpoint(i as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another snapshot into this one, with the same
    /// empty-extremes guard as [`Histogram::merge`]: merging an empty
    /// (or windowed, extreme-less) snapshot never drags the ±inf
    /// sentinels into a populated accumulator.
    pub fn merge(&mut self, other: &SparseHistogram) {
        if other.count == 0 && other.buckets.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
        if other.has_extremes() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Occupied buckets as `(range_midpoint, count)` pairs, in value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .map(|&(i, n)| (bucket_midpoint(i as usize), n))
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// FNV-1a for stat-name interning. Deterministic (zero-seeded via
/// `BuildHasherDefault`, unlike `RandomState`) and far cheaper than
/// SipHash on the short `&'static str` names the hot paths pass —
/// counter bumps happen on every voice frame at population scale.
#[derive(Default)]
struct NameHasher(u64);

impl Hasher for NameHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Name-interned storage shared by counters and histograms: the hash
/// index resolves a name to a slot in `entries` once, and the value
/// lives in a flat vector from then on. Iteration is always name-sorted
/// (see [`Registry::sorted`]), so nothing downstream — fingerprints,
/// rendering, merges — can observe hash-map order.
#[derive(Clone, Debug, Default)]
struct Registry<V> {
    index: HashMap<Box<str>, u32, BuildHasherDefault<NameHasher>>,
    entries: Vec<(Box<str>, V)>,
}

impl<V: Default> Registry<V> {
    fn slot(&mut self, name: &str) -> &mut V {
        if let Some(&i) = self.index.get(name) {
            return &mut self.entries[i as usize].1;
        }
        let i = self.entries.len() as u32;
        self.index.insert(name.into(), i);
        self.entries.push((name.into(), V::default()));
        &mut self.entries[i as usize].1
    }

    fn get(&self, name: &str) -> Option<&V> {
        self.index.get(name).map(|&i| &self.entries[i as usize].1)
    }

    /// Entries in name order. Sorting ~dozens of keys on each (rare)
    /// read is what buys the allocation- and compare-free hot path.
    fn sorted(&self) -> Vec<&(Box<str>, V)> {
        let mut refs: Vec<_> = self.entries.iter().collect();
        refs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        refs
    }
}

/// The statistics sink shared by every node in a [`Network`](crate::Network).
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: Registry<u64>,
    histograms: Registry<Histogram>,
}

impl Stats {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments `name` by one.
    pub fn count(&mut self, name: &str) {
        self.count_by(name, 1);
    }

    /// Increments `name` by `value`.
    pub fn count_by(&mut self, name: &str, value: u64) {
        *self.counters.slot(name) += value;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records an observation under `name`.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.histograms.slot(name).observe(value);
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters
            .sorted()
            .into_iter()
            .map(|(k, v)| (k.as_ref(), *v))
    }

    /// Iterates over all histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms
            .sorted()
            .into_iter()
            .map(|(k, v)| (k.as_ref(), v))
    }

    /// Folds another sink into this one (counters add; histograms merge).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters.entries {
            *self.counters.slot(k) += v;
        }
        for (k, h) in &other.histograms.entries {
            self.histograms.slot(k).merge(h);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counters:")?;
        for (k, v) in self.counters() {
            writeln!(f, "  {k}: {v}")?;
        }
        writeln!(f, "histograms:")?;
        for (k, h) in self.histograms() {
            writeln!(
                f,
                "  {k}: n={} mean={:.3} p50={:.3} p95={:.3} max={:.3}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(95.0),
                h.max().unwrap_or(0.0)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.count("a");
        s.count("a");
        s.count_by("a", 3);
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("missing"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.percentile(0.0), 1.0);
        // Percentiles are bucket-resolution approximations (~3%).
        let p50 = h.percentile(50.0);
        assert!((p50 - 3.0).abs() / 3.0 < 0.05, "p50 = {p50}");
        assert_eq!(h.percentile(100.0), 5.0);
    }

    #[test]
    fn memory_is_bounded_by_buckets() {
        // A million observations cost no more memory than ten: the
        // histogram is a fixed array, never a Vec of samples.
        let mut h = Histogram::new();
        for i in 0..1_000_000u64 {
            h.observe((i % 977) as f64 + 0.5);
        }
        assert_eq!(h.count(), 1_000_000);
        assert_eq!(std::mem::size_of_val(&*h.buckets), NUM_BUCKETS * 8);
        let p99 = h.percentile(99.0);
        assert!((900.0..=977.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_is_none_and_sentinel() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        // Documented sentinel: empty percentile is 0.0.
        assert_eq!(h.percentile(99.0), 0.0);
        assert_eq!(h.percentile(0.0), 0.0);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let mut h = Histogram::new();
        h.observe(7.3);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 7.3, "p{p}");
        }
        assert_eq!(h.min(), Some(7.3));
        assert_eq!(h.max(), Some(7.3));
    }

    #[test]
    fn tied_values_percentiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(42.0);
        }
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 42.0, "p{p}");
        }
    }

    #[test]
    fn negative_and_zero_observations_are_exact_at_extremes() {
        let mut h = Histogram::new();
        h.observe(-5.0);
        h.observe(0.0);
        h.observe(10.0);
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(10.0));
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), -5.0);
        assert_eq!(h.percentile(100.0), 10.0);
    }

    #[test]
    fn percentile_resolution_within_buckets() {
        let mut h = Histogram::new();
        for i in 1..=10_000 {
            h.observe(i as f64 / 10.0); // 0.1 .. 1000.0
        }
        for p in [10.0, 50.0, 90.0, 99.0] {
            let exact = p * 10.0; // true percentile of the uniform ramp
            let approx = h.percentile(p);
            assert!(
                (approx - exact).abs() / exact < 0.05,
                "p{p}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn extreme_magnitudes_land_in_clamp_buckets() {
        let mut h = Histogram::new();
        h.observe(1e-9); // underflow bucket
        h.observe(1e12); // overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(0.0), 1e-9);
        assert_eq!(h.percentile(100.0), 1e12);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_range_checked() {
        Histogram::new().percentile(101.0);
    }

    #[test]
    fn merge_combines_shards() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 0..1000 {
            let v = (i as f64).mul_add(0.37, 1.0);
            whole.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for p in [5.0, 50.0, 95.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p{p}");
        }
    }

    #[test]
    fn merge_into_empty_preserves_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.observe(3.0);
        a.merge(&b);
        assert_eq!(a.min(), Some(3.0));
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn merge_of_empty_does_not_poison_extremes() {
        // Folding an empty shard histogram into a populated one must
        // leave min/max untouched — not drag in the ±inf sentinels.
        let mut a = Histogram::new();
        a.observe(2.0);
        a.observe(9.0);
        a.merge(&Histogram::new());
        assert_eq!(a.min(), Some(2.0));
        assert_eq!(a.max(), Some(9.0));
        assert_eq!(a.count(), 2);
        assert_eq!(a.percentile(0.0), 2.0);
        assert_eq!(a.percentile(100.0), 9.0);

        // And the symmetric case: merging shards where some are empty
        // (e.g. a KPI no call on that shard ever hit) stays finite.
        let mut merged = Histogram::new();
        for shard in [Histogram::new(), a.clone(), Histogram::new()] {
            merged.merge(&shard);
        }
        assert_eq!(merged.min(), Some(2.0));
        assert_eq!(merged.max(), Some(9.0));
    }

    #[test]
    fn windowed_delta_subtracts_exactly() {
        let mut prev = Histogram::new();
        for v in [1.0, 5.0, 9.0] {
            prev.observe(v);
        }
        let mut cur = prev.clone();
        for v in [2.0, 40.0] {
            cur.observe(v);
        }
        let w = cur.delta_from(&prev);
        assert_eq!(w.count(), 2);
        assert!((w.sum() - 42.0).abs() < 1e-9);
        assert!((w.mean() - 21.0).abs() < 1e-9);
        // Window extremes are unknowable: percentiles fall back to
        // bucket midpoints (~3%) instead of clamping to fake extremes.
        assert_eq!(w.min(), None);
        assert_eq!(w.max(), None);
        let p100 = w.percentile(100.0);
        assert!((p100 - 40.0).abs() / 40.0 < 0.05, "p100 = {p100}");
        let buckets: Vec<(f64, u64)> = w.nonzero_buckets().collect();
        assert_eq!(buckets.iter().map(|b| b.1).sum::<u64>(), 2);
    }

    #[test]
    fn merge_of_empty_window_delta_does_not_poison_extremes() {
        // The PR 2 regression (merging an empty shard histogram) extended
        // to windowed sampling: a snapshot window in which a KPI saw no
        // new samples produces an empty delta, and folding that window
        // into an accumulator must leave min/max untouched.
        let mut cum = Histogram::new();
        cum.observe(3.0);
        cum.observe(30.0);
        let empty_window = cum.delta_from(&cum.clone());
        assert_eq!(empty_window.count(), 0);
        assert_eq!(empty_window.min(), None);
        assert_eq!(empty_window.max(), None);
        assert_eq!(empty_window.sum(), 0.0);

        let mut acc = Histogram::new();
        acc.observe(7.0);
        acc.merge(&empty_window);
        assert_eq!(acc.min(), Some(7.0));
        assert_eq!(acc.max(), Some(7.0));
        assert_eq!(acc.percentile(100.0), 7.0);

        // Same property on the sparse snapshot form the recorder stores.
        let mut sacc = SparseHistogram::from_histogram(&acc);
        sacc.merge(&SparseHistogram::from_histogram(&empty_window));
        assert_eq!(sacc.min(), Some(7.0));
        assert_eq!(sacc.max(), Some(7.0));
        assert_eq!(sacc.count(), 1);
    }

    #[test]
    fn sparse_histogram_reproduces_dense_answers_exactly() {
        let mut h = Histogram::new();
        for i in 1..=5_000 {
            h.observe(i as f64 * 0.73);
        }
        let s = SparseHistogram::from_histogram(&h);
        assert_eq!(s.count(), h.count());
        assert_eq!(s.sum(), h.sum());
        assert_eq!(s.mean(), h.mean());
        assert_eq!(s.min(), h.min());
        assert_eq!(s.max(), h.max());
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), h.percentile(p), "p{p}");
        }
        // Round trip through the dense form is lossless.
        let back = s.to_histogram();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.percentile(50.0), h.percentile(50.0));
        assert_eq!(SparseHistogram::from_histogram(&back), s);
    }

    #[test]
    fn sparse_merge_matches_dense_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 0..500 {
            if i % 3 == 0 {
                a.observe(i as f64 + 0.5);
            } else {
                b.observe((i * 7) as f64 + 0.25);
            }
        }
        let mut dense = a.clone();
        dense.merge(&b);
        let mut sparse = SparseHistogram::from_histogram(&a);
        sparse.merge(&SparseHistogram::from_histogram(&b));
        assert_eq!(sparse, SparseHistogram::from_histogram(&dense));
        for p in [5.0, 50.0, 95.0, 100.0] {
            assert_eq!(sparse.percentile(p), dense.percentile(p), "p{p}");
        }
        // Merging into the empty identity is a copy.
        let mut id = SparseHistogram::new();
        id.merge(&sparse);
        assert_eq!(id, sparse);
    }

    #[test]
    fn nan_observation_does_not_poison_extremes() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        // count > 0 but there is no real extreme to report.
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.percentile(0.0).is_finite());
        assert!(h.percentile(100.0).is_finite());

        h.observe(5.0);
        assert_eq!(h.min(), Some(5.0));
        assert_eq!(h.max(), Some(5.0));

        // Merging an all-NaN histogram into a real one is also inert.
        let mut nan_only = Histogram::new();
        nan_only.observe(f64::NAN);
        let mut real = Histogram::new();
        real.observe(1.0);
        real.merge(&nan_only);
        assert_eq!(real.min(), Some(1.0));
        assert_eq!(real.max(), Some(1.0));
    }

    #[test]
    fn stats_merge_adds_counters_and_histograms() {
        let mut a = Stats::new();
        let mut b = Stats::new();
        a.count("x");
        b.count_by("x", 4);
        b.count("only_b");
        a.observe("h", 1.0);
        b.observe("h", 3.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 5);
        assert_eq!(a.counter("only_b"), 1);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 4.0);
    }

    #[test]
    fn display_renders_all() {
        let mut s = Stats::new();
        s.count("calls");
        s.observe("setup_ms", 12.0);
        let out = s.to_string();
        assert!(out.contains("calls: 1"));
        assert!(out.contains("setup_ms"));
    }

    #[test]
    fn counter_iteration_order_is_name_sorted() {
        // The interned store is insertion-ordered internally; the public
        // iteration (which feeds fingerprints) must stay name-sorted.
        let mut s = Stats::new();
        s.count("zeta");
        s.count("alpha");
        s.count("mid");
        s.count("zeta");
        let names: Vec<&str> = s.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        assert_eq!(s.counter("zeta"), 2);
    }

    #[test]
    fn histogram_iteration_order_is_name_sorted() {
        let mut s = Stats::new();
        s.observe("z", 1.0);
        s.observe("a", 1.0);
        let names: Vec<&str> = s.histograms().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
