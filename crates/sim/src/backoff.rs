//! Bounded exponential backoff schedules for protocol retry ladders.
//!
//! Recovery procedures (RAS re-registration, admission retry, setup
//! supervision) need retry timers that are *deterministic* — the same
//! attempt number always yields the same delay, with no wall-clock or
//! RNG input — and *bounded* — a capped per-attempt delay and a hard
//! attempt limit, so a dead peer produces a finite, known amount of
//! retry traffic instead of a retry storm.
//!
//! [`Backoff`] is a pure description of such a schedule. Nodes store one
//! and ask it for the delay of attempt `n`; `None` means the ladder is
//! exhausted and the caller must give up (release the call, reject the
//! registration) with an appropriate cause.

use crate::time::SimDuration;

/// A deterministic, bounded exponential backoff schedule.
///
/// Attempt `n` (zero-based) is delayed by `base * factor^n`, saturating
/// at `cap`; attempts at or beyond `max_attempts` are refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied per attempt (>= 1 for a sane schedule).
    pub factor: u32,
    /// Upper bound on any single delay.
    pub cap: SimDuration,
    /// Number of retries permitted before the ladder is exhausted.
    pub max_attempts: u32,
}

impl Backoff {
    /// Delay before retry number `attempt` (zero-based), or `None` once
    /// the ladder is exhausted.
    pub fn delay(&self, attempt: u32) -> Option<SimDuration> {
        if attempt >= self.max_attempts {
            return None;
        }
        let base_us = self.base.as_micros();
        let cap_us = self.cap.as_micros();
        let scale = (self.factor as u64).saturating_pow(attempt);
        let us = base_us.saturating_mul(scale).min(cap_us);
        Some(SimDuration::from_micros(us))
    }

    /// Sum of every delay the schedule can ever produce — the worst-case
    /// time a retry ladder holds on to a resource before giving up.
    pub fn total_budget(&self) -> SimDuration {
        let mut total = 0u64;
        for attempt in 0..self.max_attempts {
            if let Some(d) = self.delay(attempt) {
                total = total.saturating_add(d.as_micros());
            }
        }
        SimDuration::from_micros(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Backoff {
        Backoff {
            base: SimDuration::from_millis(1000),
            factor: 2,
            cap: SimDuration::from_millis(4000),
            max_attempts: 3,
        }
    }

    #[test]
    fn delays_are_deterministic() {
        let b = schedule();
        for attempt in 0..8 {
            assert_eq!(b.delay(attempt), b.delay(attempt), "attempt {attempt}");
        }
    }

    #[test]
    fn doubles_then_caps() {
        let b = Backoff { max_attempts: 10, ..schedule() };
        assert_eq!(b.delay(0), Some(SimDuration::from_millis(1000)));
        assert_eq!(b.delay(1), Some(SimDuration::from_millis(2000)));
        assert_eq!(b.delay(2), Some(SimDuration::from_millis(4000)));
        assert_eq!(b.delay(3), Some(SimDuration::from_millis(4000)), "capped");
        assert_eq!(b.delay(9), Some(SimDuration::from_millis(4000)), "stays capped");
    }

    #[test]
    fn monotone_nondecreasing_until_exhausted() {
        let b = Backoff { max_attempts: 16, ..schedule() };
        let mut prev = SimDuration::from_micros(0);
        for attempt in 0..16 {
            let d = b.delay(attempt).expect("within max_attempts");
            assert!(d >= prev, "attempt {attempt} shrank: {d:?} < {prev:?}");
            prev = d;
        }
    }

    #[test]
    fn exhausts_at_max_attempts() {
        let b = schedule();
        assert!(b.delay(2).is_some());
        assert_eq!(b.delay(3), None);
        assert_eq!(b.delay(u32::MAX), None);
    }

    #[test]
    fn zero_attempts_never_retries() {
        let b = Backoff { max_attempts: 0, ..schedule() };
        assert_eq!(b.delay(0), None);
        assert_eq!(b.total_budget(), SimDuration::from_micros(0));
    }

    #[test]
    fn total_budget_is_bounded_and_exact() {
        let b = schedule();
        // 1000 + 2000 + 4000 ms.
        assert_eq!(b.total_budget(), SimDuration::from_millis(7000));
        // No overflow panic on extreme schedules.
        let extreme = Backoff {
            base: SimDuration::from_millis(u64::MAX / 2_000),
            factor: u32::MAX,
            cap: SimDuration::from_micros(u64::MAX),
            max_attempts: 64,
        };
        let _ = extreme.total_budget();
    }
}
