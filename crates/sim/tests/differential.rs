//! Differential oracle: the timer-wheel kernel must reproduce the binary
//! heap's schedule bit-for-bit.
//!
//! A randomized scenario (timers at mixed horizons, cancellations, message
//! ping-pong over jittery links) is run on both kernels with the same seed;
//! traces, statistics, event counts, and clocks must match exactly. Any
//! divergence means the wheel broke the `(time, seq)` ordering contract.

use vgprs_sim::{
    Context, Interface, Kernel, Network, Node, NodeId, Payload, SimDuration, SimTime, TimerToken,
    LinkConfig, LinkQuality,
};

#[derive(Clone, Debug)]
enum Msg {
    Ping(u32),
    Pong(u32),
}

impl Payload for Msg {
    fn label(&self) -> String {
        match self {
            Msg::Ping(_) => "Ping".into(),
            Msg::Pong(_) => "Pong".into(),
        }
    }
    fn reliable(&self) -> bool {
        false
    }
}

/// A node that exercises every kernel code path from its own RNG stream:
/// short/medium/long timers, cancellations (pre- and post-fire), and
/// message exchange. Both kernels see identical RNG draws because the
/// dispatch order is identical — which is exactly what the test asserts.
struct Churn {
    peer: Option<NodeId>,
    budget: u32,
    pending: Vec<TimerToken>,
}

impl Churn {
    fn act(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        match ctx.rng().range(0, 10) {
            // Short horizon: same-slot and near-slot timers.
            0..=3 => {
                let us = ctx.rng().range(0, 5_000);
                let t = ctx.set_timer(SimDuration::from_micros(us), 1);
                self.pending.push(t);
            }
            // Medium horizon: level-1 territory.
            4..=5 => {
                let ms = ctx.rng().range(100, 10_000);
                let t = ctx.set_timer(SimDuration::from_millis(ms), 2);
                self.pending.push(t);
            }
            // Long horizon: level-2 / overflow territory.
            6 => {
                let s = ctx.rng().range(60, 8 * 3_600);
                let t = ctx.set_timer(SimDuration::from_secs(s), 3);
                self.pending.push(t);
            }
            // Cancel something (often already fired — must be a no-op).
            7 => {
                if let Some(t) = self.pending.pop() {
                    ctx.cancel_timer(t);
                }
            }
            // Talk to the peer over the lossy, jittery link.
            _ => {
                if let Some(peer) = self.peer {
                    ctx.send(peer, Msg::Ping(self.budget));
                }
            }
        }
    }
}

impl Node<Msg> for Churn {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        for _ in 0..4 {
            self.act(ctx);
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, _i: Interface, msg: Msg) {
        match msg {
            Msg::Ping(n) => ctx.send(from, Msg::Pong(n)),
            // The echo carries the sender's budget at ping time.
            Msg::Pong(n) => assert!(n <= 400, "pong echoed a corrupt payload"),
        }
        self.act(ctx);
    }
    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, _t: TimerToken, _tag: u64) {
        self.act(ctx);
        self.act(ctx);
    }
}

fn run_scenario(seed: u64, kernel: Kernel, epoch_stepped: bool) -> (String, String, u64, SimTime) {
    let mut net = Network::with_kernel(seed, kernel);
    let a = net.add_node("a", Churn { peer: None, budget: 400, pending: Vec::new() });
    let b = net.add_node("b", Churn { peer: None, budget: 400, pending: Vec::new() });
    net.node_mut::<Churn>(a).unwrap().peer = Some(b);
    net.node_mut::<Churn>(b).unwrap().peer = Some(a);
    net.connect_with(
        a,
        b,
        LinkConfig::symmetric(
            Interface::Lan,
            LinkQuality::new(SimDuration::from_millis(3))
                .with_jitter(SimDuration::from_millis(7))
                .with_loss(0.05),
        ),
    );
    let mut events = 0;
    if epoch_stepped {
        // Epoch-lockstep style: fixed 50 ms deadlines, like the load engine.
        for epoch in 1.. {
            let out = net.run_until(SimTime::from_micros(epoch * 50_000));
            events += out.events;
            if net.pending_events() == 0 {
                break;
            }
        }
    } else {
        events = net.run_until_quiescent().events;
    }
    let trace = format!("{:?}", net.trace().entries());
    let stats = net.stats().to_string();
    (trace, stats, events, net.now())
}

#[test]
fn wheel_matches_heap_run_to_quiescence() {
    for seed in 0..6u64 {
        let heap = run_scenario(seed, Kernel::Heap, false);
        let wheel = run_scenario(seed, Kernel::Wheel, false);
        assert_eq!(heap.2, wheel.2, "event count diverged, seed {seed}");
        assert_eq!(heap.3, wheel.3, "final clock diverged, seed {seed}");
        assert_eq!(heap.1, wheel.1, "stats diverged, seed {seed}");
        assert_eq!(heap.0, wheel.0, "trace diverged, seed {seed}");
    }
}

#[test]
fn wheel_matches_heap_epoch_stepped() {
    // The load engine drives shards with repeated run_until deadlines; the
    // deadline path (cursor advancing past quiet slots, pushes landing at
    // or behind the cursor) must also match the heap exactly.
    for seed in 0..4u64 {
        let heap = run_scenario(seed, Kernel::Heap, true);
        let wheel = run_scenario(seed, Kernel::Wheel, true);
        assert_eq!(heap, wheel, "epoch-stepped divergence, seed {seed}");
    }
}

#[test]
fn wheel_is_the_default_kernel() {
    let net: Network<Msg> = Network::new(0);
    assert_eq!(net.kernel(), Kernel::Wheel);
}
