//! Property-based round-trip tests for every binary codec in vgprs-wire.

use proptest::prelude::*;

use vgprs_wire::{
    CallId, Cause, Cic, Crv, GtpHeader, GtpMsgType, Imsi, Ipv4Addr, IsupKind, IsupMessage,
    Msisdn, Q931Kind, Q931Message, RtpPacket, TransportAddr,
};

fn arb_msisdn() -> impl Strategy<Value = Msisdn> {
    proptest::collection::vec(0u8..10, 5..=16).prop_map(|digits| {
        let s: String = digits.iter().map(|d| char::from(b'0' + d)).collect();
        Msisdn::parse(&s).expect("generated digits are valid")
    })
}

fn arb_imsi() -> impl Strategy<Value = Imsi> {
    proptest::collection::vec(0u8..10, 14..=15).prop_map(|digits| {
        let s: String = digits.iter().map(|d| char::from(b'0' + d)).collect();
        Imsi::parse(&s).expect("generated digits are valid")
    })
}

fn arb_transport() -> impl Strategy<Value = TransportAddr> {
    (any::<u32>(), any::<u16>()).prop_map(|(ip, port)| TransportAddr::new(Ipv4Addr(ip), port))
}

fn arb_cause() -> impl Strategy<Value = Cause> {
    proptest::sample::select(Cause::ALL.to_vec())
}

fn arb_gtp_type() -> impl Strategy<Value = GtpMsgType> {
    proptest::sample::select(vec![
        GtpMsgType::EchoRequest,
        GtpMsgType::EchoResponse,
        GtpMsgType::CreatePdpContextRequest,
        GtpMsgType::CreatePdpContextResponse,
        GtpMsgType::UpdatePdpContextRequest,
        GtpMsgType::UpdatePdpContextResponse,
        GtpMsgType::DeletePdpContextRequest,
        GtpMsgType::DeletePdpContextResponse,
        GtpMsgType::PduNotificationRequest,
        GtpMsgType::PduNotificationResponse,
        GtpMsgType::TPdu,
    ])
}

proptest! {
    #[test]
    fn gtp_header_roundtrip(
        msg_type in arb_gtp_type(),
        length in any::<u16>(),
        seq in any::<u16>(),
        flow in any::<u16>(),
        tid in any::<u64>(),
    ) {
        let h = GtpHeader { msg_type, length, seq, flow, tid };
        let decoded = GtpHeader::decode(&h.encode()).expect("well-formed header decodes");
        prop_assert_eq!(decoded, h);
    }

    #[test]
    fn gtp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = GtpHeader::decode(&bytes);
    }

    #[test]
    fn rtp_header_roundtrip(
        ssrc in any::<u32>(),
        seq in any::<u16>(),
        timestamp in any::<u32>(),
        payload_type in 0u8..128,
        marker in any::<bool>(),
    ) {
        let p = RtpPacket {
            ssrc, seq, timestamp, payload_type, marker,
            payload_len: 33, call: CallId(0), origin_us: 0,
        };
        let d = RtpPacket::decode_header(&p.encode_header()).expect("decodes");
        prop_assert_eq!(d.ssrc, ssrc);
        prop_assert_eq!(d.seq, seq);
        prop_assert_eq!(d.timestamp, timestamp);
        prop_assert_eq!(d.payload_type, payload_type);
        prop_assert_eq!(d.marker, marker);
    }

    #[test]
    fn rtp_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = RtpPacket::decode_header(&bytes);
    }

    #[test]
    fn q931_setup_roundtrip(
        crv in any::<u16>(),
        call in any::<u64>(),
        calling in proptest::option::of(arb_msisdn()),
        called in arb_msisdn(),
        signal in arb_transport(),
        media in arb_transport(),
    ) {
        let m = Q931Message {
            crv: Crv(crv),
            call: CallId(call),
            kind: Q931Kind::Setup { calling, called, signal_addr: signal, media_addr: media },
        };
        prop_assert_eq!(Q931Message::decode(&m.encode()).expect("decodes"), m);
    }

    #[test]
    fn q931_other_kinds_roundtrip(
        crv in any::<u16>(),
        call in any::<u64>(),
        choice in 0usize..4,
        media in arb_transport(),
        cause in arb_cause(),
    ) {
        let kind = match choice {
            0 => Q931Kind::CallProceeding,
            1 => Q931Kind::Alerting,
            2 => Q931Kind::Connect { media_addr: media },
            _ => Q931Kind::ReleaseComplete { cause },
        };
        let m = Q931Message { crv: Crv(crv), call: CallId(call), kind };
        prop_assert_eq!(Q931Message::decode(&m.encode()).expect("decodes"), m);
    }

    #[test]
    fn q931_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = Q931Message::decode(&bytes);
    }

    #[test]
    fn isup_roundtrip(
        cic in any::<u16>(),
        call in any::<u64>(),
        choice in 0usize..5,
        called in arb_msisdn(),
        calling in proptest::option::of(arb_msisdn()),
        cause in arb_cause(),
    ) {
        let kind = match choice {
            0 => IsupKind::Iam { called, calling },
            1 => IsupKind::Acm,
            2 => IsupKind::Anm,
            3 => IsupKind::Rel { cause },
            _ => IsupKind::Rlc,
        };
        let m = IsupMessage { cic: Cic(cic), call: CallId(call), kind };
        prop_assert_eq!(IsupMessage::decode(&m.encode()).expect("decodes"), m);
    }

    #[test]
    fn isup_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = IsupMessage::decode(&bytes);
    }

    #[test]
    fn msisdn_parse_display_roundtrip(m in arb_msisdn()) {
        let s = m.to_string();
        prop_assert_eq!(Msisdn::parse(&s).expect("reparse"), m);
    }

    #[test]
    fn imsi_parse_display_roundtrip(i in arb_imsi()) {
        let s = i.to_string();
        prop_assert_eq!(Imsi::parse(&s).expect("reparse"), i);
    }

    #[test]
    fn ipv4_parse_display_roundtrip(raw in any::<u32>()) {
        let ip = Ipv4Addr(raw);
        let reparsed: Ipv4Addr = ip.to_string().parse().expect("reparse");
        prop_assert_eq!(reparsed, ip);
    }

    #[test]
    fn cause_q850_roundtrip(c in arb_cause()) {
        prop_assert_eq!(Cause::from_q850(c.q850_value()), Some(c));
    }
}
