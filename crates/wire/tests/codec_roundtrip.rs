//! Randomized round-trip tests for every binary codec in vgprs-wire.
//!
//! Formerly proptest properties; now seeded-loop tests driven by
//! [`SimRng`] so the crate builds fully offline. Each test runs a few
//! hundred random cases derived from a fixed seed, which keeps failures
//! reproducible without an external shrinker.

use vgprs_sim::SimRng;
use vgprs_wire::{
    CallId, Cause, CellId, Cic, Crv, DecodeMapError, GtpHeader, GtpMsgType, Imsi, Ipv4Addr,
    IsupKind, IsupMessage, MapMessage, Msisdn, Q931Kind, Q931Message, RtpPacket, TransportAddr,
};

const CASES: usize = 300;

fn rand_digits(rng: &mut SimRng, lo: usize, hi: usize) -> String {
    let len = rng.range(lo as u64, hi as u64 + 1) as usize;
    (0..len)
        .map(|_| char::from(b'0' + rng.range(0, 10) as u8))
        .collect()
}

fn rand_msisdn(rng: &mut SimRng) -> Msisdn {
    Msisdn::parse(&rand_digits(rng, 5, 16)).expect("generated digits are valid")
}

fn rand_imsi(rng: &mut SimRng) -> Imsi {
    Imsi::parse(&rand_digits(rng, 14, 15)).expect("generated digits are valid")
}

fn rand_transport(rng: &mut SimRng) -> TransportAddr {
    TransportAddr::new(Ipv4Addr(rng.next_u32()), rng.next_u32() as u16)
}

fn rand_cause(rng: &mut SimRng) -> Cause {
    Cause::ALL[rng.range(0, Cause::ALL.len() as u64) as usize]
}

fn rand_gtp_type(rng: &mut SimRng) -> GtpMsgType {
    const TYPES: &[GtpMsgType] = &[
        GtpMsgType::EchoRequest,
        GtpMsgType::EchoResponse,
        GtpMsgType::CreatePdpContextRequest,
        GtpMsgType::CreatePdpContextResponse,
        GtpMsgType::UpdatePdpContextRequest,
        GtpMsgType::UpdatePdpContextResponse,
        GtpMsgType::DeletePdpContextRequest,
        GtpMsgType::DeletePdpContextResponse,
        GtpMsgType::PduNotificationRequest,
        GtpMsgType::PduNotificationResponse,
        GtpMsgType::TPdu,
    ];
    TYPES[rng.range(0, TYPES.len() as u64) as usize]
}

fn rand_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let len = rng.range(0, max_len as u64) as usize;
    (0..len).map(|_| rng.range(0, 256) as u8).collect()
}

#[test]
fn gtp_header_roundtrip() {
    let mut rng = SimRng::new(0x617);
    for _ in 0..CASES {
        let h = GtpHeader {
            msg_type: rand_gtp_type(&mut rng),
            length: rng.next_u32() as u16,
            seq: rng.next_u32() as u16,
            flow: rng.next_u32() as u16,
            tid: rng.next_u64(),
        };
        let decoded = GtpHeader::decode(&h.encode()).expect("well-formed header decodes");
        assert_eq!(decoded, h);
    }
}

#[test]
fn gtp_decode_never_panics() {
    let mut rng = SimRng::new(0x618);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 64);
        let _ = GtpHeader::decode(&bytes);
    }
}

#[test]
fn rtp_header_roundtrip() {
    let mut rng = SimRng::new(0x619);
    for _ in 0..CASES {
        let p = RtpPacket {
            ssrc: rng.next_u32(),
            seq: rng.next_u32() as u16,
            timestamp: rng.next_u32(),
            payload_type: rng.range(0, 128) as u8,
            marker: rng.chance(0.5),
            payload_len: 33,
            call: CallId(0),
            origin_us: 0,
        };
        let d = RtpPacket::decode_header(&p.encode_header()).expect("decodes");
        assert_eq!(d.ssrc, p.ssrc);
        assert_eq!(d.seq, p.seq);
        assert_eq!(d.timestamp, p.timestamp);
        assert_eq!(d.payload_type, p.payload_type);
        assert_eq!(d.marker, p.marker);
    }
}

#[test]
fn rtp_decode_never_panics() {
    let mut rng = SimRng::new(0x61A);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 32);
        let _ = RtpPacket::decode_header(&bytes);
    }
}

#[test]
fn q931_setup_roundtrip() {
    let mut rng = SimRng::new(0x61B);
    for _ in 0..CASES {
        let calling = if rng.chance(0.5) {
            Some(rand_msisdn(&mut rng))
        } else {
            None
        };
        let m = Q931Message {
            crv: Crv(rng.next_u32() as u16),
            call: CallId(rng.next_u64()),
            kind: Q931Kind::Setup {
                calling,
                called: rand_msisdn(&mut rng),
                signal_addr: rand_transport(&mut rng),
                media_addr: rand_transport(&mut rng),
            },
        };
        assert_eq!(Q931Message::decode(&m.encode()).expect("decodes"), m);
    }
}

#[test]
fn q931_other_kinds_roundtrip() {
    let mut rng = SimRng::new(0x61C);
    for _ in 0..CASES {
        let kind = match rng.range(0, 4) {
            0 => Q931Kind::CallProceeding,
            1 => Q931Kind::Alerting,
            2 => Q931Kind::Connect {
                media_addr: rand_transport(&mut rng),
            },
            _ => Q931Kind::ReleaseComplete {
                cause: rand_cause(&mut rng),
            },
        };
        let m = Q931Message {
            crv: Crv(rng.next_u32() as u16),
            call: CallId(rng.next_u64()),
            kind,
        };
        assert_eq!(Q931Message::decode(&m.encode()).expect("decodes"), m);
    }
}

#[test]
fn q931_decode_never_panics() {
    let mut rng = SimRng::new(0x61D);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 96);
        let _ = Q931Message::decode(&bytes);
    }
}

#[test]
fn isup_roundtrip() {
    let mut rng = SimRng::new(0x61E);
    for _ in 0..CASES {
        let kind = match rng.range(0, 5) {
            0 => {
                let calling = if rng.chance(0.5) {
                    Some(rand_msisdn(&mut rng))
                } else {
                    None
                };
                IsupKind::Iam {
                    called: rand_msisdn(&mut rng),
                    calling,
                }
            }
            1 => IsupKind::Acm,
            2 => IsupKind::Anm,
            3 => IsupKind::Rel {
                cause: rand_cause(&mut rng),
            },
            _ => IsupKind::Rlc,
        };
        let m = IsupMessage {
            cic: Cic(rng.next_u32() as u16),
            call: CallId(rng.next_u64()),
            kind,
        };
        assert_eq!(IsupMessage::decode(&m.encode()).expect("decodes"), m);
    }
}

#[test]
fn isup_decode_never_panics() {
    let mut rng = SimRng::new(0x61F);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 64);
        let _ = IsupMessage::decode(&bytes);
    }
}

fn rand_map_handover(rng: &mut SimRng) -> MapMessage {
    match rng.range(0, 4) {
        0 => MapMessage::PrepareHandover {
            call: CallId(rng.next_u64()),
            imsi: rand_imsi(rng),
            cell: CellId(rng.next_u32() as u16),
        },
        1 => MapMessage::PrepareHandoverAck {
            call: CallId(rng.next_u64()),
            cic: Cic(rng.next_u32() as u16),
            ho_ref: rng.next_u32(),
        },
        2 => MapMessage::SendEndSignal {
            call: CallId(rng.next_u64()),
        },
        _ => MapMessage::SendEndSignalAck {
            call: CallId(rng.next_u64()),
        },
    }
}

#[test]
fn map_handover_roundtrip() {
    let mut rng = SimRng::new(0x623);
    for _ in 0..CASES {
        let m = rand_map_handover(&mut rng);
        let bytes = m.encode_handover().expect("handoff subset encodes");
        assert_eq!(MapMessage::decode_handover(&bytes).expect("decodes"), m);
    }
}

#[test]
fn map_handover_decode_rejects_truncation() {
    // Every strict prefix of every handoff operation must fail to
    // decode — a short SS7 read can never yield a phantom operation.
    let mut rng = SimRng::new(0x624);
    for _ in 0..32 {
        let m = rand_map_handover(&mut rng);
        let b = m.encode_handover().expect("encodes");
        for cut in 0..b.len() {
            assert!(
                MapMessage::decode_handover(&b[..cut]).is_err(),
                "prefix {cut} of {m:?} decoded"
            );
        }
    }
}

#[test]
fn map_handover_decode_rejects_trailing_bytes() {
    let m = MapMessage::SendEndSignal { call: CallId(7) };
    let mut b = m.encode_handover().expect("encodes");
    b.push(0);
    assert_eq!(
        MapMessage::decode_handover(&b),
        Err(DecodeMapError::TrailingBytes(1))
    );
}

#[test]
fn map_handover_decode_never_panics() {
    let mut rng = SimRng::new(0x625);
    for _ in 0..CASES {
        let bytes = rand_bytes(&mut rng, 64);
        let _ = MapMessage::decode_handover(&bytes);
    }
}

#[test]
fn map_non_handover_ops_stay_in_memory() {
    let m = MapMessage::CancelLocation {
        imsi: Imsi::parse("466920123456789").expect("valid"),
    };
    assert_eq!(m.encode_handover(), None);
}

#[test]
fn gtp_update_pdp_decode_rejects_truncation() {
    // The PDP-context update exchanged when a handed-off subscriber's
    // bearer moves: every strict prefix of the header must fail.
    for msg_type in [
        GtpMsgType::UpdatePdpContextRequest,
        GtpMsgType::UpdatePdpContextResponse,
    ] {
        let h = GtpHeader {
            msg_type,
            length: 12,
            seq: 7,
            flow: 9,
            tid: 0xDEAD_BEEF_CAFE_F00D,
        };
        let b = h.encode();
        for cut in 0..b.len() {
            assert!(
                GtpHeader::decode(&b[..cut]).is_err(),
                "prefix {cut} of {msg_type:?} decoded"
            );
        }
        assert_eq!(GtpHeader::decode(&b).expect("full header decodes"), h);
    }
}

#[test]
fn msisdn_parse_display_roundtrip() {
    let mut rng = SimRng::new(0x620);
    for _ in 0..CASES {
        let m = rand_msisdn(&mut rng);
        let s = m.to_string();
        assert_eq!(Msisdn::parse(&s).expect("reparse"), m);
    }
}

#[test]
fn imsi_parse_display_roundtrip() {
    let mut rng = SimRng::new(0x621);
    for _ in 0..CASES {
        let i = rand_imsi(&mut rng);
        let s = i.to_string();
        assert_eq!(Imsi::parse(&s).expect("reparse"), i);
    }
}

#[test]
fn ipv4_parse_display_roundtrip() {
    let mut rng = SimRng::new(0x622);
    for _ in 0..CASES {
        let ip = Ipv4Addr(rng.next_u32());
        let reparsed: Ipv4Addr = ip.to_string().parse().expect("reparse");
        assert_eq!(reparsed, ip);
    }
}

#[test]
fn cause_q850_roundtrip() {
    for c in Cause::ALL {
        assert_eq!(Cause::from_q850(c.q850_value()), Some(c));
    }
}
