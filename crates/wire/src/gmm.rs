//! GPRS mobility management (GMM) and session management (SM) signaling
//! (GSM 04.08 §9.4, GSM 03.60), exchanged between an attaching endpoint
//! (GPRS MS — or the VMSC acting as one) and the SGSN over Gb.


use crate::cause::Cause;
use crate::ids::{Imsi, Ipv4Addr, Nsapi, Tmsi};
use crate::qos::QosProfile;

/// A GMM/SM signaling message.
#[derive(Clone, Debug, PartialEq)]
pub enum GmmMessage {
    /// Endpoint requests GPRS attach (paper step 1.3).
    AttachRequest {
        /// Attaching subscriber.
        imsi: Imsi,
    },
    /// SGSN accepts the attach and assigns a packet TMSI.
    AttachAccept {
        /// Attached subscriber.
        imsi: Imsi,
        /// Packet TMSI.
        ptmsi: Tmsi,
    },
    /// SGSN rejects the attach.
    AttachReject {
        /// Subscriber.
        imsi: Imsi,
        /// Why.
        cause: Cause,
    },
    /// Endpoint detaches from GPRS.
    DetachRequest {
        /// Subscriber.
        imsi: Imsi,
    },
    /// SGSN confirms detach.
    DetachAccept {
        /// Subscriber.
        imsi: Imsi,
    },
    /// Endpoint activates a PDP context (paper steps 1.3, 2.9, 4.8).
    ActivatePdpContextRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Which of the subscriber's contexts.
        nsapi: Nsapi,
        /// Requested QoS.
        qos: QosProfile,
        /// `None` requests dynamic address allocation by the GGSN;
        /// `Some` requests a static PDP address (the TR 22.973 baseline
        /// needs this for network-initiated activation).
        static_addr: Option<Ipv4Addr>,
    },
    /// SGSN confirms activation with the negotiated parameters.
    ActivatePdpContextAccept {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
        /// The PDP address now bound to the context.
        addr: Ipv4Addr,
        /// Negotiated QoS (may be weaker than requested).
        qos: QosProfile,
    },
    /// SGSN rejects activation.
    ActivatePdpContextReject {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
        /// Why.
        cause: Cause,
    },
    /// Network-initiated activation request (SGSN → endpoint): the GGSN
    /// received downlink traffic for a static PDP address with no active
    /// context (TR 22.973 termination path).
    RequestPdpContextActivation {
        /// Subscriber.
        imsi: Imsi,
        /// Context to activate.
        nsapi: Nsapi,
        /// The static address traffic arrived for.
        addr: Ipv4Addr,
    },
    /// Endpoint deactivates a context (paper step 3.4).
    DeactivatePdpContextRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
    },
    /// SGSN confirms deactivation.
    DeactivatePdpContextAccept {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
    },
}

impl GmmMessage {
    /// Trace label, following the paper's naming ("GPRS Attach Request",
    /// "PDP context activation") in label-safe form.
    pub fn label(&self) -> &'static str {
        match self {
            GmmMessage::AttachRequest { .. } => "GPRS_Attach_Request",
            GmmMessage::AttachAccept { .. } => "GPRS_Attach_Accept",
            GmmMessage::AttachReject { .. } => "GPRS_Attach_Reject",
            GmmMessage::DetachRequest { .. } => "GPRS_Detach_Request",
            GmmMessage::DetachAccept { .. } => "GPRS_Detach_Accept",
            GmmMessage::ActivatePdpContextRequest { .. } => "Activate_PDP_Context_Request",
            GmmMessage::ActivatePdpContextAccept { .. } => "Activate_PDP_Context_Accept",
            GmmMessage::ActivatePdpContextReject { .. } => "Activate_PDP_Context_Reject",
            GmmMessage::RequestPdpContextActivation { .. } => "Request_PDP_Context_Activation",
            GmmMessage::DeactivatePdpContextRequest { .. } => "Deactivate_PDP_Context_Request",
            GmmMessage::DeactivatePdpContextAccept { .. } => "Deactivate_PDP_Context_Accept",
        }
    }

    /// The subscriber this message concerns.
    pub fn imsi(&self) -> Imsi {
        match self {
            GmmMessage::AttachRequest { imsi }
            | GmmMessage::AttachAccept { imsi, .. }
            | GmmMessage::AttachReject { imsi, .. }
            | GmmMessage::DetachRequest { imsi }
            | GmmMessage::DetachAccept { imsi }
            | GmmMessage::ActivatePdpContextRequest { imsi, .. }
            | GmmMessage::ActivatePdpContextAccept { imsi, .. }
            | GmmMessage::ActivatePdpContextReject { imsi, .. }
            | GmmMessage::RequestPdpContextActivation { imsi, .. }
            | GmmMessage::DeactivatePdpContextRequest { imsi, .. }
            | GmmMessage::DeactivatePdpContextAccept { imsi, .. } => *imsi,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    #[test]
    fn labels() {
        assert_eq!(
            GmmMessage::AttachRequest { imsi: imsi() }.label(),
            "GPRS_Attach_Request"
        );
        assert_eq!(
            GmmMessage::ActivatePdpContextRequest {
                imsi: imsi(),
                nsapi: Nsapi::new(5).unwrap(),
                qos: QosProfile::signaling(),
                static_addr: None,
            }
            .label(),
            "Activate_PDP_Context_Request"
        );
    }

    #[test]
    fn imsi_accessor_covers_variants() {
        let msgs = [
            GmmMessage::AttachRequest { imsi: imsi() },
            GmmMessage::DetachAccept { imsi: imsi() },
            GmmMessage::DeactivatePdpContextRequest {
                imsi: imsi(),
                nsapi: Nsapi::new(6).unwrap(),
            },
        ];
        for m in msgs {
            assert_eq!(m.imsi(), imsi());
        }
    }
}
