//! Subscriber profile data held by the HLR and copied to VLRs.


use crate::ids::Msisdn;

/// The service profile the HLR stores per subscriber and downloads to a
/// visited VLR via `MAP_Insert_Subs_Data` (paper step 1.2: "the profile
/// indicates, e.g., if the MS is allowed to make international calls").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubscriberProfile {
    /// The subscriber's dialable number.
    pub msisdn: Msisdn,
    /// Whether outgoing international calls are permitted.
    pub international_allowed: bool,
    /// Whether GPRS (packet) service is provisioned.
    pub gprs_allowed: bool,
    /// Whether the subscriber may originate calls at all.
    pub origination_allowed: bool,
}

impl SubscriberProfile {
    /// A fully provisioned subscriber.
    pub fn full(msisdn: Msisdn) -> Self {
        SubscriberProfile {
            msisdn,
            international_allowed: true,
            gprs_allowed: true,
            origination_allowed: true,
        }
    }

    /// A subscriber barred from international calls.
    pub fn domestic_only(msisdn: Msisdn) -> Self {
        SubscriberProfile {
            international_allowed: false,
            ..Self::full(msisdn)
        }
    }

    /// Authorizes an outgoing call to `called`, given whether the call
    /// leaves the home country.
    pub fn may_call(&self, international: bool) -> bool {
        self.origination_allowed && (!international || self.international_allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msisdn() -> Msisdn {
        Msisdn::parse("88612345678").unwrap()
    }

    #[test]
    fn full_profile_allows_everything() {
        let p = SubscriberProfile::full(msisdn());
        assert!(p.may_call(false));
        assert!(p.may_call(true));
        assert!(p.gprs_allowed);
    }

    #[test]
    fn domestic_only_blocks_international() {
        let p = SubscriberProfile::domestic_only(msisdn());
        assert!(p.may_call(false));
        assert!(!p.may_call(true));
    }

    #[test]
    fn origination_bar_blocks_all() {
        let p = SubscriberProfile {
            origination_allowed: false,
            ..SubscriberProfile::full(msisdn())
        };
        assert!(!p.may_call(false));
        assert!(!p.may_call(true));
    }
}
