//! Scenario-driver commands.
//!
//! Commands are injected through
//! [`Network::inject`](vgprs_sim::Network::inject) and arrive over
//! [`Interface::Internal`](vgprs_sim::Interface::Internal); they model the
//! human side of the system — pressing the power button, dialing, picking
//! up, hanging up, walking across a cell boundary.


use crate::ids::{CallId, CellId, Msisdn};

/// A local stimulus delivered to a node by the scenario driver.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Switch a mobile station on; it will register (paper Section 3).
    PowerOn,
    /// Switch a mobile station off; it will detach.
    PowerOff,
    /// Dial a number (paper Section 4). The scenario assigns the call id
    /// so statistics can be correlated end-to-end.
    Dial {
        /// Scenario-assigned call id.
        call: CallId,
        /// Number to dial.
        called: Msisdn,
    },
    /// Answer the currently alerting call.
    Answer,
    /// Hang up the active call (paper Section 4, release flow).
    Hangup,
    /// Start sending voice frames on the active call (media experiments).
    StartTalking,
    /// Stop sending voice frames.
    StopTalking,
    /// Move to a different cell, triggering handoff if on a call
    /// (paper Section 7).
    MoveToCell {
        /// Destination cell.
        cell: CellId,
    },
    /// Fault injection: crash a network element. All volatile state is
    /// lost and the node drops traffic until [`Command::Restore`].
    Crash,
    /// Fault injection: the node keeps its state but silently drops all
    /// traffic until [`Command::Restore`] — peers see timeouts, not
    /// rejections.
    Blackhole,
    /// Fault injection: end a [`Command::Crash`] or [`Command::Blackhole`]
    /// window; the node resumes serving (with whatever state survived).
    Restore,
    /// Recovery: tell the VMSC a backbone peer restarted; it re-runs
    /// attach → PDP activation → gatekeeper RRQ for every known MS.
    Resync,
}

impl Command {
    /// Trace label, e.g. `Cmd_Dial`.
    pub fn label(&self) -> &'static str {
        match self {
            Command::PowerOn => "Cmd_Power_On",
            Command::PowerOff => "Cmd_Power_Off",
            Command::Dial { .. } => "Cmd_Dial",
            Command::Answer => "Cmd_Answer",
            Command::Hangup => "Cmd_Hangup",
            Command::StartTalking => "Cmd_Start_Talking",
            Command::StopTalking => "Cmd_Stop_Talking",
            Command::MoveToCell { .. } => "Cmd_Move_To_Cell",
            Command::Crash => "Cmd_Crash",
            Command::Blackhole => "Cmd_Blackhole",
            Command::Restore => "Cmd_Restore",
            Command::Resync => "Cmd_Resync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_prefixed() {
        assert_eq!(Command::PowerOn.label(), "Cmd_Power_On");
        assert_eq!(
            Command::Dial {
                call: CallId(1),
                called: Msisdn::parse("88612345678").unwrap()
            }
            .label(),
            "Cmd_Dial"
        );
        assert_eq!(Command::MoveToCell { cell: CellId(2) }.label(), "Cmd_Move_To_Cell");
        assert_eq!(Command::Crash.label(), "Cmd_Crash");
        assert_eq!(Command::Restore.label(), "Cmd_Restore");
        assert_eq!(Command::Resync.label(), "Cmd_Resync");
    }
}
