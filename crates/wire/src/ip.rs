//! Simulated IP packets carried on the LAN/Gi segments and tunneled
//! through the GPRS core.


use crate::ids::TransportAddr;
use crate::q931::Q931Message;
use crate::ras::RasMessage;
use crate::rtp::RtpPacket;

/// What an [`IpPacket`] carries.
#[derive(Clone, Debug, PartialEq)]
pub enum IpPayload {
    /// H.225 RAS (endpoint ↔ gatekeeper).
    Ras(RasMessage),
    /// Q.931/H.225 call signaling (endpoint ↔ endpoint).
    Q931(Q931Message),
    /// RTP media.
    Rtp(RtpPacket),
}

impl IpPayload {
    /// Trace label of the payload.
    pub fn label(&self) -> String {
        match self {
            IpPayload::Ras(m) => m.label().to_owned(),
            IpPayload::Q931(m) => m.label().to_owned(),
            IpPayload::Rtp(_) => "RTP".to_owned(),
        }
    }

    /// Approximate payload size in bytes.
    pub fn wire_size(&self) -> usize {
        match self {
            IpPayload::Ras(_) => 60,
            IpPayload::Q931(m) => m.encode().len(),
            IpPayload::Rtp(p) => p.wire_size(),
        }
    }

    /// True for media traffic (left out of signaling traces).
    pub fn is_media(&self) -> bool {
        matches!(self, IpPayload::Rtp(_))
    }
}

/// A routable IP packet between two transport addresses.
#[derive(Clone, Debug, PartialEq)]
pub struct IpPacket {
    /// Source address and port.
    pub src: TransportAddr,
    /// Destination address and port.
    pub dst: TransportAddr,
    /// Remaining hops before the packet is dropped (loop protection).
    pub ttl: u8,
    /// Payload.
    pub payload: IpPayload,
}

impl IpPacket {
    /// Default initial TTL.
    pub const DEFAULT_TTL: u8 = 16;

    /// Builds a packet with the default TTL.
    pub fn new(src: TransportAddr, dst: TransportAddr, payload: IpPayload) -> Self {
        IpPacket {
            src,
            dst,
            ttl: Self::DEFAULT_TTL,
            payload,
        }
    }

    /// Returns a copy with the TTL decremented, or `None` if expired.
    #[must_use]
    pub fn forwarded(&self) -> Option<IpPacket> {
        if self.ttl <= 1 {
            return None;
        }
        let mut p = self.clone();
        p.ttl -= 1;
        Some(p)
    }

    /// Trace label (the payload's; IP encapsulation is implied by the
    /// interface column).
    pub fn label(&self) -> String {
        self.payload.label()
    }

    /// Total size: 20-byte IP header + 8-byte UDP/TCP-ish header + payload.
    pub fn wire_size(&self) -> usize {
        28 + self.payload.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CallId, Ipv4Addr, Msisdn};

    fn addr(last: u8) -> TransportAddr {
        TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, last), 1720)
    }

    fn ras_packet() -> IpPacket {
        IpPacket::new(
            addr(1),
            addr(2),
            IpPayload::Ras(RasMessage::Rcf {
                alias: Msisdn::parse("88612345678").unwrap(),
            }),
        )
    }

    #[test]
    fn label_is_payload_label() {
        assert_eq!(ras_packet().label(), "RAS_RCF");
    }

    #[test]
    fn ttl_expiry() {
        let mut p = ras_packet();
        p.ttl = 2;
        let f = p.forwarded().unwrap();
        assert_eq!(f.ttl, 1);
        assert!(f.forwarded().is_none());
    }

    #[test]
    fn media_classification() {
        let rtp = IpPacket::new(
            addr(1),
            addr(2),
            IpPayload::Rtp(RtpPacket {
                ssrc: 0,
                seq: 0,
                timestamp: 0,
                payload_type: 3,
                marker: false,
                payload_len: 33,
                call: CallId(0),
                origin_us: 0,
            }),
        );
        assert!(rtp.payload.is_media());
        assert!(!ras_packet().payload.is_media());
        assert_eq!(rtp.label(), "RTP");
    }

    #[test]
    fn wire_size_includes_headers() {
        assert_eq!(ras_packet().wire_size(), 88);
    }
}
