//! Release and failure causes shared across the signaling protocols.

use std::fmt;


/// Why a call, registration or context operation ended or failed.
///
/// A single cause space is shared by Q.931, ISUP, MAP and the GPRS session
/// management messages; each codec maps it to its own wire value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cause {
    /// Normal call clearing (Q.850 cause 16).
    NormalClearing,
    /// Called party busy (Q.850 cause 17).
    UserBusy,
    /// No answer from the user (Q.850 cause 19).
    NoAnswer,
    /// Unallocated / unassigned number (Q.850 cause 1).
    UnallocatedNumber,
    /// No route to destination (Q.850 cause 3).
    NoRouteToDestination,
    /// Network congestion / no circuit available (Q.850 cause 34).
    NetworkCongestion,
    /// Radio resource unavailable (no traffic channel).
    RadioResourceUnavailable,
    /// Authentication failed.
    AuthenticationFailure,
    /// The subscriber's profile does not allow the requested service.
    ServiceNotAllowed,
    /// H.323 gatekeeper rejected admission (ARJ).
    AdmissionRejected,
    /// GGSN could not allocate a PDP address or tunnel.
    PdpResourceUnavailable,
    /// The peer answered with something the protocol forbids.
    ProtocolError,
    /// The MS cannot be reached (detached or paging failed).
    SubscriberAbsent,
    /// Transient network failure — retry may succeed (Q.850 cause 41).
    /// Used when a recovery ladder exhausts its bounded retries.
    TemporaryFailure,
    /// A supervision timer expired and recovery released the call
    /// (Q.850 cause 102).
    RecoveryOnTimerExpiry,
}

impl Cause {
    /// The Q.850-compatible cause value used in Q.931 and ISUP encodings.
    pub fn q850_value(self) -> u8 {
        match self {
            Cause::UnallocatedNumber => 1,
            Cause::NoRouteToDestination => 3,
            Cause::NormalClearing => 16,
            Cause::UserBusy => 17,
            Cause::NoAnswer => 19,
            Cause::SubscriberAbsent => 20,
            Cause::NetworkCongestion => 34,
            Cause::RadioResourceUnavailable => 47,
            Cause::AuthenticationFailure => 57,
            Cause::ServiceNotAllowed => 63,
            Cause::AdmissionRejected => 21,
            Cause::PdpResourceUnavailable => 38,
            Cause::TemporaryFailure => 41,
            Cause::RecoveryOnTimerExpiry => 102,
            Cause::ProtocolError => 111,
        }
    }

    /// Reverse of [`q850_value`](Cause::q850_value).
    ///
    /// Returns `None` for values this reproduction never emits.
    pub fn from_q850(value: u8) -> Option<Self> {
        Some(match value {
            1 => Cause::UnallocatedNumber,
            3 => Cause::NoRouteToDestination,
            16 => Cause::NormalClearing,
            17 => Cause::UserBusy,
            19 => Cause::NoAnswer,
            20 => Cause::SubscriberAbsent,
            21 => Cause::AdmissionRejected,
            34 => Cause::NetworkCongestion,
            38 => Cause::PdpResourceUnavailable,
            41 => Cause::TemporaryFailure,
            47 => Cause::RadioResourceUnavailable,
            57 => Cause::AuthenticationFailure,
            63 => Cause::ServiceNotAllowed,
            102 => Cause::RecoveryOnTimerExpiry,
            111 => Cause::ProtocolError,
            _ => return None,
        })
    }

    /// True if this cause represents a normal, successful call lifecycle end.
    pub fn is_normal(self) -> bool {
        matches!(self, Cause::NormalClearing)
    }

    /// All causes, for exhaustive round-trip tests.
    pub const ALL: [Cause; 15] = [
        Cause::NormalClearing,
        Cause::UserBusy,
        Cause::NoAnswer,
        Cause::UnallocatedNumber,
        Cause::NoRouteToDestination,
        Cause::NetworkCongestion,
        Cause::RadioResourceUnavailable,
        Cause::AuthenticationFailure,
        Cause::ServiceNotAllowed,
        Cause::AdmissionRejected,
        Cause::PdpResourceUnavailable,
        Cause::ProtocolError,
        Cause::SubscriberAbsent,
        Cause::TemporaryFailure,
        Cause::RecoveryOnTimerExpiry,
    ];
}

impl fmt::Display for Cause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            Cause::NormalClearing => "normal clearing",
            Cause::UserBusy => "user busy",
            Cause::NoAnswer => "no answer",
            Cause::UnallocatedNumber => "unallocated number",
            Cause::NoRouteToDestination => "no route to destination",
            Cause::NetworkCongestion => "network congestion",
            Cause::RadioResourceUnavailable => "radio resource unavailable",
            Cause::AuthenticationFailure => "authentication failure",
            Cause::ServiceNotAllowed => "service not allowed",
            Cause::AdmissionRejected => "admission rejected",
            Cause::PdpResourceUnavailable => "PDP resource unavailable",
            Cause::ProtocolError => "protocol error",
            Cause::SubscriberAbsent => "subscriber absent",
            Cause::TemporaryFailure => "temporary failure",
            Cause::RecoveryOnTimerExpiry => "recovery on timer expiry",
        };
        f.write_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q850_roundtrip_all() {
        for c in Cause::ALL {
            assert_eq!(Cause::from_q850(c.q850_value()), Some(c), "cause {c}");
        }
    }

    #[test]
    fn q850_values_unique() {
        let mut vals: Vec<u8> = Cause::ALL.iter().map(|c| c.q850_value()).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), Cause::ALL.len());
    }

    #[test]
    fn unknown_q850_is_none() {
        assert_eq!(Cause::from_q850(255), None);
        assert_eq!(Cause::from_q850(0), None);
    }

    #[test]
    fn normality() {
        assert!(Cause::NormalClearing.is_normal());
        assert!(!Cause::UserBusy.is_normal());
    }

    #[test]
    fn display_no_trailing_period_and_nonempty() {
        for c in Cause::ALL {
            let s = c.to_string();
            assert!(!s.ends_with('.'));
            assert!(!s.is_empty());
        }
    }
}
