//! # vgprs-wire — identities and protocol PDUs
//!
//! Everything the vGPRS reproduction puts on a wire lives here:
//!
//! * typed identities ([`Imsi`], [`Msisdn`], [`Tmsi`], [`Lai`], [`Teid`],
//!   [`Nsapi`], [`Cic`], …),
//! * GSM 04.08 signaling content ([`Dtap`]) shared by the Um/Abis/A
//!   interfaces,
//! * MAP operations ([`MapMessage`]) for the SS7 interfaces,
//! * GPRS mobility/session management ([`GmmMessage`]) and GTP
//!   ([`GtpMessage`], with an exact GSM 09.60 v0 header codec),
//! * H.225 RAS ([`RasMessage`]) and Q.931 call signaling
//!   ([`Q931Message`], with a TLV codec),
//! * ISUP trunk signaling ([`IsupMessage`], with a codec),
//! * RTP media packets ([`RtpPacket`], with the 12-byte header codec),
//! * the [`Message`] union that `vgprs_sim::Network` carries.
//!
//! Labels reproduce the paper's message names (`Um_Location_Update_Request`,
//! `MAP_Insert_Subs_Data`, `RAS_ARQ`, `Q931_Setup`, …) so recorded traces
//! can be compared one-to-one with Figures 4–6 of the paper.
//!
//! ## Example
//!
//! ```rust
//! use vgprs_wire::{Dtap, Message, Msisdn, CallId};
//!
//! let called: Msisdn = "85291234567".parse()?;
//! let setup = Message::um(Dtap::Setup { call: CallId(1), called });
//! assert_eq!(setup.label_str(), "Um_Setup");
//! # Ok::<(), vgprs_wire::ParseIdError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cause;
mod command;
mod dtap;
mod gmm;
mod gtp;
mod ids;
mod ip;
mod isup;
mod map;
mod message;
mod q931;
mod qos;
mod ras;
mod rtp;
mod subscriber;

pub use cause::Cause;
pub use command::Command;
pub use dtap::Dtap;
pub use gmm::GmmMessage;
pub use gtp::{DecodeGtpError, GtpHeader, GtpMessage, GtpMsgType};
pub use ids::{
    AuthTriplet, CallId, CellId, Cic, ConnRef, Crv, Imsi, Ipv4Addr, Lai, MsIdentity, Msisdn, Nsapi,
    ParseIdError, PointCode, Teid, Tmsi, TransportAddr,
};
pub use ip::{IpPacket, IpPayload};
pub use isup::{DecodeIsupError, IsupKind, IsupMessage};
pub use map::{DecodeMapError, MapMessage};
pub use message::Message;
pub use q931::{DecodeQ931Error, Q931Kind, Q931Message};
pub use qos::{DelayClass, PeakThroughputClass, Precedence, QosProfile, ReliabilityClass};
pub use ras::RasMessage;
pub use rtp::{DecodeRtpError, RtpPacket, PAYLOAD_TYPE_GSM};
pub use subscriber::SubscriberProfile;
