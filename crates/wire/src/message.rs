//! The union message type carried by the simulated network.

use vgprs_sim::Payload;

use crate::command::Command;
use crate::dtap::Dtap;
use crate::gmm::GmmMessage;
use crate::gtp::GtpMessage;
use crate::ids::{CallId, ConnRef, Imsi, Nsapi};
use crate::ip::IpPacket;
use crate::isup::IsupMessage;
use crate::map::MapMessage;

/// Every protocol data unit the reproduction's networks exchange.
///
/// The variant selects the protocol family; the enclosing
/// [`Interface`](vgprs_sim::Interface) (recorded per link) tells *where* it
/// traveled. Labels reproduce the paper's message names so traces read
/// like Figures 4–6.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// GSM 04.08 signaling on the air interface (each MS has a dedicated
    /// radio link, so no multiplexing reference is needed).
    Um(Dtap),
    /// The same signaling relayed on the BTS–BSC link, keyed by the MS's
    /// connection reference.
    Abis {
        /// Transaction connection reference.
        conn: ConnRef,
        /// Signaling content.
        dtap: Dtap,
    },
    /// The same signaling relayed on the BSC–MSC link (BSSAP over SCCP).
    A {
        /// Transaction connection reference.
        conn: ConnRef,
        /// Signaling content.
        dtap: Dtap,
    },
    /// MAP operation on an SS7 interface (B/C/D/E/Gr).
    Map(MapMessage),
    /// GPRS mobility/session management on Gb.
    Gmm(GmmMessage),
    /// GTP signaling or tunneled user plane on Gn.
    Gtp(GtpMessage),
    /// LLC-framed user-plane IP packet on Gb (endpoint ↔ SGSN).
    Llc {
        /// Subscriber the LLC link belongs to.
        imsi: Imsi,
        /// PDP context the packet uses.
        nsapi: Nsapi,
        /// The IP packet inside.
        inner: Box<IpPacket>,
    },
    /// A plain IP packet on a LAN/Gi segment.
    Ip(IpPacket),
    /// ISUP trunk signaling between switches.
    Isup(IsupMessage),
    /// One voice frame on an established circuit trunk (bearer plane).
    TrunkVoice {
        /// The circuit carrying the frame (identifies the trunk leg when
        /// several legs of one call touch the same switch).
        cic: crate::ids::Cic,
        /// Call occupying the circuit.
        call: CallId,
        /// Frame sequence number.
        seq: u32,
        /// Frame creation time (simulated microseconds).
        origin_us: u64,
    },
    /// Scenario-driver command (arrives over `Interface::Internal`).
    Cmd(Command),
}

impl Message {
    /// The message's trace label.
    pub fn label_str(&self) -> String {
        match self {
            Message::Um(d) => format!("Um_{}", d.name(true)),
            Message::Abis { dtap, .. } => format!("Abis_{}", dtap.name(false)),
            Message::A { dtap, .. } => format!("A_{}", dtap.name(false)),
            Message::Map(m) => m.label().to_owned(),
            Message::Gmm(m) => m.label().to_owned(),
            Message::Gtp(m) => m.label(),
            Message::Llc { inner, .. } => format!("LLC:{}", inner.label()),
            Message::Ip(p) => p.label(),
            Message::Isup(m) => m.label().to_owned(),
            Message::TrunkVoice { .. } => "Trunk_Voice".to_owned(),
            Message::Cmd(c) => c.label().to_owned(),
        }
    }

    /// True for bearer-plane (media) traffic, which is excluded from
    /// signaling traces but still counted in statistics.
    pub fn is_media(&self) -> bool {
        match self {
            Message::Um(d) | Message::Abis { dtap: d, .. } | Message::A { dtap: d, .. } => {
                d.is_media()
            }
            Message::Gtp(GtpMessage::TPdu { inner, .. }) => inner.is_media(),
            Message::Llc { inner, .. } => inner.payload.is_media(),
            Message::Ip(p) => p.payload.is_media(),
            Message::TrunkVoice { .. } => true,
            _ => false,
        }
    }

    /// Convenience constructor for air-interface signaling.
    pub fn um(d: Dtap) -> Self {
        Message::Um(d)
    }

    /// Convenience constructor for Abis signaling.
    pub fn abis(conn: ConnRef, d: Dtap) -> Self {
        Message::Abis { conn, dtap: d }
    }

    /// Convenience constructor for A-interface signaling.
    pub fn a(conn: ConnRef, d: Dtap) -> Self {
        Message::A { conn, dtap: d }
    }

    /// The DTAP content, if this is a Um/Abis/A message.
    pub fn dtap(&self) -> Option<&Dtap> {
        match self {
            Message::Um(d) | Message::Abis { dtap: d, .. } | Message::A { dtap: d, .. } => Some(d),
            _ => None,
        }
    }

    /// The connection reference, if this is an Abis/A message.
    pub fn conn(&self) -> Option<ConnRef> {
        match self {
            Message::Abis { conn, .. } | Message::A { conn, .. } => Some(*conn),
            _ => None,
        }
    }
}

impl Payload for Message {
    fn label(&self) -> String {
        self.label_str()
    }

    fn wire_size(&self) -> usize {
        match self {
            Message::Um(d) | Message::Abis { dtap: d, .. } | Message::A { dtap: d, .. } => {
                d.wire_size() + 6
            }
            Message::Map(_) => 48,
            Message::Gmm(_) => 32,
            Message::Gtp(g) => {
                20 + match g {
                    GtpMessage::TPdu { inner, .. } => inner.wire_size(),
                    _ => 24,
                }
            }
            Message::Llc { inner, .. } => 6 + inner.wire_size(),
            Message::Ip(p) => p.wire_size(),
            Message::Isup(m) => m.encode().len() + 5,
            Message::TrunkVoice { .. } => 40,
            Message::Cmd(_) => 1,
        }
    }

    fn traceable(&self) -> bool {
        !self.is_media()
    }

    /// Signaling rides TCP/SS7 (retransmitted ⇒ modeled reliable);
    /// bearer frames ride UDP/RTP or raw circuits and really drop.
    fn reliable(&self) -> bool {
        !self.is_media()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cause::Cause;
    use crate::ids::{Ipv4Addr, Lai, MsIdentity, Msisdn, Teid, TransportAddr};
    use crate::ip::IpPayload;
    use crate::ras::RasMessage;
    use crate::rtp::RtpPacket;

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    fn msisdn() -> Msisdn {
        Msisdn::parse("88612345678").unwrap()
    }

    #[test]
    fn interface_prefixed_labels() {
        let lu = Dtap::LocationUpdateRequest {
            identity: MsIdentity::Imsi(imsi()),
            lai: Lai::new(466, 92, 1),
        };
        assert_eq!(
            Message::um(lu.clone()).label_str(),
            "Um_Location_Update_Request"
        );
        assert_eq!(
            Message::abis(ConnRef(1), lu.clone()).label_str(),
            "Abis_Location_Update"
        );
        assert_eq!(Message::a(ConnRef(1), lu).label_str(), "A_Location_Update");
        assert_eq!(
            Message::um(Dtap::Setup {
                call: CallId(1),
                called: msisdn()
            })
            .label_str(),
            "Um_Setup"
        );
    }

    fn rtp_ip() -> IpPacket {
        IpPacket::new(
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 30_000),
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 2), 30_000),
            IpPayload::Rtp(RtpPacket {
                ssrc: 0,
                seq: 0,
                timestamp: 0,
                payload_type: 3,
                marker: false,
                payload_len: 33,
                call: CallId(1),
                origin_us: 0,
            }),
        )
    }

    #[test]
    fn media_not_traceable_at_any_layer() {
        let vf = Message::um(Dtap::VoiceFrame {
            call: CallId(1),
            seq: 0,
            origin_us: 0,
        });
        assert!(!vf.traceable());
        let ip = Message::Ip(rtp_ip());
        assert!(!ip.traceable());
        let llc = Message::Llc {
            imsi: imsi(),
            nsapi: Nsapi::new(6).unwrap(),
            inner: Box::new(rtp_ip()),
        };
        assert!(!llc.traceable());
        let gtp = Message::Gtp(GtpMessage::TPdu {
            teid: Teid(1),
            inner: Box::new(Message::Ip(rtp_ip())),
        });
        assert!(!gtp.traceable());
        let tv = Message::TrunkVoice {
            cic: crate::ids::Cic(1),
            call: CallId(1),
            seq: 0,
            origin_us: 0,
        };
        assert!(!tv.traceable());
    }

    #[test]
    fn signaling_is_traceable() {
        let ras = Message::Ip(IpPacket::new(
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 1719),
            TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 2), 1719),
            IpPayload::Ras(RasMessage::Rcf { alias: msisdn() }),
        ));
        assert!(ras.traceable());
        assert_eq!(ras.label_str(), "RAS_RCF");
    }

    #[test]
    fn tunneled_label_nests() {
        let gtp = Message::Gtp(GtpMessage::TPdu {
            teid: Teid(5),
            inner: Box::new(Message::Ip(IpPacket::new(
                TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 1719),
                TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 2), 1719),
                IpPayload::Ras(RasMessage::Rcf { alias: msisdn() }),
            ))),
        });
        assert_eq!(gtp.label_str(), "GTP:RAS_RCF");
    }

    #[test]
    fn llc_label_nests() {
        let llc = Message::Llc {
            imsi: imsi(),
            nsapi: Nsapi::new(5).unwrap(),
            inner: Box::new(IpPacket::new(
                TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 1719),
                TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 2), 1719),
                IpPayload::Ras(RasMessage::Rcf { alias: msisdn() }),
            )),
        };
        assert_eq!(llc.label_str(), "LLC:RAS_RCF");
    }

    #[test]
    fn dtap_accessor() {
        let m = Message::a(ConnRef(3), Dtap::Alerting { call: CallId(2) });
        assert_eq!(m.conn(), Some(ConnRef(3)));
        assert_eq!(m.dtap(), Some(&Dtap::Alerting { call: CallId(2) }));
        assert_eq!(
            Message::Isup(IsupMessage {
                cic: crate::ids::Cic(1),
                call: CallId(1),
                kind: crate::isup::IsupKind::Rel {
                    cause: Cause::NormalClearing
                },
            })
            .dtap(),
            None
        );
    }

    #[test]
    fn wire_sizes_plausible() {
        let cmd = Message::Cmd(Command::PowerOn);
        assert_eq!(cmd.wire_size(), 1);
        let voice = Message::um(Dtap::VoiceFrame {
            call: CallId(1),
            seq: 0,
            origin_us: 0,
        });
        assert!(voice.wire_size() >= 40);
        let gtp_sig = Message::Gtp(GtpMessage::DeletePdpRequest {
            imsi: imsi(),
            nsapi: Nsapi::new(5).unwrap(),
        });
        assert_eq!(gtp_sig.wire_size(), 44);
    }
}
