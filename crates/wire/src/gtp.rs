//! GPRS Tunnelling Protocol (GTP v0, GSM 09.60) — signaling between SGSN
//! and GGSN over Gn, plus user-plane encapsulation (T-PDU).
//!
//! The 20-byte version-0 header is encoded and decoded exactly as the
//! specification lays it out; round-trip property tests live in
//! `tests/codec_roundtrip.rs` of this crate.


use crate::cause::Cause;
use crate::ids::{Imsi, Ipv4Addr, Nsapi, Teid};
use crate::message::Message;
use crate::qos::QosProfile;

/// GTP v0 message types (GSM 09.60 §7.1, table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum GtpMsgType {
    /// Path keep-alive request.
    EchoRequest = 1,
    /// Path keep-alive response.
    EchoResponse = 2,
    /// Tunnel creation request.
    CreatePdpContextRequest = 16,
    /// Tunnel creation response.
    CreatePdpContextResponse = 17,
    /// Tunnel modification request (e.g. SGSN change).
    UpdatePdpContextRequest = 18,
    /// Tunnel modification response.
    UpdatePdpContextResponse = 19,
    /// Tunnel deletion request.
    DeletePdpContextRequest = 20,
    /// Tunnel deletion response.
    DeletePdpContextResponse = 21,
    /// Network-requested activation (GGSN → SGSN) for static addresses.
    PduNotificationRequest = 27,
    /// Response to a PDU notification.
    PduNotificationResponse = 28,
    /// Encapsulated user-plane packet.
    TPdu = 255,
}

impl GtpMsgType {
    /// Decodes a wire value.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => GtpMsgType::EchoRequest,
            2 => GtpMsgType::EchoResponse,
            16 => GtpMsgType::CreatePdpContextRequest,
            17 => GtpMsgType::CreatePdpContextResponse,
            18 => GtpMsgType::UpdatePdpContextRequest,
            19 => GtpMsgType::UpdatePdpContextResponse,
            20 => GtpMsgType::DeletePdpContextRequest,
            21 => GtpMsgType::DeletePdpContextResponse,
            27 => GtpMsgType::PduNotificationRequest,
            28 => GtpMsgType::PduNotificationResponse,
            255 => GtpMsgType::TPdu,
            _ => return None,
        })
    }
}

/// Errors from [`GtpHeader::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeGtpError {
    /// Fewer than 20 bytes of input.
    Truncated {
        /// Bytes actually available.
        got: usize,
    },
    /// Version field was not 0.
    BadVersion(u8),
    /// Unknown message type byte.
    UnknownType(u8),
}

impl std::fmt::Display for DecodeGtpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeGtpError::Truncated { got } => {
                write!(f, "GTP header truncated: {got} of 20 bytes")
            }
            DecodeGtpError::BadVersion(v) => write!(f, "unsupported GTP version {v}"),
            DecodeGtpError::UnknownType(t) => write!(f, "unknown GTP message type {t}"),
        }
    }
}

impl std::error::Error for DecodeGtpError {}

/// The fixed GTP v0 header (20 bytes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GtpHeader {
    /// Message type.
    pub msg_type: GtpMsgType,
    /// Payload length in bytes (excluding this header).
    pub length: u16,
    /// Sequence number for signaling reliability.
    pub seq: u16,
    /// Flow label identifying the tunnel flow.
    pub flow: u16,
    /// Tunnel identifier (TID).
    pub tid: u64,
}

impl GtpHeader {
    /// Encoded size of the v0 header.
    pub const SIZE: usize = 20;

    /// Encodes the header into its 20-byte wire form.
    pub fn encode(&self) -> [u8; Self::SIZE] {
        let mut b = [0u8; Self::SIZE];
        // version 0 (3 bits) | PT=1 (GTP) | spare '111' | SNN=0
        b[0] = 0b0001_1110;
        b[1] = self.msg_type as u8;
        b[2..4].copy_from_slice(&self.length.to_be_bytes());
        b[4..6].copy_from_slice(&self.seq.to_be_bytes());
        b[6..8].copy_from_slice(&self.flow.to_be_bytes());
        b[8] = 0; // SNDCP N-PDU number (unused)
        b[9] = 0xFF;
        b[10] = 0xFF;
        b[11] = 0xFF;
        b[12..20].copy_from_slice(&self.tid.to_be_bytes());
        b
    }

    /// Decodes a header from the front of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeGtpError`] on truncated input, a non-zero version,
    /// or an unknown message type.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeGtpError> {
        if bytes.len() < Self::SIZE {
            return Err(DecodeGtpError::Truncated { got: bytes.len() });
        }
        let version = bytes[0] >> 5;
        if version != 0 {
            return Err(DecodeGtpError::BadVersion(version));
        }
        let msg_type =
            GtpMsgType::from_u8(bytes[1]).ok_or(DecodeGtpError::UnknownType(bytes[1]))?;
        Ok(GtpHeader {
            msg_type,
            length: u16::from_be_bytes([bytes[2], bytes[3]]),
            seq: u16::from_be_bytes([bytes[4], bytes[5]]),
            flow: u16::from_be_bytes([bytes[6], bytes[7]]),
            tid: u64::from_be_bytes(bytes[12..20].try_into().expect("length checked")),
        })
    }
}

/// A GTP message as exchanged between SGSN and GGSN.
#[derive(Clone, Debug, PartialEq)]
pub enum GtpMessage {
    /// SGSN → GGSN: create a tunnel for a PDP context.
    CreatePdpRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Context being created.
        nsapi: Nsapi,
        /// Requested QoS.
        qos: QosProfile,
        /// Requested static address, or `None` for dynamic allocation.
        static_addr: Option<Ipv4Addr>,
        /// Tunnel endpoint the SGSN listens on for downlink.
        sgsn_teid: Teid,
    },
    /// GGSN → SGSN: tunnel created.
    CreatePdpResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
        /// Outcome: allocated address + GGSN tunnel endpoint, or cause.
        result: Result<(Ipv4Addr, Teid, QosProfile), Cause>,
    },
    /// SGSN → GGSN: move an existing tunnel to a new SGSN endpoint
    /// (inter-SGSN routing-area update).
    UpdatePdpRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
        /// New SGSN-side tunnel endpoint.
        sgsn_teid: Teid,
    },
    /// GGSN → SGSN: tunnel updated.
    UpdatePdpResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
        /// `None` if updated, otherwise the failure cause.
        rejection: Option<Cause>,
    },
    /// SGSN → GGSN: delete a tunnel.
    DeletePdpRequest {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
    },
    /// GGSN → SGSN: tunnel deleted.
    DeletePdpResponse {
        /// Subscriber.
        imsi: Imsi,
        /// Context.
        nsapi: Nsapi,
    },
    /// GGSN → SGSN: downlink traffic arrived for a static PDP address with
    /// no active context; please activate (TR 22.973 termination path).
    PduNotificationRequest {
        /// Subscriber owning the static address.
        imsi: Imsi,
        /// The static PDP address.
        addr: Ipv4Addr,
    },
    /// SGSN → GGSN: notification accepted; activation in progress.
    PduNotificationResponse {
        /// Subscriber.
        imsi: Imsi,
    },
    /// An encapsulated user-plane packet traversing the tunnel.
    TPdu {
        /// Tunnel endpoint of the receiver.
        teid: Teid,
        /// The encapsulated packet (an IP packet in this reproduction).
        inner: Box<Message>,
    },
}

impl GtpMessage {
    /// Trace label. Tunneled packets keep their inner label, prefixed with
    /// `GTP:` to show the encapsulation the paper's Figure 3 describes.
    pub fn label(&self) -> String {
        match self {
            GtpMessage::CreatePdpRequest { .. } => "GTP_Create_PDP_Context_Request".into(),
            GtpMessage::CreatePdpResponse { .. } => "GTP_Create_PDP_Context_Response".into(),
            GtpMessage::UpdatePdpRequest { .. } => "GTP_Update_PDP_Context_Request".into(),
            GtpMessage::UpdatePdpResponse { .. } => "GTP_Update_PDP_Context_Response".into(),
            GtpMessage::DeletePdpRequest { .. } => "GTP_Delete_PDP_Context_Request".into(),
            GtpMessage::DeletePdpResponse { .. } => "GTP_Delete_PDP_Context_Response".into(),
            GtpMessage::PduNotificationRequest { .. } => "GTP_PDU_Notification_Request".into(),
            GtpMessage::PduNotificationResponse { .. } => "GTP_PDU_Notification_Response".into(),
            GtpMessage::TPdu { inner, .. } => format!("GTP:{}", inner.label_str()),
        }
    }

    /// The wire message type this variant maps to.
    pub fn msg_type(&self) -> GtpMsgType {
        match self {
            GtpMessage::CreatePdpRequest { .. } => GtpMsgType::CreatePdpContextRequest,
            GtpMessage::CreatePdpResponse { .. } => GtpMsgType::CreatePdpContextResponse,
            GtpMessage::UpdatePdpRequest { .. } => GtpMsgType::UpdatePdpContextRequest,
            GtpMessage::UpdatePdpResponse { .. } => GtpMsgType::UpdatePdpContextResponse,
            GtpMessage::DeletePdpRequest { .. } => GtpMsgType::DeletePdpContextRequest,
            GtpMessage::DeletePdpResponse { .. } => GtpMsgType::DeletePdpContextResponse,
            GtpMessage::PduNotificationRequest { .. } => GtpMsgType::PduNotificationRequest,
            GtpMessage::PduNotificationResponse { .. } => GtpMsgType::PduNotificationResponse,
            GtpMessage::TPdu { .. } => GtpMsgType::TPdu,
        }
    }

    /// True for encapsulated user-plane traffic.
    pub fn is_user_plane(&self) -> bool {
        matches!(self, GtpMessage::TPdu { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = GtpHeader {
            msg_type: GtpMsgType::CreatePdpContextRequest,
            length: 44,
            seq: 1234,
            flow: 7,
            tid: 0x1122_3344_5566_7788,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), GtpHeader::SIZE);
        assert_eq!(GtpHeader::decode(&bytes).unwrap(), h);
    }

    #[test]
    fn header_flags_byte() {
        let h = GtpHeader {
            msg_type: GtpMsgType::TPdu,
            length: 0,
            seq: 0,
            flow: 0,
            tid: 0,
        };
        let b = h.encode();
        assert_eq!(b[0] >> 5, 0, "version 0");
        assert_eq!((b[0] >> 4) & 1, 1, "protocol type GTP");
        assert_eq!(b[1], 255);
        assert_eq!(&b[9..12], &[0xFF, 0xFF, 0xFF], "spare bytes");
    }

    #[test]
    fn decode_rejects_truncated() {
        assert_eq!(
            GtpHeader::decode(&[0; 10]),
            Err(DecodeGtpError::Truncated { got: 10 })
        );
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut b = GtpHeader {
            msg_type: GtpMsgType::EchoRequest,
            length: 0,
            seq: 0,
            flow: 0,
            tid: 0,
        }
        .encode();
        b[0] = 0b0011_1110; // version 1
        assert_eq!(GtpHeader::decode(&b), Err(DecodeGtpError::BadVersion(1)));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut b = GtpHeader {
            msg_type: GtpMsgType::EchoRequest,
            length: 0,
            seq: 0,
            flow: 0,
            tid: 0,
        }
        .encode();
        b[1] = 99;
        assert_eq!(GtpHeader::decode(&b), Err(DecodeGtpError::UnknownType(99)));
    }

    #[test]
    fn msg_type_values_roundtrip() {
        for t in [
            GtpMsgType::EchoRequest,
            GtpMsgType::EchoResponse,
            GtpMsgType::CreatePdpContextRequest,
            GtpMsgType::CreatePdpContextResponse,
            GtpMsgType::UpdatePdpContextRequest,
            GtpMsgType::UpdatePdpContextResponse,
            GtpMsgType::DeletePdpContextRequest,
            GtpMsgType::DeletePdpContextResponse,
            GtpMsgType::PduNotificationRequest,
            GtpMsgType::PduNotificationResponse,
            GtpMsgType::TPdu,
        ] {
            assert_eq!(GtpMsgType::from_u8(t as u8), Some(t));
        }
        assert_eq!(GtpMsgType::from_u8(3), None);
    }

    #[test]
    fn error_display() {
        assert!(DecodeGtpError::Truncated { got: 3 }
            .to_string()
            .contains("3 of 20"));
        assert!(DecodeGtpError::BadVersion(2).to_string().contains('2'));
    }
}
