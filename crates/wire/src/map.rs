//! GSM Mobile Application Part (MAP, GSM 09.02) operations.
//!
//! MAP runs over SS7 between the switching and database elements: MSC/VMSC
//! ↔ VLR (B), MSC/VMSC ↔ HLR (C), VLR ↔ HLR (D), MSC ↔ MSC (E) and
//! SGSN ↔ HLR (Gr). Labels follow the paper's `MAP_…` spelling exactly so
//! the reproduced ladders read like Figures 4–6.


use crate::cause::Cause;
use crate::ids::{
    AuthTriplet, CallId, CellId, Cic, ConnRef, Imsi, Lai, MsIdentity, Msisdn, PointCode, Tmsi,
};
use crate::subscriber::SubscriberProfile;

/// A MAP operation (invoke or result) as carried over an SS7 interface.
#[derive(Clone, Debug, PartialEq)]
pub enum MapMessage {
    /// MSC/VMSC → VLR: register the MS in this location area (step 1.1).
    UpdateLocationArea {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Identity the MS registered with.
        identity: MsIdentity,
        /// The new location area.
        lai: Lai,
    },
    /// VLR → MSC/VMSC: registration succeeded (step 1.2 end).
    UpdateLocationAreaAck {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Resolved permanent identity.
        imsi: Imsi,
        /// Freshly allocated TMSI, if the VLR chose to assign one.
        tmsi: Option<Tmsi>,
        /// The subscriber's MSISDN from the downloaded profile. The VMSC
        /// registers this as the H.323 alias (paper step 1.4).
        msisdn: Option<Msisdn>,
    },
    /// VLR → MSC/VMSC: registration failed.
    UpdateLocationAreaReject {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Identity that failed.
        identity: MsIdentity,
        /// Failure cause.
        cause: Cause,
    },
    /// MSC/VMSC → VLR: an MS wants service (call origination / paging
    /// response); authenticate and cipher it (GSM 09.02 Process Access
    /// Request).
    ProcessAccessRequest {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Requesting identity.
        identity: MsIdentity,
    },
    /// VLR → MSC/VMSC: access request verdict.
    ProcessAccessRequestAck {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Resolved subscriber (valid when accepted).
        imsi: Imsi,
        /// `None` if accepted, otherwise why not.
        rejection: Option<Cause>,
    },
    /// VLR → HLR: request authentication vectors for the subscriber.
    SendAuthenticationInfo {
        /// Subscriber.
        imsi: Imsi,
    },
    /// HLR → VLR: authentication vectors.
    SendAuthenticationInfoAck {
        /// Subscriber.
        imsi: Imsi,
        /// One or more (RAND, SRES, Kc) triplets.
        triplets: Vec<AuthTriplet>,
    },
    /// VLR → HLR: the subscriber is now served by this VLR (step 1.2).
    UpdateLocation {
        /// Subscriber.
        imsi: Imsi,
        /// The registering VLR's address.
        vlr: PointCode,
    },
    /// HLR → VLR: location update accepted.
    UpdateLocationAck {
        /// Subscriber.
        imsi: Imsi,
    },
    /// HLR → VLR: location update refused (unknown subscriber, …).
    UpdateLocationReject {
        /// Subscriber.
        imsi: Imsi,
        /// Why.
        cause: Cause,
    },
    /// HLR → VLR: download of the subscription profile (step 1.2).
    InsertSubsData {
        /// Subscriber.
        imsi: Imsi,
        /// Profile copied into the VLR.
        profile: SubscriberProfile,
    },
    /// VLR → HLR: profile stored.
    InsertSubsDataAck {
        /// Subscriber.
        imsi: Imsi,
    },
    /// VLR → MSC/VMSC: run the radio authentication exchange with this
    /// challenge (the MSC owns the A interface; the VLR owns the triplets).
    Authenticate {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Subscriber being authenticated.
        imsi: Imsi,
        /// Challenge from the triplet.
        rand: u64,
    },
    /// MSC/VMSC → VLR: the MS's signed response.
    AuthenticateAck {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Subscriber.
        imsi: Imsi,
        /// SRES received over the air.
        sres: u32,
    },
    /// VLR → MSC/VMSC: start ciphering on the radio path (paper step 1.2:
    /// "the VLR then sets up the standard GSM ciphering with the MS").
    StartCiphering {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Subscriber.
        imsi: Imsi,
    },
    /// MSC/VMSC → VLR: ciphering is active.
    StartCipheringAck {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Subscriber.
        imsi: Imsi,
    },
    /// MSC/VMSC → VLR: an IAM arrived for this roaming number; whose is it?
    SendInfoForIncomingCall {
        /// The MSRN the call was routed with.
        msrn: Msisdn,
    },
    /// VLR → MSC/VMSC: the subscriber behind the roaming number.
    SendInfoForIncomingCallAck {
        /// The queried MSRN.
        msrn: Msisdn,
        /// Resolved subscriber, or why resolution failed.
        subscriber: Result<Imsi, Cause>,
    },
    /// SGSN → HLR (Gr): the subscriber attached to GPRS here.
    UpdateGprsLocation {
        /// Subscriber.
        imsi: Imsi,
        /// The registering SGSN.
        sgsn: PointCode,
    },
    /// HLR → SGSN: GPRS attach authorized (or not).
    UpdateGprsLocationAck {
        /// Subscriber.
        imsi: Imsi,
        /// `None` if authorized, otherwise the failure cause.
        rejection: Option<Cause>,
    },
    /// HLR → old VLR: purge the record after the MS moved elsewhere.
    CancelLocation {
        /// Subscriber.
        imsi: Imsi,
    },
    /// VLR → MSC/VMSC: drop all state for a cancelled subscriber. The
    /// VMSC uses this to deactivate the leftover signaling PDP context
    /// and unregister the stale gatekeeper alias; a classic MSC (which
    /// keeps no per-subscriber state) ignores it.
    PurgeMs {
        /// Subscriber to forget.
        imsi: Imsi,
    },
    /// Old VLR → HLR: record purged.
    CancelLocationAck {
        /// Subscriber.
        imsi: Imsi,
    },
    /// MSC/VMSC → VLR: authorize an outgoing call (step 2.2).
    SendInfoForOutgoingCall {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Calling subscriber.
        imsi: Imsi,
        /// Dialed number.
        called: Msisdn,
        /// Whether the dialed number is international relative to the
        /// serving network.
        international: bool,
    },
    /// VLR → MSC/VMSC: authorization verdict.
    SendInfoForOutgoingCallAck {
        /// Radio connection this dialogue belongs to.
        conn: ConnRef,
        /// Calling subscriber.
        imsi: Imsi,
        /// The caller's MSISDN from the profile (presented to the called
        /// party), when authorized.
        msisdn: Option<Msisdn>,
        /// `None` if allowed, otherwise why not.
        rejection: Option<Cause>,
    },
    /// GMSC → HLR: where is this subscriber? (GSM call delivery.)
    SendRoutingInformation {
        /// Dialed number.
        msisdn: Msisdn,
    },
    /// HLR → GMSC: roaming number to route the call to.
    SendRoutingInformationAck {
        /// Dialed number the query was for.
        msisdn: Msisdn,
        /// Mobile Station Roaming Number at the visited MSC, on success.
        msrn: Result<Msisdn, Cause>,
    },
    /// HLR → serving VLR: allocate a roaming number for call delivery.
    ProvideRoamingNumber {
        /// Subscriber being called.
        imsi: Imsi,
    },
    /// VLR → HLR: allocated roaming number.
    ProvideRoamingNumberAck {
        /// Subscriber being called.
        imsi: Imsi,
        /// Temporary routable number pointing at the serving MSC.
        msrn: Msisdn,
    },
    /// Anchor MSC → target MSC: prepare an inter-system handoff (paper §7).
    PrepareHandover {
        /// Call being handed off.
        call: CallId,
        /// Subscriber.
        imsi: Imsi,
        /// Target cell under the target MSC.
        cell: CellId,
    },
    /// Target MSC → anchor MSC: handoff prepared; circuit allocated.
    PrepareHandoverAck {
        /// Call being handed off.
        call: CallId,
        /// Inter-MSC circuit for the voice trunk.
        cic: Cic,
        /// Handover reference the MS must echo on the target cell.
        ho_ref: u32,
    },
    /// Target MSC → anchor MSC: the MS arrived on the target cell.
    SendEndSignal {
        /// Call that completed handoff.
        call: CallId,
    },
    /// Anchor MSC → target MSC: handoff bookkeeping complete.
    SendEndSignalAck {
        /// Call that completed handoff.
        call: CallId,
    },
}

impl MapMessage {
    /// The label used in traces; matches the paper's `MAP_…` spelling.
    pub fn label(&self) -> &'static str {
        match self {
            MapMessage::UpdateLocationArea { .. } => "MAP_Update_Location_Area",
            MapMessage::ProcessAccessRequest { .. } => "MAP_Process_Access_Request",
            MapMessage::ProcessAccessRequestAck { .. } => "MAP_Process_Access_Request_ack",
            MapMessage::UpdateLocationAreaAck { .. } => "MAP_Update_Location_Area_ack",
            MapMessage::UpdateLocationAreaReject { .. } => "MAP_Update_Location_Area_reject",
            MapMessage::SendAuthenticationInfo { .. } => "MAP_Send_Authentication_Info",
            MapMessage::SendAuthenticationInfoAck { .. } => "MAP_Send_Authentication_Info_ack",
            MapMessage::UpdateLocation { .. } => "MAP_Update_Location",
            MapMessage::UpdateLocationAck { .. } => "MAP_Update_Location_ack",
            MapMessage::UpdateLocationReject { .. } => "MAP_Update_Location_reject",
            MapMessage::InsertSubsData { .. } => "MAP_Insert_Subs_Data",
            MapMessage::InsertSubsDataAck { .. } => "MAP_Insert_Subs_Data_ack",
            MapMessage::Authenticate { .. } => "MAP_Authenticate",
            MapMessage::AuthenticateAck { .. } => "MAP_Authenticate_ack",
            MapMessage::StartCiphering { .. } => "MAP_Start_Ciphering",
            MapMessage::StartCipheringAck { .. } => "MAP_Start_Ciphering_ack",
            MapMessage::SendInfoForIncomingCall { .. } => "MAP_Send_Info_For_Incoming_Call",
            MapMessage::SendInfoForIncomingCallAck { .. } => {
                "MAP_Send_Info_For_Incoming_Call_ack"
            }
            MapMessage::UpdateGprsLocation { .. } => "MAP_Update_GPRS_Location",
            MapMessage::UpdateGprsLocationAck { .. } => "MAP_Update_GPRS_Location_ack",
            MapMessage::CancelLocation { .. } => "MAP_Cancel_Location",
            MapMessage::PurgeMs { .. } => "MAP_Purge_MS",
            MapMessage::CancelLocationAck { .. } => "MAP_Cancel_Location_ack",
            MapMessage::SendInfoForOutgoingCall { .. } => "MAP_Send_Info_For_Outgoing_Call",
            MapMessage::SendInfoForOutgoingCallAck { .. } => {
                "MAP_Send_Info_For_Outgoing_Call_ack"
            }
            MapMessage::SendRoutingInformation { .. } => "MAP_Send_Routing_Information",
            MapMessage::SendRoutingInformationAck { .. } => "MAP_Send_Routing_Information_ack",
            MapMessage::ProvideRoamingNumber { .. } => "MAP_Provide_Roaming_Number",
            MapMessage::ProvideRoamingNumberAck { .. } => "MAP_Provide_Roaming_Number_ack",
            MapMessage::PrepareHandover { .. } => "MAP_Prepare_Handover",
            MapMessage::PrepareHandoverAck { .. } => "MAP_Prepare_Handover_ack",
            MapMessage::SendEndSignal { .. } => "MAP_Send_End_Signal",
            MapMessage::SendEndSignalAck { .. } => "MAP_Send_End_Signal_ack",
        }
    }

    /// Encodes the inter-MSC handoff subset (the four E-interface
    /// operations of Figure 9) to wire form: operation code (1), call id
    /// (8), then operation-specific parameters. Result operations carry
    /// the invoke's GSM 09.02 code with the high bit set, mirroring the
    /// invoke/result pairing of a TCAP dialogue.
    ///
    /// Returns `None` for operations outside the handoff subset — those
    /// stay in-memory only (B/C/D/Gr dialogues never leave a shard).
    pub fn encode_handover(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(32);
        match self {
            MapMessage::PrepareHandover { call, imsi, cell } => {
                out.push(op::PREPARE_HANDOVER);
                out.extend_from_slice(&call.0.to_be_bytes());
                let digits = imsi.digits();
                out.push(digits.len() as u8);
                out.extend_from_slice(digits.as_bytes());
                out.extend_from_slice(&cell.0.to_be_bytes());
            }
            MapMessage::PrepareHandoverAck { call, cic, ho_ref } => {
                out.push(op::PREPARE_HANDOVER | op::RESULT);
                out.extend_from_slice(&call.0.to_be_bytes());
                out.extend_from_slice(&cic.0.to_be_bytes());
                out.extend_from_slice(&ho_ref.to_be_bytes());
            }
            MapMessage::SendEndSignal { call } => {
                out.push(op::SEND_END_SIGNAL);
                out.extend_from_slice(&call.0.to_be_bytes());
            }
            MapMessage::SendEndSignalAck { call } => {
                out.push(op::SEND_END_SIGNAL | op::RESULT);
                out.extend_from_slice(&call.0.to_be_bytes());
            }
            _ => return None,
        }
        Some(out)
    }

    /// Decodes a handoff-subset operation from wire form.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeMapError`] on malformed input.
    pub fn decode_handover(bytes: &[u8]) -> Result<Self, DecodeMapError> {
        if bytes.len() < 9 {
            return Err(DecodeMapError::Truncated);
        }
        let code = bytes[0];
        let call = CallId(u64::from_be_bytes(
            bytes[1..9].try_into().expect("length checked"),
        ));
        let rest = &bytes[9..];
        match code {
            op::PREPARE_HANDOVER => {
                let Some((&len, rest)) = rest.split_first() else {
                    return Err(DecodeMapError::Truncated);
                };
                let len = len as usize;
                if rest.len() < len {
                    return Err(DecodeMapError::Truncated);
                }
                let digits = std::str::from_utf8(&rest[..len])
                    .map_err(|_| DecodeMapError::BadParameter("imsi digits"))?;
                let imsi =
                    Imsi::parse(digits).map_err(|_| DecodeMapError::BadParameter("imsi digits"))?;
                let rest = &rest[len..];
                if rest.len() < 2 {
                    return Err(DecodeMapError::Truncated);
                }
                if rest.len() > 2 {
                    return Err(DecodeMapError::TrailingBytes(rest.len() - 2));
                }
                let cell = CellId(u16::from_be_bytes([rest[0], rest[1]]));
                Ok(MapMessage::PrepareHandover { call, imsi, cell })
            }
            code if code == op::PREPARE_HANDOVER | op::RESULT => {
                if rest.len() < 6 {
                    return Err(DecodeMapError::Truncated);
                }
                if rest.len() > 6 {
                    return Err(DecodeMapError::TrailingBytes(rest.len() - 6));
                }
                let cic = Cic(u16::from_be_bytes([rest[0], rest[1]]));
                let ho_ref =
                    u32::from_be_bytes(rest[2..6].try_into().expect("length checked"));
                Ok(MapMessage::PrepareHandoverAck { call, cic, ho_ref })
            }
            op::SEND_END_SIGNAL => {
                if !rest.is_empty() {
                    return Err(DecodeMapError::TrailingBytes(rest.len()));
                }
                Ok(MapMessage::SendEndSignal { call })
            }
            code if code == op::SEND_END_SIGNAL | op::RESULT => {
                if !rest.is_empty() {
                    return Err(DecodeMapError::TrailingBytes(rest.len()));
                }
                Ok(MapMessage::SendEndSignalAck { call })
            }
            other => Err(DecodeMapError::UnknownOperation(other)),
        }
    }

    /// True if this operation discloses the subscriber's IMSI to its
    /// receiver. The C4 experiment counts these per administrative domain
    /// to quantify the paper's confidentiality argument (Section 6).
    pub fn discloses_imsi(&self) -> bool {
        !matches!(
            self,
            MapMessage::UpdateLocationArea {
                identity: MsIdentity::Tmsi(_),
                ..
            } | MapMessage::UpdateLocationAreaReject {
                identity: MsIdentity::Tmsi(_),
                ..
            } | MapMessage::SendRoutingInformation { .. }
                | MapMessage::SendRoutingInformationAck { .. }
                | MapMessage::SendEndSignal { .. }
                | MapMessage::SendEndSignalAck { .. }
                | MapMessage::PrepareHandoverAck { .. }
                | MapMessage::SendInfoForIncomingCall { .. }
                | MapMessage::SendInfoForIncomingCallAck {
                    subscriber: Err(_),
                    ..
                }
        )
    }
}

/// GSM 09.02 operation codes for the handoff subset; results set the
/// high bit of the matching invoke.
mod op {
    pub const PREPARE_HANDOVER: u8 = 68;
    pub const SEND_END_SIGNAL: u8 = 29;
    pub const RESULT: u8 = 0x80;
}

/// Errors from [`MapMessage::decode_handover`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeMapError {
    /// Input ended early.
    Truncated,
    /// Operation code outside the handoff subset.
    UnknownOperation(u8),
    /// A parameter was malformed.
    BadParameter(&'static str),
    /// Extra bytes followed a complete operation.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeMapError::Truncated => write!(f, "MAP operation truncated"),
            DecodeMapError::UnknownOperation(c) => {
                write!(f, "unknown MAP operation code {c:#04x}")
            }
            DecodeMapError::BadParameter(p) => write!(f, "malformed MAP parameter: {p}"),
            DecodeMapError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after MAP operation")
            }
        }
    }
}

impl std::error::Error for DecodeMapError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    #[test]
    fn labels_match_paper_spelling() {
        let m = MapMessage::UpdateLocationArea {
            conn: ConnRef(1),
            identity: MsIdentity::Imsi(imsi()),
            lai: Lai::new(466, 92, 1),
        };
        assert_eq!(m.label(), "MAP_Update_Location_Area");
        assert_eq!(
            MapMessage::InsertSubsData {
                imsi: imsi(),
                profile: SubscriberProfile::full(Msisdn::parse("88612345678").unwrap()),
            }
            .label(),
            "MAP_Insert_Subs_Data"
        );
        assert_eq!(
            MapMessage::SendInfoForOutgoingCall {
                conn: ConnRef(1),
                imsi: imsi(),
                called: Msisdn::parse("88612345678").unwrap(),
                international: false,
            }
            .label(),
            "MAP_Send_Info_For_Outgoing_Call"
        );
    }

    #[test]
    fn imsi_disclosure_classification() {
        assert!(MapMessage::UpdateLocation {
            imsi: imsi(),
            vlr: PointCode(1)
        }
        .discloses_imsi());
        assert!(!MapMessage::SendRoutingInformation {
            msisdn: Msisdn::parse("88612345678").unwrap()
        }
        .discloses_imsi());
        // a TMSI-based location update hides the IMSI
        assert!(!MapMessage::UpdateLocationArea {
            conn: ConnRef(2),
            identity: MsIdentity::Tmsi(Tmsi(7)),
            lai: Lai::new(466, 92, 1),
        }
        .discloses_imsi());
        assert!(MapMessage::UpdateLocationArea {
            conn: ConnRef(2),
            identity: MsIdentity::Imsi(imsi()),
            lai: Lai::new(466, 92, 1),
        }
        .discloses_imsi());
    }

    #[test]
    fn ack_labels_lowercase_suffix() {
        assert_eq!(
            MapMessage::UpdateLocationAreaAck {
                conn: ConnRef(1),
                imsi: imsi(),
                tmsi: None,
                msisdn: None
            }
            .label(),
            "MAP_Update_Location_Area_ack"
        );
    }
}
