//! Q.931 call-signaling messages (as profiled by H.225.0), with a binary
//! TLV codec.
//!
//! H.323 carries Q.931 messages on the call-signaling channel; the paper's
//! Figures 5–6 are sequences of exactly these messages. The codec encodes
//! the subset the flows use: Setup, Call Proceeding, Alerting, Connect and
//! Release Complete, each with the information elements required by the
//! reproduction (numbers, cause, transport addresses, call correlation).


use crate::cause::Cause;
use crate::ids::{CallId, Crv, Ipv4Addr, Msisdn, TransportAddr};

/// Q.931 protocol discriminator for user-network call control.
const DISCRIMINATOR: u8 = 0x08;

/// IE identifiers used by the codec.
mod ie {
    /// Cause (Q.931 §4.5.12).
    pub const CAUSE: u8 = 0x08;
    /// Calling party number (§4.5.10).
    pub const CALLING: u8 = 0x6C;
    /// Called party number (§4.5.8).
    pub const CALLED: u8 = 0x70;
    /// User-user (§4.5.30) — carries the H.225 correlation (call id).
    pub const USER_USER: u8 = 0x7E;
    /// Locally assigned IE carrying an H.225 transport address.
    pub const TRANSPORT: u8 = 0x60;
}

/// The message-type dependent content.
#[derive(Clone, Debug, PartialEq)]
pub enum Q931Kind {
    /// Call establishment request (H.225 Setup with fast-connect media).
    Setup {
        /// Calling party, when presentable.
        calling: Option<Msisdn>,
        /// Called party.
        called: Msisdn,
        /// Where the caller listens for call signaling.
        signal_addr: TransportAddr,
        /// Where the caller wants RTP media delivered.
        media_addr: TransportAddr,
    },
    /// Enough routing information has been received (paper step 2.4).
    CallProceeding,
    /// The called user is being alerted (step 2.6).
    Alerting,
    /// The called user answered; carries the answerer's media address.
    Connect {
        /// Where the answerer wants RTP media delivered.
        media_addr: TransportAddr,
    },
    /// Call clearing (single-step H.225 release, paper step 3.2).
    ReleaseComplete {
        /// Clearing cause.
        cause: Cause,
    },
}

impl Q931Kind {
    /// Q.931 message-type octet.
    pub fn type_code(&self) -> u8 {
        match self {
            Q931Kind::Alerting => 0x01,
            Q931Kind::CallProceeding => 0x02,
            Q931Kind::Setup { .. } => 0x05,
            Q931Kind::Connect { .. } => 0x07,
            Q931Kind::ReleaseComplete { .. } => 0x5A,
        }
    }
}

/// A complete Q.931 message.
#[derive(Clone, Debug, PartialEq)]
pub struct Q931Message {
    /// Call reference value on this signaling interface.
    pub crv: Crv,
    /// Scenario-level call correlation id (carried in the user-user IE).
    pub call: CallId,
    /// Message content.
    pub kind: Q931Kind,
}

impl Q931Message {
    /// Trace label, e.g. `Q931_Setup`.
    pub fn label(&self) -> &'static str {
        match self.kind {
            Q931Kind::Setup { .. } => "Q931_Setup",
            Q931Kind::CallProceeding => "Q931_Call_Proceeding",
            Q931Kind::Alerting => "Q931_Alerting",
            Q931Kind::Connect { .. } => "Q931_Connect",
            Q931Kind::ReleaseComplete { .. } => "Q931_Release_Complete",
        }
    }

    /// Encodes the message into its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.push(DISCRIMINATOR);
        out.push(2); // call reference length
        out.extend_from_slice(&self.crv.0.to_be_bytes());
        out.push(self.kind.type_code());
        push_ie(&mut out, ie::USER_USER, &self.call.0.to_be_bytes());
        match &self.kind {
            Q931Kind::Setup {
                calling,
                called,
                signal_addr,
                media_addr,
            } => {
                if let Some(c) = calling {
                    push_number(&mut out, ie::CALLING, c);
                }
                push_number(&mut out, ie::CALLED, called);
                push_transport(&mut out, 1, signal_addr);
                push_transport(&mut out, 2, media_addr);
            }
            Q931Kind::Connect { media_addr } => {
                push_transport(&mut out, 2, media_addr);
            }
            Q931Kind::ReleaseComplete { cause } => {
                push_ie(&mut out, ie::CAUSE, &[0x80, 0x80 | cause.q850_value()]);
            }
            Q931Kind::CallProceeding | Q931Kind::Alerting => {}
        }
        out
    }

    /// Decodes a message from its wire form.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeQ931Error`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeQ931Error> {
        if bytes.len() < 5 {
            return Err(DecodeQ931Error::Truncated);
        }
        if bytes[0] != DISCRIMINATOR {
            return Err(DecodeQ931Error::BadDiscriminator(bytes[0]));
        }
        if bytes[1] != 2 {
            return Err(DecodeQ931Error::BadCallReference);
        }
        let crv = Crv(u16::from_be_bytes([bytes[2], bytes[3]]));
        let type_code = bytes[4];

        let mut calling = None;
        let mut called = None;
        let mut cause = None;
        let mut call = None;
        let mut signal_addr = None;
        let mut media_addr = None;

        let mut rest = &bytes[5..];
        while !rest.is_empty() {
            if rest.len() < 2 {
                return Err(DecodeQ931Error::Truncated);
            }
            let (id, len) = (rest[0], rest[1] as usize);
            if rest.len() < 2 + len {
                return Err(DecodeQ931Error::Truncated);
            }
            let body = &rest[2..2 + len];
            match id {
                ie::CALLING => calling = Some(parse_number(body)?),
                ie::CALLED => called = Some(parse_number(body)?),
                ie::CAUSE => {
                    if len != 2 {
                        return Err(DecodeQ931Error::BadIe("cause"));
                    }
                    cause = Some(
                        Cause::from_q850(body[1] & 0x7F)
                            .ok_or(DecodeQ931Error::BadIe("cause value"))?,
                    );
                }
                ie::USER_USER => {
                    if len != 8 {
                        return Err(DecodeQ931Error::BadIe("user-user"));
                    }
                    call = Some(CallId(u64::from_be_bytes(
                        body.try_into().expect("length checked"),
                    )));
                }
                ie::TRANSPORT => {
                    if len != 7 {
                        return Err(DecodeQ931Error::BadIe("transport"));
                    }
                    let addr = TransportAddr::new(
                        Ipv4Addr::from_octets(body[1], body[2], body[3], body[4]),
                        u16::from_be_bytes([body[5], body[6]]),
                    );
                    match body[0] {
                        1 => signal_addr = Some(addr),
                        2 => media_addr = Some(addr),
                        _ => return Err(DecodeQ931Error::BadIe("transport tag")),
                    }
                }
                _ => return Err(DecodeQ931Error::UnknownIe(id)),
            }
            rest = &rest[2 + len..];
        }

        let call = call.ok_or(DecodeQ931Error::MissingIe("user-user"))?;
        let kind = match type_code {
            0x05 => Q931Kind::Setup {
                calling,
                called: called.ok_or(DecodeQ931Error::MissingIe("called party"))?,
                signal_addr: signal_addr.ok_or(DecodeQ931Error::MissingIe("signal address"))?,
                media_addr: media_addr.ok_or(DecodeQ931Error::MissingIe("media address"))?,
            },
            0x02 => Q931Kind::CallProceeding,
            0x01 => Q931Kind::Alerting,
            0x07 => Q931Kind::Connect {
                media_addr: media_addr.ok_or(DecodeQ931Error::MissingIe("media address"))?,
            },
            0x5A => Q931Kind::ReleaseComplete {
                cause: cause.ok_or(DecodeQ931Error::MissingIe("cause"))?,
            },
            other => return Err(DecodeQ931Error::UnknownMessageType(other)),
        };
        Ok(Q931Message { crv, call, kind })
    }
}

fn push_ie(out: &mut Vec<u8>, id: u8, body: &[u8]) {
    debug_assert!(body.len() <= u8::MAX as usize);
    out.push(id);
    out.push(body.len() as u8);
    out.extend_from_slice(body);
}

fn push_number(out: &mut Vec<u8>, id: u8, number: &Msisdn) {
    let digits = number.digits();
    let mut body = Vec::with_capacity(1 + digits.len());
    body.push(0x81); // international number, ISDN plan
    body.extend_from_slice(digits.as_bytes());
    push_ie(out, id, &body);
}

fn push_transport(out: &mut Vec<u8>, tag: u8, addr: &TransportAddr) {
    let [a, b, c, d] = addr.ip.octets();
    let p = addr.port.to_be_bytes();
    push_ie(out, ie::TRANSPORT, &[tag, a, b, c, d, p[0], p[1]]);
}

fn parse_number(body: &[u8]) -> Result<Msisdn, DecodeQ931Error> {
    if body.len() < 2 {
        return Err(DecodeQ931Error::BadIe("number too short"));
    }
    let digits =
        std::str::from_utf8(&body[1..]).map_err(|_| DecodeQ931Error::BadIe("number digits"))?;
    Msisdn::parse(digits).map_err(|_| DecodeQ931Error::BadIe("number digits"))
}

/// Errors from [`Q931Message::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeQ931Error {
    /// Input ended before the structure was complete.
    Truncated,
    /// First octet was not the Q.931 discriminator.
    BadDiscriminator(u8),
    /// Call reference length was not the 2 bytes this profile uses.
    BadCallReference,
    /// Message-type octet not in the supported subset.
    UnknownMessageType(u8),
    /// An information element id the codec does not know.
    UnknownIe(u8),
    /// A required information element was absent.
    MissingIe(&'static str),
    /// An information element was present but malformed.
    BadIe(&'static str),
}

impl std::fmt::Display for DecodeQ931Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeQ931Error::Truncated => write!(f, "Q.931 message truncated"),
            DecodeQ931Error::BadDiscriminator(d) => {
                write!(f, "bad Q.931 protocol discriminator {d:#04x}")
            }
            DecodeQ931Error::BadCallReference => write!(f, "unsupported call reference length"),
            DecodeQ931Error::UnknownMessageType(t) => {
                write!(f, "unknown Q.931 message type {t:#04x}")
            }
            DecodeQ931Error::UnknownIe(id) => write!(f, "unknown information element {id:#04x}"),
            DecodeQ931Error::MissingIe(name) => write!(f, "missing information element: {name}"),
            DecodeQ931Error::BadIe(name) => write!(f, "malformed information element: {name}"),
        }
    }
}

impl std::error::Error for DecodeQ931Error {}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8, port: u16) -> TransportAddr {
        TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, last), port)
    }

    fn setup() -> Q931Message {
        Q931Message {
            crv: Crv(42),
            call: CallId(777),
            kind: Q931Kind::Setup {
                calling: Some(Msisdn::parse("88612345678").unwrap()),
                called: Msisdn::parse("85291234567").unwrap(),
                signal_addr: addr(5, 1720),
                media_addr: addr(5, 30_000),
            },
        }
    }

    #[test]
    fn setup_roundtrip() {
        let m = setup();
        assert_eq!(Q931Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn setup_without_calling_roundtrip() {
        let mut m = setup();
        if let Q931Kind::Setup { calling, .. } = &mut m.kind {
            *calling = None;
        }
        assert_eq!(Q931Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn all_kinds_roundtrip() {
        let kinds = vec![
            Q931Kind::CallProceeding,
            Q931Kind::Alerting,
            Q931Kind::Connect {
                media_addr: addr(9, 40_000),
            },
            Q931Kind::ReleaseComplete {
                cause: Cause::UserBusy,
            },
        ];
        for kind in kinds {
            let m = Q931Message {
                crv: Crv(1),
                call: CallId(3),
                kind,
            };
            assert_eq!(Q931Message::decode(&m.encode()).unwrap(), m, "{}", m.label());
        }
    }

    #[test]
    fn labels() {
        assert_eq!(setup().label(), "Q931_Setup");
        let rc = Q931Message {
            crv: Crv(0),
            call: CallId(0),
            kind: Q931Kind::ReleaseComplete {
                cause: Cause::NormalClearing,
            },
        };
        assert_eq!(rc.label(), "Q931_Release_Complete");
    }

    #[test]
    fn decode_rejects_bad_discriminator() {
        let mut b = setup().encode();
        b[0] = 0x09;
        assert_eq!(
            Q931Message::decode(&b),
            Err(DecodeQ931Error::BadDiscriminator(0x09))
        );
    }

    #[test]
    fn decode_rejects_truncation_anywhere() {
        let b = setup().encode();
        for cut in 0..b.len() {
            assert!(
                Q931Message::decode(&b[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_message_type() {
        let mut b = setup().encode();
        b[4] = 0x33;
        assert_eq!(
            Q931Message::decode(&b),
            Err(DecodeQ931Error::UnknownMessageType(0x33))
        );
    }

    #[test]
    fn decode_requires_called_number_in_setup() {
        // Build a Setup with only the user-user IE.
        let mut b = vec![DISCRIMINATOR, 2, 0, 1, 0x05];
        b.extend_from_slice(&[ie::USER_USER, 8, 0, 0, 0, 0, 0, 0, 0, 9]);
        assert_eq!(
            Q931Message::decode(&b),
            Err(DecodeQ931Error::MissingIe("called party"))
        );
    }

    #[test]
    fn decode_rejects_unknown_ie() {
        let mut b = setup().encode();
        b.extend_from_slice(&[0x55, 1, 0]);
        assert_eq!(Q931Message::decode(&b), Err(DecodeQ931Error::UnknownIe(0x55)));
    }

    #[test]
    fn type_codes_match_q931() {
        assert_eq!(Q931Kind::Alerting.type_code(), 0x01);
        assert_eq!(Q931Kind::CallProceeding.type_code(), 0x02);
        assert_eq!(
            Q931Kind::ReleaseComplete {
                cause: Cause::NormalClearing
            }
            .type_code(),
            0x5A
        );
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            DecodeQ931Error::Truncated,
            DecodeQ931Error::BadDiscriminator(1),
            DecodeQ931Error::BadCallReference,
            DecodeQ931Error::UnknownMessageType(9),
            DecodeQ931Error::UnknownIe(9),
            DecodeQ931Error::MissingIe("x"),
            DecodeQ931Error::BadIe("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
