//! RTP (RFC 1889 as of the paper's era) packets and the 12-byte header
//! codec. The VMSC's vocoder emits one RTP packet per 20 ms GSM frame.


use crate::ids::CallId;

/// RTP payload type for GSM full-rate audio (RFC 1890 static assignment).
pub const PAYLOAD_TYPE_GSM: u8 = 3;

/// One RTP packet carrying a vocoder frame.
///
/// The audio samples themselves are not simulated; `origin_us` carries the
/// frame's creation time so sinks can measure mouth-to-ear delay, and
/// `payload_len` its size for bandwidth accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RtpPacket {
    /// Synchronization source (one per media stream direction).
    pub ssrc: u32,
    /// Sequence number, incremented per packet.
    pub seq: u16,
    /// Media timestamp in 8 kHz ticks.
    pub timestamp: u32,
    /// Payload type (GSM = 3).
    pub payload_type: u8,
    /// Marker bit (start of a talkspurt).
    pub marker: bool,
    /// Payload length in bytes (33 for a GSM full-rate frame).
    pub payload_len: u16,
    /// Scenario call correlation id (simulation metadata, not on the wire).
    pub call: CallId,
    /// Frame creation time in simulated microseconds (metadata).
    pub origin_us: u64,
}

impl RtpPacket {
    /// Encoded header size.
    pub const HEADER_SIZE: usize = 12;

    /// Encodes the RTP header (the payload is synthetic).
    pub fn encode_header(&self) -> [u8; Self::HEADER_SIZE] {
        let mut b = [0u8; Self::HEADER_SIZE];
        b[0] = 2 << 6; // version 2, no padding, no extension, no CSRC
        b[1] = (u8::from(self.marker) << 7) | (self.payload_type & 0x7F);
        b[2..4].copy_from_slice(&self.seq.to_be_bytes());
        b[4..8].copy_from_slice(&self.timestamp.to_be_bytes());
        b[8..12].copy_from_slice(&self.ssrc.to_be_bytes());
        b
    }

    /// Decodes an RTP header; metadata fields are zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeRtpError`] on truncated input or a wrong version.
    pub fn decode_header(bytes: &[u8]) -> Result<Self, DecodeRtpError> {
        if bytes.len() < Self::HEADER_SIZE {
            return Err(DecodeRtpError::Truncated { got: bytes.len() });
        }
        let version = bytes[0] >> 6;
        if version != 2 {
            return Err(DecodeRtpError::BadVersion(version));
        }
        Ok(RtpPacket {
            marker: bytes[1] & 0x80 != 0,
            payload_type: bytes[1] & 0x7F,
            seq: u16::from_be_bytes([bytes[2], bytes[3]]),
            timestamp: u32::from_be_bytes(bytes[4..8].try_into().expect("length checked")),
            ssrc: u32::from_be_bytes(bytes[8..12].try_into().expect("length checked")),
            payload_len: 0,
            call: CallId(0),
            origin_us: 0,
        })
    }

    /// Total on-the-wire size (header + payload).
    pub fn wire_size(&self) -> usize {
        Self::HEADER_SIZE + self.payload_len as usize
    }
}

/// Errors from [`RtpPacket::decode_header`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeRtpError {
    /// Fewer than 12 bytes available.
    Truncated {
        /// Bytes available.
        got: usize,
    },
    /// Version field was not 2.
    BadVersion(u8),
}

impl std::fmt::Display for DecodeRtpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeRtpError::Truncated { got } => {
                write!(f, "RTP header truncated: {got} of 12 bytes")
            }
            DecodeRtpError::BadVersion(v) => write!(f, "unsupported RTP version {v}"),
        }
    }
}

impl std::error::Error for DecodeRtpError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> RtpPacket {
        RtpPacket {
            ssrc: 0xCAFEBABE,
            seq: 4321,
            timestamp: 160_000,
            payload_type: PAYLOAD_TYPE_GSM,
            marker: true,
            payload_len: 33,
            call: CallId(1),
            origin_us: 99,
        }
    }

    #[test]
    fn header_roundtrip() {
        let p = pkt();
        let decoded = RtpPacket::decode_header(&p.encode_header()).unwrap();
        assert_eq!(decoded.ssrc, p.ssrc);
        assert_eq!(decoded.seq, p.seq);
        assert_eq!(decoded.timestamp, p.timestamp);
        assert_eq!(decoded.payload_type, p.payload_type);
        assert_eq!(decoded.marker, p.marker);
    }

    #[test]
    fn marker_bit_independent_of_payload_type() {
        let mut p = pkt();
        p.marker = false;
        p.payload_type = 0x7F;
        let d = RtpPacket::decode_header(&p.encode_header()).unwrap();
        assert!(!d.marker);
        assert_eq!(d.payload_type, 0x7F);
    }

    #[test]
    fn version_bits() {
        let b = pkt().encode_header();
        assert_eq!(b[0] >> 6, 2);
    }

    #[test]
    fn decode_rejects_truncated_and_bad_version() {
        assert_eq!(
            RtpPacket::decode_header(&[0; 4]),
            Err(DecodeRtpError::Truncated { got: 4 })
        );
        let mut b = pkt().encode_header();
        b[0] = 1 << 6;
        assert_eq!(
            RtpPacket::decode_header(&b),
            Err(DecodeRtpError::BadVersion(1))
        );
    }

    #[test]
    fn wire_size_includes_payload() {
        assert_eq!(pkt().wire_size(), 45);
    }
}
