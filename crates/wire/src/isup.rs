//! SS7 ISDN User Part (ISUP) trunk signaling between telephone switches,
//! with a binary codec for the message subset the PSTN substrate uses.


use crate::cause::Cause;
use crate::ids::{CallId, Cic, Msisdn};

/// ISUP message kinds used by call setup and release.
#[derive(Clone, Debug, PartialEq)]
pub enum IsupKind {
    /// Initial Address Message: seizes a circuit and carries the digits.
    Iam {
        /// Called number.
        called: Msisdn,
        /// Calling number, when presentable.
        calling: Option<Msisdn>,
    },
    /// Address Complete Message: the far end is ringing.
    Acm,
    /// Answer Message: the far end answered.
    Anm,
    /// Release: clears the call.
    Rel {
        /// Clearing cause.
        cause: Cause,
    },
    /// Release Complete: circuit is idle again.
    Rlc,
}

impl IsupKind {
    /// ISUP message-type octet (Q.763 table 4).
    pub fn type_code(&self) -> u8 {
        match self {
            IsupKind::Iam { .. } => 0x01,
            IsupKind::Acm => 0x06,
            IsupKind::Anm => 0x09,
            IsupKind::Rel { .. } => 0x0C,
            IsupKind::Rlc => 0x10,
        }
    }
}

/// A complete ISUP message on one circuit.
#[derive(Clone, Debug, PartialEq)]
pub struct IsupMessage {
    /// The circuit this message controls.
    pub cic: Cic,
    /// Scenario-level call correlation id.
    pub call: CallId,
    /// Message content.
    pub kind: IsupKind,
}

impl IsupMessage {
    /// Trace label, e.g. `ISUP_IAM`.
    pub fn label(&self) -> &'static str {
        match self.kind {
            IsupKind::Iam { .. } => "ISUP_IAM",
            IsupKind::Acm => "ISUP_ACM",
            IsupKind::Anm => "ISUP_ANM",
            IsupKind::Rel { .. } => "ISUP_REL",
            IsupKind::Rlc => "ISUP_RLC",
        }
    }

    /// Encodes to wire form: CIC (2), type (1), call id (8), then
    /// type-specific parameters.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&self.cic.0.to_be_bytes());
        out.push(self.kind.type_code());
        out.extend_from_slice(&self.call.0.to_be_bytes());
        match &self.kind {
            IsupKind::Iam { called, calling } => {
                let called = called.digits();
                out.push(called.len() as u8);
                out.extend_from_slice(called.as_bytes());
                match calling {
                    Some(c) => {
                        let c = c.digits();
                        out.push(c.len() as u8);
                        out.extend_from_slice(c.as_bytes());
                    }
                    None => out.push(0),
                }
            }
            IsupKind::Rel { cause } => out.push(cause.q850_value()),
            IsupKind::Acm | IsupKind::Anm | IsupKind::Rlc => {}
        }
        out
    }

    /// Decodes from wire form.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeIsupError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Self, DecodeIsupError> {
        if bytes.len() < 11 {
            return Err(DecodeIsupError::Truncated);
        }
        let cic = Cic(u16::from_be_bytes([bytes[0], bytes[1]]));
        let type_code = bytes[2];
        let call = CallId(u64::from_be_bytes(
            bytes[3..11].try_into().expect("length checked"),
        ));
        let rest = &bytes[11..];
        let kind = match type_code {
            0x01 => {
                let (called, rest) = take_number(rest)?;
                let called = called.ok_or(DecodeIsupError::BadParameter("called number"))?;
                let (calling, rest) = take_number(rest)?;
                if !rest.is_empty() {
                    return Err(DecodeIsupError::TrailingBytes(rest.len()));
                }
                IsupKind::Iam { called, calling }
            }
            0x06 => expect_empty(rest, IsupKind::Acm)?,
            0x09 => expect_empty(rest, IsupKind::Anm)?,
            0x0C => {
                if rest.len() != 1 {
                    return Err(DecodeIsupError::BadParameter("cause"));
                }
                IsupKind::Rel {
                    cause: Cause::from_q850(rest[0])
                        .ok_or(DecodeIsupError::BadParameter("cause value"))?,
                }
            }
            0x10 => expect_empty(rest, IsupKind::Rlc)?,
            other => return Err(DecodeIsupError::UnknownMessageType(other)),
        };
        Ok(IsupMessage { cic, call, kind })
    }
}

fn expect_empty(rest: &[u8], kind: IsupKind) -> Result<IsupKind, DecodeIsupError> {
    if rest.is_empty() {
        Ok(kind)
    } else {
        Err(DecodeIsupError::TrailingBytes(rest.len()))
    }
}

fn take_number(bytes: &[u8]) -> Result<(Option<Msisdn>, &[u8]), DecodeIsupError> {
    let Some((&len, rest)) = bytes.split_first() else {
        return Err(DecodeIsupError::Truncated);
    };
    let len = len as usize;
    if len == 0 {
        return Ok((None, rest));
    }
    if rest.len() < len {
        return Err(DecodeIsupError::Truncated);
    }
    let digits = std::str::from_utf8(&rest[..len])
        .map_err(|_| DecodeIsupError::BadParameter("number digits"))?;
    let number =
        Msisdn::parse(digits).map_err(|_| DecodeIsupError::BadParameter("number digits"))?;
    Ok((Some(number), &rest[len..]))
}

/// Errors from [`IsupMessage::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeIsupError {
    /// Input ended early.
    Truncated,
    /// Message-type octet outside the supported subset.
    UnknownMessageType(u8),
    /// A parameter was malformed.
    BadParameter(&'static str),
    /// Extra bytes followed a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for DecodeIsupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeIsupError::Truncated => write!(f, "ISUP message truncated"),
            DecodeIsupError::UnknownMessageType(t) => {
                write!(f, "unknown ISUP message type {t:#04x}")
            }
            DecodeIsupError::BadParameter(p) => write!(f, "malformed ISUP parameter: {p}"),
            DecodeIsupError::TrailingBytes(n) => write!(f, "{n} trailing bytes after ISUP message"),
        }
    }
}

impl std::error::Error for DecodeIsupError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn iam() -> IsupMessage {
        IsupMessage {
            cic: Cic(31),
            call: CallId(1234),
            kind: IsupKind::Iam {
                called: Msisdn::parse("85291234567").unwrap(),
                calling: Some(Msisdn::parse("447700900123").unwrap()),
            },
        }
    }

    #[test]
    fn iam_roundtrip() {
        let m = iam();
        assert_eq!(IsupMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn iam_without_calling_roundtrip() {
        let mut m = iam();
        if let IsupKind::Iam { calling, .. } = &mut m.kind {
            *calling = None;
        }
        assert_eq!(IsupMessage::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn parameterless_kinds_roundtrip() {
        for kind in [IsupKind::Acm, IsupKind::Anm, IsupKind::Rlc] {
            let m = IsupMessage {
                cic: Cic(1),
                call: CallId(2),
                kind,
            };
            assert_eq!(IsupMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn rel_roundtrip_all_causes() {
        for cause in Cause::ALL {
            let m = IsupMessage {
                cic: Cic(1),
                call: CallId(2),
                kind: IsupKind::Rel { cause },
            };
            assert_eq!(IsupMessage::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(iam().label(), "ISUP_IAM");
        assert_eq!(
            IsupMessage {
                cic: Cic(0),
                call: CallId(0),
                kind: IsupKind::Rlc
            }
            .label(),
            "ISUP_RLC"
        );
    }

    #[test]
    fn decode_rejects_truncation() {
        let b = iam().encode();
        for cut in 0..b.len() {
            assert!(IsupMessage::decode(&b[..cut]).is_err(), "prefix {cut}");
        }
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut b = IsupMessage {
            cic: Cic(1),
            call: CallId(2),
            kind: IsupKind::Acm,
        }
        .encode();
        b.push(0);
        assert_eq!(
            IsupMessage::decode(&b),
            Err(DecodeIsupError::TrailingBytes(1))
        );
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut b = iam().encode();
        b[2] = 0x77;
        assert_eq!(
            IsupMessage::decode(&b),
            Err(DecodeIsupError::UnknownMessageType(0x77))
        );
    }

    #[test]
    fn type_codes_match_q763() {
        assert_eq!(iam().kind.type_code(), 0x01);
        assert_eq!(IsupKind::Acm.type_code(), 0x06);
        assert_eq!(IsupKind::Anm.type_code(), 0x09);
        assert_eq!(
            IsupKind::Rel {
                cause: Cause::NormalClearing
            }
            .type_code(),
            0x0C
        );
        assert_eq!(IsupKind::Rlc.type_code(), 0x10);
    }
}
