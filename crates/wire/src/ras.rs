//! H.225.0 RAS (Registration, Admission and Status) messages exchanged
//! between H.323 endpoints and the gatekeeper.


use crate::cause::Cause;
use crate::ids::{CallId, Imsi, Msisdn, TransportAddr};

/// A RAS message. Labels use the paper's abbreviations (RRQ, RCF, ARQ,
/// ACF, ARJ, DRQ, DCF) prefixed with `RAS_`.
#[derive(Clone, Debug, PartialEq)]
pub enum RasMessage {
    /// Registration Request: endpoint announces its transport address and
    /// alias (the MS's MSISDN in vGPRS — paper step 1.4).
    Rrq {
        /// Alias address being registered (MSISDN).
        alias: Msisdn,
        /// Call-signaling transport address for the alias.
        transport: TransportAddr,
        /// Non-standard extension used by the 3G TR 22.973 integration:
        /// the subscriber's IMSI, which that architecture must reveal to
        /// the H.323 domain (paper Section 6). Standard endpoints — and
        /// the vGPRS VMSC — leave this empty; experiment C4 counts the
        /// disclosures.
        imsi: Option<Imsi>,
    },
    /// Registration Confirm (paper step 1.5).
    Rcf {
        /// The registered alias.
        alias: Msisdn,
    },
    /// Registration Reject.
    Rrj {
        /// The alias that failed to register.
        alias: Msisdn,
        /// Why.
        cause: Cause,
    },
    /// Unregistration Request (endpoint leaving, or roamer moved away).
    Urq {
        /// Alias to remove.
        alias: Msisdn,
    },
    /// Unregistration Confirm.
    Ucf {
        /// Removed alias.
        alias: Msisdn,
    },
    /// Admission Request: may this call proceed, and where do I signal?
    /// (paper steps 2.3, 2.5, 4.1, 4.3).
    Arq {
        /// Call this admission concerns.
        call: CallId,
        /// The dialed alias (for originating ARQs).
        called: Msisdn,
        /// True when sent by the *answering* endpoint (steps 2.5, 4.3).
        answering: bool,
        /// Requested bandwidth in units of 100 bit/s (H.225 convention).
        bandwidth: u32,
    },
    /// Admission Confirm carrying the destination call-signaling address.
    Acf {
        /// Call admitted.
        call: CallId,
        /// Where to send the Q.931 Setup.
        dest_call_signal_addr: TransportAddr,
    },
    /// Admission Reject (paper step 2.5 notes the call is then released).
    Arj {
        /// Call rejected.
        call: CallId,
        /// Why.
        cause: Cause,
    },
    /// Disengage Request: the call ended; release admission (step 3.3).
    Drq {
        /// Call that ended.
        call: CallId,
        /// Call duration in milliseconds, reported for charging records.
        duration_ms: u64,
    },
    /// Disengage Confirm.
    Dcf {
        /// Call whose admission was released.
        call: CallId,
    },
}

impl RasMessage {
    /// Trace label.
    pub fn label(&self) -> &'static str {
        match self {
            RasMessage::Rrq { .. } => "RAS_RRQ",
            RasMessage::Rcf { .. } => "RAS_RCF",
            RasMessage::Rrj { .. } => "RAS_RRJ",
            RasMessage::Urq { .. } => "RAS_URQ",
            RasMessage::Ucf { .. } => "RAS_UCF",
            RasMessage::Arq { .. } => "RAS_ARQ",
            RasMessage::Acf { .. } => "RAS_ACF",
            RasMessage::Arj { .. } => "RAS_ARJ",
            RasMessage::Drq { .. } => "RAS_DRQ",
            RasMessage::Dcf { .. } => "RAS_DCF",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Ipv4Addr;

    #[test]
    fn labels_match_paper_abbreviations() {
        let alias = Msisdn::parse("88612345678").unwrap();
        let addr = TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 9), 1720);
        assert_eq!(
            RasMessage::Rrq {
                alias,
                transport: addr,
                imsi: None
            }
            .label(),
            "RAS_RRQ"
        );
        assert_eq!(RasMessage::Rcf { alias }.label(), "RAS_RCF");
        assert_eq!(
            RasMessage::Arq {
                call: CallId(1),
                called: alias,
                answering: false,
                bandwidth: 640,
            }
            .label(),
            "RAS_ARQ"
        );
        assert_eq!(
            RasMessage::Drq {
                call: CallId(1),
                duration_ms: 60_000
            }
            .label(),
            "RAS_DRQ"
        );
    }
}
