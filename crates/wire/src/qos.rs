//! GPRS quality-of-service profiles (GSM 03.60 §15.2).
//!
//! Each PDP context carries a negotiated profile. The paper's step 1.3
//! activates the VMSC's *signaling* context with a low-priority profile so
//! idle subscribers do not reserve network resources, while step 2.9
//! activates a high-priority *voice* context per call.

use std::fmt;


/// Precedence class: who survives congestion (1 = high, 3 = low).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Precedence {
    /// Service commitments maintained ahead of all other classes.
    High,
    /// Service commitments maintained ahead of low-priority users.
    Normal,
    /// Service commitments maintained after the other classes.
    Low,
}

/// Delay class 1–4 (4 = best effort).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DelayClass {
    /// Predictive delay class 1 (tightest).
    Class1,
    /// Predictive delay class 2.
    Class2,
    /// Predictive delay class 3.
    Class3,
    /// Best effort.
    BestEffort,
}

/// Reliability class 1–5 (1 = most protected).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ReliabilityClass(u8);

impl ReliabilityClass {
    /// Creates a reliability class.
    ///
    /// # Errors
    ///
    /// Returns `None` if `class` is outside 1–5.
    pub fn new(class: u8) -> Option<Self> {
        (1..=5).contains(&class).then_some(ReliabilityClass(class))
    }

    /// The raw class number.
    pub fn value(self) -> u8 {
        self.0
    }
}

/// Peak throughput class 1–9 (8 kbit/s × 2^(class−1)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeakThroughputClass(u8);

impl PeakThroughputClass {
    /// Creates a peak throughput class.
    ///
    /// # Errors
    ///
    /// Returns `None` if `class` is outside 1–9.
    pub fn new(class: u8) -> Option<Self> {
        (1..=9).contains(&class).then_some(PeakThroughputClass(class))
    }

    /// The class number.
    pub fn value(self) -> u8 {
        self.0
    }

    /// The peak rate this class grants, in bits per second.
    pub fn bits_per_second(self) -> u64 {
        8_000u64 << (self.0 - 1)
    }
}

/// A negotiated GPRS QoS profile.
///
/// # Examples
///
/// ```rust
/// use vgprs_wire::QosProfile;
/// let signaling = QosProfile::signaling();
/// let voice = QosProfile::realtime_voice();
/// assert!(voice.outranks(&signaling));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct QosProfile {
    /// Precedence under congestion.
    pub precedence: Precedence,
    /// Delay class.
    pub delay: DelayClass,
    /// Reliability class.
    pub reliability: ReliabilityClass,
    /// Peak throughput class.
    pub peak_throughput: PeakThroughputClass,
}

impl QosProfile {
    /// The low-priority profile the VMSC requests for the H.323 signaling
    /// context (paper step 1.3: "the QoS profile can be set to low priority
    /// and network resource would not be wasted").
    pub fn signaling() -> Self {
        QosProfile {
            precedence: Precedence::Low,
            delay: DelayClass::BestEffort,
            reliability: ReliabilityClass::new(3).expect("valid class"),
            peak_throughput: PeakThroughputClass::new(2).expect("valid class"),
        }
    }

    /// The high-priority, delay-sensitive profile used for the per-call
    /// voice context (paper step 2.9).
    pub fn realtime_voice() -> Self {
        QosProfile {
            precedence: Precedence::High,
            delay: DelayClass::Class1,
            reliability: ReliabilityClass::new(2).expect("valid class"),
            peak_throughput: PeakThroughputClass::new(4).expect("valid class"),
        }
    }

    /// True if this profile has strictly better precedence *and* no worse
    /// delay class than `other` — the ordering the SGSN scheduler uses.
    pub fn outranks(&self, other: &QosProfile) -> bool {
        self.precedence < other.precedence && self.delay <= other.delay
    }

    /// Negotiates the weaker of two profiles field-by-field, as the SGSN
    /// does when it cannot honor everything the MS requested.
    pub fn negotiate(&self, offered: &QosProfile) -> QosProfile {
        QosProfile {
            precedence: self.precedence.max(offered.precedence),
            delay: self.delay.max(offered.delay),
            reliability: ReliabilityClass(self.reliability.0.max(offered.reliability.0)),
            peak_throughput: PeakThroughputClass(
                self.peak_throughput.0.min(offered.peak_throughput.0),
            ),
        }
    }
}

impl fmt::Display for QosProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "prec={:?} delay={:?} rel={} peak={}kbps",
            self.precedence,
            self.delay,
            self.reliability.value(),
            self.peak_throughput.bits_per_second() / 1000
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_validation() {
        assert!(ReliabilityClass::new(0).is_none());
        assert!(ReliabilityClass::new(6).is_none());
        assert_eq!(ReliabilityClass::new(5).unwrap().value(), 5);
        assert!(PeakThroughputClass::new(0).is_none());
        assert!(PeakThroughputClass::new(10).is_none());
    }

    #[test]
    fn peak_throughput_rates() {
        assert_eq!(PeakThroughputClass::new(1).unwrap().bits_per_second(), 8_000);
        assert_eq!(
            PeakThroughputClass::new(9).unwrap().bits_per_second(),
            2_048_000
        );
    }

    #[test]
    fn voice_outranks_signaling() {
        assert!(QosProfile::realtime_voice().outranks(&QosProfile::signaling()));
        assert!(!QosProfile::signaling().outranks(&QosProfile::realtime_voice()));
        let v = QosProfile::realtime_voice();
        assert!(!v.outranks(&v), "a profile does not outrank itself");
    }

    #[test]
    fn negotiation_takes_weaker_fields() {
        let req = QosProfile::realtime_voice();
        let cap = QosProfile::signaling();
        let got = cap.negotiate(&req);
        assert_eq!(got.precedence, Precedence::Low);
        assert_eq!(got.delay, DelayClass::BestEffort);
        assert_eq!(got.reliability.value(), 3);
        assert_eq!(got.peak_throughput.value(), 2);
    }

    #[test]
    fn display_compact() {
        let s = QosProfile::signaling().to_string();
        assert!(s.contains("prec=Low"));
        assert!(s.contains("kbps"));
    }
}
