//! GSM call-control and mobility-management signaling content.
//!
//! The same semantic payloads travel the air interface (Um, GSM 04.08),
//! the BTS–BSC link (Abis) and the BSC–MSC link (A); the relay elements
//! re-wrap them. [`Dtap`] is that shared content; the `Message` union in
//! [`crate::message`] wraps it per interface so trace labels carry the
//! paper's `Um_` / `Abis_` / `A_` prefixes.


use crate::cause::Cause;
use crate::ids::{CallId, CellId, Lai, MsIdentity, Msisdn, Tmsi};

/// GSM 04.08 direct-transfer signaling content.
#[derive(Clone, Debug, PartialEq)]
pub enum Dtap {
    /// MS requests registration in a location area (paper step 1.1).
    LocationUpdateRequest {
        /// IMSI on first contact, TMSI afterwards.
        identity: MsIdentity,
        /// The location area the MS observed on its broadcast channel.
        lai: Lai,
    },
    /// Network accepts the location update (paper step 1.6).
    LocationUpdateAccept {
        /// Fresh TMSI allocated by the VLR, if any.
        tmsi: Option<Tmsi>,
    },
    /// Network rejects the location update.
    LocationUpdateReject {
        /// Why registration failed.
        cause: Cause,
    },
    /// Authentication challenge toward the MS (GSM 04.08 §4.3.2).
    AuthenticationRequest {
        /// Random challenge from the subscriber's auth triplet.
        rand: u64,
    },
    /// MS answer to the challenge.
    AuthenticationResponse {
        /// Signed response computed by the SIM.
        sres: u32,
    },
    /// Orders the MS to start ciphering with the established Kc.
    CipherModeCommand,
    /// MS confirms ciphering is active.
    CipherModeComplete,
    /// MS requests service (call origination) — GSM 04.08 CM Service
    /// Request, the first message of the paper's step 2.1 box.
    CmServiceRequest {
        /// Requesting identity.
        identity: MsIdentity,
    },
    /// Network grants the service request.
    CmServiceAccept,
    /// Network denies the service request.
    CmServiceReject {
        /// Why.
        cause: Cause,
    },
    /// Assigns a traffic channel for a call (GSM 04.08 §3.4.3).
    ChannelAssignment {
        /// The serving cell granting the channel.
        cell: CellId,
    },
    /// MS confirms it moved to the assigned traffic channel.
    ChannelAssignmentComplete,
    /// No traffic channel could be allocated (cell congestion).
    ChannelAssignmentFailure {
        /// Why.
        cause: Cause,
    },
    /// Releases the radio channel after call clearing.
    ChannelRelease,
    /// MS reports a stronger neighboring cell (triggers handoff).
    MeasurementReport {
        /// The better cell.
        cell: CellId,
    },
    /// BSC asks the MSC to hand the call off to another cell (BSSMAP
    /// Handover Required; the MSC resolves the affected call from the
    /// connection reference).
    HandoverRequired {
        /// Target cell.
        cell: CellId,
    },
    /// Call origination: the dialed digits (paper step 2.1).
    Setup {
        /// Scenario-level call correlation id.
        call: CallId,
        /// Dialed number.
        called: Msisdn,
    },
    /// The network has enough routing information (Q.931 alignment).
    CallProceeding {
        /// Call correlation id.
        call: CallId,
    },
    /// The remote party is being alerted; triggers ringback (step 2.7).
    Alerting {
        /// Call correlation id.
        call: CallId,
    },
    /// The remote party answered (step 2.8).
    Connect {
        /// Call correlation id.
        call: CallId,
    },
    /// Acknowledges the connect.
    ConnectAck {
        /// Call correlation id.
        call: CallId,
    },
    /// Party-initiated call clearing (paper step 3.1).
    Disconnect {
        /// Call correlation id.
        call: CallId,
        /// Clearing cause.
        cause: Cause,
    },
    /// Network continues clearing.
    Release {
        /// Call correlation id.
        call: CallId,
    },
    /// Clearing complete.
    ReleaseComplete {
        /// Call correlation id.
        call: CallId,
    },
    /// Network pages the MS for an incoming call (paper step 4.4).
    Paging {
        /// Identity broadcast in the paging channel.
        identity: MsIdentity,
    },
    /// MS responds to paging (paper step 4.5).
    PagingResponse {
        /// The identity the MS answered with.
        identity: MsIdentity,
    },
    /// Incoming-call setup toward the MS (network side, step 4.5).
    MtSetup {
        /// Call correlation id.
        call: CallId,
        /// The calling party, when presentable.
        calling: Option<Msisdn>,
    },
    /// Orders the MS to a new cell during handoff (paper §7).
    HandoverCommand {
        /// Target cell.
        cell: CellId,
        /// Handover reference allocated by the target MSC.
        ho_ref: u32,
    },
    /// MS completed the handoff on the target cell (sent via the *new*
    /// BTS/BSC, carrying the reference so the target MSC can correlate).
    HandoverComplete {
        /// Echoed handover reference.
        ho_ref: u32,
    },
    /// One 20 ms vocoder frame on the circuit-switched path.
    ///
    /// Not traced (media, not signaling); carries its origination time so
    /// the media experiments can measure mouth-to-ear delay.
    VoiceFrame {
        /// Call correlation id.
        call: CallId,
        /// Frame sequence number.
        seq: u32,
        /// Origination timestamp (simulated microseconds).
        origin_us: u64,
    },
}

impl Dtap {
    /// Stable message name used to build trace labels.
    ///
    /// `on_um` selects the paper's air-interface naming where it differs
    /// from the network-side naming (`Um_Location_Update_Request` vs
    /// `A_Location_Update`).
    pub fn name(&self, on_um: bool) -> &'static str {
        match self {
            Dtap::LocationUpdateRequest { .. } => {
                if on_um {
                    "Location_Update_Request"
                } else {
                    "Location_Update"
                }
            }
            Dtap::LocationUpdateAccept { .. } => "Location_Update_Accept",
            Dtap::LocationUpdateReject { .. } => "Location_Update_Reject",
            Dtap::AuthenticationRequest { .. } => "Authentication_Request",
            Dtap::AuthenticationResponse { .. } => "Authentication_Response",
            Dtap::CipherModeCommand => "Cipher_Mode_Command",
            Dtap::CipherModeComplete => "Cipher_Mode_Complete",
            Dtap::CmServiceRequest { .. } => "CM_Service_Request",
            Dtap::CmServiceAccept => "CM_Service_Accept",
            Dtap::CmServiceReject { .. } => "CM_Service_Reject",
            Dtap::ChannelAssignment { .. } => "Channel_Assignment",
            Dtap::ChannelAssignmentComplete => "Channel_Assignment_Complete",
            Dtap::ChannelAssignmentFailure { .. } => "Channel_Assignment_Failure",
            Dtap::ChannelRelease => "Channel_Release",
            Dtap::MeasurementReport { .. } => "Measurement_Report",
            Dtap::HandoverRequired { .. } => "Handover_Required",
            Dtap::Setup { .. } => "Setup",
            Dtap::CallProceeding { .. } => "Call_Proceeding",
            Dtap::Alerting { .. } => "Alerting",
            Dtap::Connect { .. } => "Connect",
            Dtap::ConnectAck { .. } => "Connect_Ack",
            Dtap::Disconnect { .. } => "Disconnect",
            Dtap::Release { .. } => "Release",
            Dtap::ReleaseComplete { .. } => "Release_Complete",
            Dtap::Paging { .. } => "Paging",
            Dtap::PagingResponse { .. } => "Paging_Response",
            Dtap::MtSetup { .. } => "Setup",
            Dtap::HandoverCommand { .. } => "Handover_Command",
            Dtap::HandoverComplete { .. } => "Handover_Complete",
            Dtap::VoiceFrame { .. } => "Voice_Frame",
        }
    }

    /// True for the media (non-signaling) payload.
    pub fn is_media(&self) -> bool {
        matches!(self, Dtap::VoiceFrame { .. })
    }

    /// Approximate encoded size in bytes on the A interface.
    pub fn wire_size(&self) -> usize {
        match self {
            // 260-bit GSM FR frame + RLP/TRAU overhead
            Dtap::VoiceFrame { .. } => 40,
            Dtap::LocationUpdateRequest { .. } => 19,
            Dtap::Setup { .. } | Dtap::MtSetup { .. } => 24,
            _ => 12,
        }
    }

    /// The call id this message belongs to, if it is call-scoped.
    pub fn call_id(&self) -> Option<CallId> {
        match self {
            Dtap::Setup { call, .. }
            | Dtap::MtSetup { call, .. }
            | Dtap::CallProceeding { call }
            | Dtap::Alerting { call }
            | Dtap::Connect { call }
            | Dtap::ConnectAck { call }
            | Dtap::Disconnect { call, .. }
            | Dtap::Release { call }
            | Dtap::ReleaseComplete { call }
            | Dtap::VoiceFrame { call, .. } => Some(*call),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Imsi;

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    #[test]
    fn um_vs_network_location_update_names() {
        let m = Dtap::LocationUpdateRequest {
            identity: MsIdentity::Imsi(imsi()),
            lai: Lai::new(466, 92, 1),
        };
        assert_eq!(m.name(true), "Location_Update_Request");
        assert_eq!(m.name(false), "Location_Update");
    }

    #[test]
    fn uniform_names_elsewhere() {
        let m = Dtap::Alerting { call: CallId(1) };
        assert_eq!(m.name(true), m.name(false));
    }

    #[test]
    fn media_classification() {
        assert!(Dtap::VoiceFrame {
            call: CallId(1),
            seq: 0,
            origin_us: 0
        }
        .is_media());
        assert!(!Dtap::CipherModeCommand.is_media());
    }

    #[test]
    fn call_scoping() {
        assert_eq!(
            Dtap::Connect { call: CallId(9) }.call_id(),
            Some(CallId(9))
        );
        assert_eq!(Dtap::CipherModeComplete.call_id(), None);
    }

    #[test]
    fn voice_frame_heavier_than_signaling() {
        let vf = Dtap::VoiceFrame {
            call: CallId(1),
            seq: 0,
            origin_us: 0,
        };
        assert!(vf.wire_size() > Dtap::Alerting { call: CallId(1) }.wire_size());
    }
}
