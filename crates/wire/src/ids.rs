//! Subscriber, equipment and network identities.
//!
//! Every identity the GSM/GPRS/H.323 procedures exchange is a distinct
//! newtype so they cannot be confused (C-NEWTYPE): an [`Imsi`] is not a
//! [`Msisdn`], a [`Tmsi`] is not a [`Teid`], and the compiler enforces it.

use std::fmt;
use std::str::FromStr;


/// Error returned when parsing an identity from text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIdError {
    kind: &'static str,
    reason: String,
}

impl ParseIdError {
    fn new(kind: &'static str, reason: impl Into<String>) -> Self {
        ParseIdError {
            kind,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ParseIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}: {}", self.kind, self.reason)
    }
}

impl std::error::Error for ParseIdError {}

/// Packed decimal digit string (up to 16 digits) used by IMSI and MSISDN.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Digits {
    /// Each digit occupies 4 bits, most significant digit first.
    packed: u64,
    len: u8,
}

impl Digits {
    const MAX_LEN: usize = 16;

    fn parse(kind: &'static str, s: &str) -> Result<Self, ParseIdError> {
        if s.is_empty() {
            return Err(ParseIdError::new(kind, "empty digit string"));
        }
        if s.len() > Self::MAX_LEN {
            return Err(ParseIdError::new(
                kind,
                format!("too long ({} digits, max {})", s.len(), Self::MAX_LEN),
            ));
        }
        let mut packed: u64 = 0;
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseIdError::new(kind, format!("non-digit character {c:?}")))?;
            packed = (packed << 4) | u64::from(d);
        }
        Ok(Digits {
            packed,
            len: s.len() as u8,
        })
    }

    fn digit(&self, i: usize) -> u8 {
        debug_assert!(i < self.len as usize);
        let shift = 4 * (self.len as usize - 1 - i);
        ((self.packed >> shift) & 0xF) as u8
    }

    fn as_string(&self) -> String {
        (0..self.len as usize)
            .map(|i| char::from(b'0' + self.digit(i)))
            .collect()
    }

    fn starts_with(&self, prefix: &str) -> bool {
        if prefix.len() > self.len as usize {
            return false;
        }
        prefix
            .bytes()
            .enumerate()
            .all(|(i, b)| b.is_ascii_digit() && self.digit(i) == b - b'0')
    }
}

impl fmt::Debug for Digits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_string())
    }
}

/// International Mobile Subscriber Identity (GSM 03.03): a 14–15 digit
/// number of the form MCC (3) + MNC (2–3) + MSIN.
///
/// IMSI is confidential to the home operator; the paper's Section 6 argues
/// that the 3G TR 22.973 baseline leaks it to the H.323 gatekeeper while
/// vGPRS does not. The reproduction counts exactly these exposures.
///
/// # Examples
///
/// ```rust
/// use vgprs_wire::Imsi;
/// let imsi: Imsi = "466920123456789".parse()?;
/// assert_eq!(imsi.mcc(), 466);
/// assert_eq!(imsi.to_string(), "466920123456789");
/// # Ok::<(), vgprs_wire::ParseIdError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Imsi(Digits);

impl Imsi {
    /// Parses an IMSI from 14–15 decimal digits.
    ///
    /// # Errors
    ///
    /// Returns [`ParseIdError`] if the string is not 14–15 decimal digits.
    pub fn parse(s: &str) -> Result<Self, ParseIdError> {
        let d = Digits::parse("IMSI", s)?;
        if !(14..=15).contains(&(d.len as usize)) {
            return Err(ParseIdError::new(
                "IMSI",
                format!("expected 14-15 digits, got {}", d.len),
            ));
        }
        Ok(Imsi(d))
    }

    /// Mobile country code (first three digits).
    pub fn mcc(&self) -> u16 {
        u16::from(self.0.digit(0)) * 100 + u16::from(self.0.digit(1)) * 10 + u16::from(self.0.digit(2))
    }

    /// The full digit string.
    pub fn digits(&self) -> String {
        self.0.as_string()
    }
}

impl FromStr for Imsi {
    type Err = ParseIdError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Imsi::parse(s)
    }
}

impl fmt::Debug for Imsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Imsi({})", self.0.as_string())
    }
}

impl fmt::Display for Imsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.as_string())
    }
}

/// Mobile Station ISDN number — the subscriber's dialable phone number,
/// in international format (country code first, no `+`).
///
/// # Examples
///
/// ```rust
/// use vgprs_wire::Msisdn;
/// let hk: Msisdn = "85291234567".parse()?;
/// assert!(hk.has_country_code("852"));
/// # Ok::<(), vgprs_wire::ParseIdError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Msisdn(Digits);

impl Msisdn {
    /// Parses an MSISDN from 5–16 decimal digits (international format).
    ///
    /// # Errors
    ///
    /// Returns [`ParseIdError`] on non-digits or a length outside 5–16.
    pub fn parse(s: &str) -> Result<Self, ParseIdError> {
        let d = Digits::parse("MSISDN", s)?;
        if (d.len as usize) < 5 {
            return Err(ParseIdError::new(
                "MSISDN",
                format!("expected at least 5 digits, got {}", d.len),
            ));
        }
        Ok(Msisdn(d))
    }

    /// True if the number starts with the given country code digits.
    pub fn has_country_code(&self, cc: &str) -> bool {
        self.0.starts_with(cc)
    }

    /// The full digit string.
    pub fn digits(&self) -> String {
        self.0.as_string()
    }
}

impl FromStr for Msisdn {
    type Err = ParseIdError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Msisdn::parse(s)
    }
}

impl fmt::Debug for Msisdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Msisdn({})", self.0.as_string())
    }
}

impl fmt::Display for Msisdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0.as_string())
    }
}

/// Temporary Mobile Subscriber Identity, allocated by a VLR to avoid
/// sending the IMSI over the air.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tmsi(pub u32);

impl fmt::Debug for Tmsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tmsi({:08x})", self.0)
    }
}

impl fmt::Display for Tmsi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

/// How a mobile identifies itself in a location update or paging response.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsIdentity {
    /// Permanent identity (first attach, or TMSI unknown).
    Imsi(Imsi),
    /// Temporary identity previously allocated by a VLR.
    Tmsi(Tmsi),
}

impl fmt::Display for MsIdentity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsIdentity::Imsi(i) => write!(f, "IMSI {i}"),
            MsIdentity::Tmsi(t) => write!(f, "TMSI {t}"),
        }
    }
}

/// Location Area Identity: MCC + MNC + LAC (GSM 03.03 §4.1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lai {
    /// Mobile country code.
    pub mcc: u16,
    /// Mobile network code.
    pub mnc: u16,
    /// Location area code, unique within the PLMN.
    pub lac: u16,
}

impl Lai {
    /// Creates a location area identity.
    pub fn new(mcc: u16, mnc: u16, lac: u16) -> Self {
        Lai { mcc, mnc, lac }
    }

    /// True if `other` is in the same PLMN (same MCC + MNC).
    pub fn same_plmn(&self, other: &Lai) -> bool {
        self.mcc == other.mcc && self.mnc == other.mnc
    }
}

impl fmt::Debug for Lai {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lai({}-{}-{})", self.mcc, self.mnc, self.lac)
    }
}

impl fmt::Display for Lai {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}-{}", self.mcc, self.mnc, self.lac)
    }
}

/// Cell identity within a location area.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CellId(pub u16);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// A simulated IPv4 address.
///
/// The reproduction runs its own address space, so this is a plain newtype
/// over the 32-bit value rather than `std::net::Ipv4Addr` (which would
/// suggest real sockets exist somewhere).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// Builds an address from four octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(u32::from_be_bytes([a, b, c, d]))
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// True if `self` falls within `prefix/len`.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`.
    pub fn in_prefix(self, prefix: Ipv4Addr, len: u8) -> bool {
        assert!(len <= 32, "prefix length {len} out of range");
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - len);
        (self.0 & mask) == (prefix.0 & mask)
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for Ipv4Addr {
    type Err = ParseIdError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(ParseIdError::new("IPv4 address", "expected four octets"));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p
                .parse::<u8>()
                .map_err(|e| ParseIdError::new("IPv4 address", e.to_string()))?;
        }
        Ok(Ipv4Addr::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// An IP transport address (address + port), e.g. an H.225 call-signaling
/// channel endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransportAddr {
    /// IP address.
    pub ip: Ipv4Addr,
    /// TCP/UDP port.
    pub port: u16,
}

impl TransportAddr {
    /// Creates a transport address.
    pub const fn new(ip: Ipv4Addr, port: u16) -> Self {
        TransportAddr { ip, port }
    }
}

impl fmt::Debug for TransportAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for TransportAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// GTP Tunnel Identifier (GSM 09.60 uses a TID derived from IMSI + NSAPI;
/// we use the modern flat 32-bit form for clarity).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Teid(pub u32);

impl fmt::Debug for Teid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Teid({:#010x})", self.0)
    }
}

impl fmt::Display for Teid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// Network Service Access Point Identifier selecting one PDP context of an
/// MS. Valid values are 5–15 (GSM 04.65).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nsapi(u8);

impl Nsapi {
    /// The lowest valid NSAPI.
    pub const MIN: u8 = 5;
    /// The highest valid NSAPI.
    pub const MAX: u8 = 15;

    /// Creates an NSAPI.
    ///
    /// # Errors
    ///
    /// Returns [`ParseIdError`] if `v` is outside 5–15.
    pub fn new(v: u8) -> Result<Self, ParseIdError> {
        if (Self::MIN..=Self::MAX).contains(&v) {
            Ok(Nsapi(v))
        } else {
            Err(ParseIdError::new("NSAPI", format!("{v} not in 5..=15")))
        }
    }

    /// The raw value.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl fmt::Debug for Nsapi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Nsapi({})", self.0)
    }
}

impl fmt::Display for Nsapi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// ISUP Circuit Identification Code: one voice circuit within a trunk group.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Cic(pub u16);

impl fmt::Display for Cic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cic{}", self.0)
    }
}

/// SS7 signaling point code identifying a switch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PointCode(pub u16);

impl fmt::Display for PointCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc{}", self.0)
    }
}

/// SCCP-style connection reference correlating one MS's signaling
/// transaction on the shared Abis and A interfaces.
///
/// The air interface gives every MS a dedicated channel, but Abis and A
/// multiplex all MSs of a BTS/BSC onto one link; real BSSAP runs over
/// connection-oriented SCCP for exactly this reason. The BTS allocates a
/// reference when a transaction starts and every relay keys on it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ConnRef(pub u32);

impl ConnRef {
    /// Reference used for connectionless messages (paging broadcast).
    pub const CONNECTIONLESS: ConnRef = ConnRef(0);

    /// True if this is the connectionless pseudo-reference.
    pub fn is_connectionless(self) -> bool {
        self == Self::CONNECTIONLESS
    }
}

impl fmt::Display for ConnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn{}", self.0)
    }
}

/// Q.931 call reference value, scoped to one signaling interface.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Crv(pub u16);

impl fmt::Display for Crv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "crv{}", self.0)
    }
}

/// A GSM authentication triplet produced by the home network's AuC.
///
/// The real algorithms (A3/A8, typically COMP128) are operator secrets; the
/// reproduction substitutes a keyed mixing function with the same interface
/// (see `vgprs_gsm::auth`). Only the challenge/response protocol shape
/// matters to the paper's flows.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AuthTriplet {
    /// Random challenge sent to the MS.
    pub rand: u64,
    /// Signed response expected from the MS.
    pub sres: u32,
    /// Ciphering key established after successful authentication.
    pub kc: u64,
}

/// A call identifier unique within one scenario, used to correlate
/// statistics across network elements.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CallId(pub u64);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imsi_roundtrip() {
        let i = Imsi::parse("466920123456789").unwrap();
        assert_eq!(i.to_string(), "466920123456789");
        assert_eq!(i.mcc(), 466);
        assert_eq!(i.digits().len(), 15);
    }

    #[test]
    fn imsi_length_validation() {
        assert!(Imsi::parse("12345678901234").is_ok()); // 14 digits ok
        assert!(Imsi::parse("1234567890123").is_err()); // 13 too short
        assert!(Imsi::parse("1234567890123456").is_err()); // 16 too long
        assert!(Imsi::parse("46692012345678x").is_err());
        assert!(Imsi::parse("").is_err());
    }

    #[test]
    fn msisdn_country_codes() {
        let uk = Msisdn::parse("447700900123").unwrap();
        assert!(uk.has_country_code("44"));
        assert!(!uk.has_country_code("852"));
        let hk = Msisdn::parse("85291234567").unwrap();
        assert!(hk.has_country_code("852"));
        assert!(!hk.has_country_code("8529123456789999"));
    }

    #[test]
    fn msisdn_validation() {
        assert!(Msisdn::parse("1234").is_err());
        assert!(Msisdn::parse("12345").is_ok());
        assert!(Msisdn::parse("123a5").is_err());
    }

    #[test]
    fn parse_error_display() {
        let e = Imsi::parse("abc").unwrap_err();
        assert!(e.to_string().starts_with("invalid IMSI"));
    }

    #[test]
    fn digits_leading_zero_preserved() {
        let m = Msisdn::parse("0012345").unwrap();
        assert_eq!(m.to_string(), "0012345");
        assert!(m.has_country_code("00"));
    }

    #[test]
    fn tmsi_display_hex() {
        assert_eq!(Tmsi(0xDEADBEEF).to_string(), "deadbeef");
    }

    #[test]
    fn lai_plmn_comparison() {
        let a = Lai::new(466, 92, 1);
        let b = Lai::new(466, 92, 2);
        let c = Lai::new(454, 0, 1);
        assert!(a.same_plmn(&b));
        assert!(!a.same_plmn(&c));
        assert_eq!(a.to_string(), "466-92-1");
    }

    #[test]
    fn ipv4_octets_and_display() {
        let ip = Ipv4Addr::from_octets(10, 0, 3, 200);
        assert_eq!(ip.octets(), [10, 0, 3, 200]);
        assert_eq!(ip.to_string(), "10.0.3.200");
    }

    #[test]
    fn ipv4_parse() {
        let ip: Ipv4Addr = "192.168.1.7".parse().unwrap();
        assert_eq!(ip.octets(), [192, 168, 1, 7]);
        assert!("1.2.3".parse::<Ipv4Addr>().is_err());
        assert!("1.2.3.400".parse::<Ipv4Addr>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr>().is_err());
    }

    #[test]
    fn ipv4_prefix_matching() {
        let ip = Ipv4Addr::from_octets(10, 1, 2, 3);
        let net = Ipv4Addr::from_octets(10, 1, 0, 0);
        assert!(ip.in_prefix(net, 16));
        assert!(!ip.in_prefix(net, 24));
        assert!(ip.in_prefix(Ipv4Addr(0), 0));
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn ipv4_prefix_len_checked() {
        Ipv4Addr(0).in_prefix(Ipv4Addr(0), 33);
    }

    #[test]
    fn nsapi_range() {
        assert!(Nsapi::new(4).is_err());
        assert!(Nsapi::new(16).is_err());
        assert_eq!(Nsapi::new(5).unwrap().value(), 5);
        assert_eq!(Nsapi::new(15).unwrap().to_string(), "15");
    }

    #[test]
    fn transport_addr_display() {
        let t = TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 1), 1720);
        assert_eq!(t.to_string(), "10.0.0.1:1720");
    }

    #[test]
    fn ms_identity_display() {
        let imsi = Imsi::parse("466920123456789").unwrap();
        assert_eq!(
            MsIdentity::Imsi(imsi).to_string(),
            "IMSI 466920123456789"
        );
        assert_eq!(MsIdentity::Tmsi(Tmsi(1)).to_string(), "TMSI 00000001");
    }

    #[test]
    fn misc_display() {
        assert_eq!(CellId(3).to_string(), "cell3");
        assert_eq!(Cic(9).to_string(), "cic9");
        assert_eq!(PointCode(2).to_string(), "pc2");
        assert_eq!(Crv(5).to_string(), "crv5");
        assert_eq!(CallId(8).to_string(), "call8");
        assert_eq!(Teid(0x10).to_string(), "0x00000010");
    }
}
