//! # vgprs-scenario — seeded demand plans for the vGPRS load engine
//!
//! The load engine's population model is *stationary*: every subscriber
//! attempts calls at a flat busy-hour Poisson rate for the whole window.
//! Real GPRS cores die on the non-stationary days — the stadium letting
//! out, New-Year midnight — where arrivals spike ×10–50 in a few cells
//! and the crowd's correlated mobility adds a location-update and paging
//! storm on top. This crate describes those days.
//!
//! It follows the same compiled-plan discipline as `vgprs-faults`: demand
//! is never sampled by a stochastic process racing the simulation.
//! [`compile_demand`] turns a [`ScenarioConfig`] — a daily-profile rate
//! curve plus superimposed [`FlashCrowd`] specs — into a per-shard
//! [`DemandPlan`]: a piecewise-constant arrival-rate multiplier curve
//! plus correlated-mobility drift windows, derived purely from
//! `(config, master_seed, shard_index, window_secs)`. The load engine
//! drives the curve through its existing per-subscriber Poisson streams
//! by thinning, so runs stay **bit-identical across thread counts and
//! event kernels**.
//!
//! A flat configuration (the default) compiles to an **empty plan**, and
//! the load engine then takes its original arrival path untouched — a
//! zero-shock run is byte-for-byte identical to one that never linked
//! this crate.
//!
//! [`OverloadControls`] lives here too: the knob block for the three
//! controls a real core raises against a crowd (paging throttling at the
//! VMSC, gatekeeper ARJ load shedding, SGSN PDP admission control), kept
//! beside the demand model that trips them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vgprs_sim::SimRng;

/// Sub-stream salt for demand-plan jitter and per-subscriber crowd-drift
/// draws, disjoint from the load engine's call/mobility/shard/fault
/// streams.
pub const STREAM_DRIFT: u64 = 0xC0FF_EE00_D21F_7E55_u64;

/// Demand multipliers above this are attributed to the peak minute in
/// KPI accounting (peak-minute blocking vs steady-state blocking).
pub const PEAK_ATTRIBUTION_THRESHOLD: f64 = 1.05;

/// Hard ceiling on the compiled multiplier; keeps thinning envelopes
/// finite even for absurd crowd specs.
const MAX_MULTIPLIER: f64 = 64.0;

/// A 24-hour arrival-rate profile, as hourly multipliers of the nominal
/// busy-hour rate.
///
/// The observation window is mapped onto the slice of the day starting
/// at `start_hour` and spanning `span_hours`, with linear interpolation
/// between hourly points (wrapping at midnight). The default profile is
/// flat (every hour at 1.0), which [`ScenarioConfig::is_flat`] treats as
/// "no profile at all".
#[derive(Clone, Debug, PartialEq)]
pub struct DailyProfile {
    /// Rate multiplier for each hour of the day, `hourly[h]` applying at
    /// `h:00` exactly.
    pub hourly: [f64; 24],
    /// Hour of day (fractional) the window starts at.
    pub start_hour: f64,
    /// Hours of profile time the window spans; `0.0` holds the profile
    /// at `start_hour` for the whole window.
    pub span_hours: f64,
}

impl Default for DailyProfile {
    fn default() -> Self {
        DailyProfile { hourly: [1.0; 24], start_hour: 11.0, span_hours: 0.0 }
    }
}

impl DailyProfile {
    /// A stylized metropolitan diurnal curve: night trough, morning
    /// ramp, lunchtime shoulder and an early-evening peak.
    pub fn diurnal() -> Self {
        DailyProfile {
            hourly: [
                0.20, 0.12, 0.08, 0.06, 0.06, 0.10, // 00–05: night trough
                0.25, 0.55, 0.85, 1.00, 1.05, 1.10, // 06–11: morning ramp
                1.15, 1.05, 1.00, 1.00, 1.05, 1.20, // 12–17: working day
                1.30, 1.25, 1.10, 0.90, 0.60, 0.35, // 18–23: evening peak, wind-down
            ],
            start_hour: 17.0,
            span_hours: 2.0,
        }
    }

    /// True if the profile is the flat 1.0 curve.
    pub fn is_flat(&self) -> bool {
        self.hourly.iter().all(|&m| (m - 1.0).abs() < 1e-12)
    }

    /// Profile multiplier at `frac` of the way through the window.
    pub fn multiplier_at(&self, frac: f64) -> f64 {
        let h = (self.start_hour + frac.clamp(0.0, 1.0) * self.span_hours).rem_euclid(24.0);
        let lo = h.floor() as usize % 24;
        let hi = (lo + 1) % 24;
        let t = h - h.floor();
        (self.hourly[lo] * (1.0 - t) + self.hourly[hi] * t).max(0.0)
    }
}

/// One flash-crowd shock: a trapezoidal arrival-rate spike over a set of
/// epicenter shards, with correlated mobility drift from the rest of the
/// population toward the epicenter.
///
/// All times are fractions of the observation window so a spec scales
/// with `window_secs`. A crowd with `multiplier <= 1.0` is inert (it
/// contributes neither rate nor drift), which is what lets a zero-shock
/// sweep point reproduce the flat run exactly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlashCrowd {
    /// Onset, as a fraction of the window.
    pub start_frac: f64,
    /// Linear ramp-up duration, fraction of the window.
    pub ramp_frac: f64,
    /// Plateau duration at full `multiplier`, fraction of the window.
    pub peak_frac: f64,
    /// Linear decay duration, fraction of the window.
    pub decay_frac: f64,
    /// Arrival-rate multiplier at the plateau (the shock intensity).
    pub multiplier: f64,
    /// Number of epicenter shards: shards `0..epicenter_shards` carry
    /// the spike; everyone else only contributes drifters.
    pub epicenter_shards: usize,
    /// Fraction of each non-epicenter shard's subscribers that drift to
    /// an epicenter shard for the crowd's duration.
    pub drift_fraction: f64,
}

impl FlashCrowd {
    /// True if this crowd can affect a run at all.
    pub fn is_active(&self) -> bool {
        self.multiplier > 1.0 && self.epicenter_shards > 0
    }

    /// The trapezoid envelope at `t_ms`, given the crowd's absolute
    /// onset `onset_ms` (start + per-shard jitter) and the window length.
    fn envelope(&self, t_ms: u64, onset_ms: u64, window_ms: u64) -> f64 {
        let ramp = (self.ramp_frac * window_ms as f64) as u64;
        let peak = (self.peak_frac * window_ms as f64) as u64;
        let decay = (self.decay_frac * window_ms as f64) as u64;
        let t = t_ms;
        if t < onset_ms || t >= onset_ms + ramp + peak + decay {
            return 1.0;
        }
        let excess = self.multiplier - 1.0;
        let into = t - onset_ms;
        if into < ramp {
            1.0 + excess * into as f64 / ramp as f64
        } else if into < ramp + peak {
            self.multiplier
        } else {
            let through = (into - ramp - peak) as f64 / decay.max(1) as f64;
            1.0 + excess * (1.0 - through)
        }
    }
}

/// A complete demand scenario. `Default` is flat/no-shock.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ScenarioConfig {
    /// The daily-profile rate curve the window is cut from.
    pub profile: DailyProfile,
    /// Flash crowds superimposed on the profile.
    pub crowds: Vec<FlashCrowd>,
}

impl ScenarioConfig {
    /// Convenience: the surge harness's canonical single flash crowd at
    /// the given intensity (plateau arrival multiplier). Intensity at or
    /// below 1.0 yields a flat scenario.
    pub fn flash(intensity: f64) -> Self {
        ScenarioConfig {
            profile: DailyProfile::default(),
            crowds: vec![FlashCrowd {
                start_frac: 0.20,
                ramp_frac: 0.10,
                peak_frac: 0.30,
                decay_frac: 0.15,
                multiplier: intensity,
                epicenter_shards: 1,
                drift_fraction: 0.30,
            }],
        }
    }

    /// True if compiling this scenario can only ever yield flat plans.
    pub fn is_flat(&self) -> bool {
        self.profile.is_flat() && !self.crowds.iter().any(|c| c.is_active())
    }
}

/// One piecewise-constant stretch of the compiled multiplier curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DemandSegment {
    /// Segment start, ms into the window (inclusive).
    pub from_ms: u64,
    /// Segment end, ms into the window (exclusive).
    pub to_ms: u64,
    /// Arrival-rate multiplier over the segment.
    pub multiplier: f64,
}

/// One correlated-mobility recruitment window: during a crowd, a
/// fraction of a non-epicenter shard's subscribers travel to an
/// epicenter shard and camp there until the crowd disperses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriftWindow {
    /// When drifters leave home, ms into the window.
    pub out_ms: u64,
    /// When drifters return, ms into the window.
    pub back_ms: u64,
    /// Fraction of the shard's subscribers recruited.
    pub fraction: f64,
    /// Epicenter shard count; a drifter's destination is
    /// `draw % epicenter_shards`.
    pub epicenter_shards: u64,
}

/// A compiled, per-shard demand schedule.
///
/// The empty (default) plan means "flat demand": the load engine must
/// take its original, un-thinned arrival path so the run is
/// byte-identical to one without the scenario machinery.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DemandPlan {
    /// Multiplier curve, sorted by `from_ms`, covering the window with
    /// adjacent equal segments coalesced. Empty means flat.
    pub segments: Vec<DemandSegment>,
    /// Maximum multiplier across the curve — the thinning envelope.
    pub peak: f64,
    /// Correlated-drift recruitment windows (non-epicenter shards only).
    pub drift: Vec<DriftWindow>,
}

impl DemandPlan {
    /// True if the plan is flat (scenario machinery disabled).
    pub fn is_flat(&self) -> bool {
        self.segments.is_empty() && self.drift.is_empty()
    }

    /// The thinning envelope: an upper bound on every multiplier.
    pub fn envelope(&self) -> f64 {
        self.peak.max(1.0)
    }

    /// Multiplier at `at_ms` (1.0 outside any segment).
    pub fn multiplier_at_ms(&self, at_ms: u64) -> f64 {
        match self.segments.binary_search_by(|s| {
            if at_ms < s.from_ms {
                std::cmp::Ordering::Greater
            } else if at_ms >= s.to_ms {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => self.segments[i].multiplier,
            Err(_) => 1.0,
        }
    }

    /// True if `at_ms` falls in the shock's peak (demand above the
    /// attribution threshold) — used to split blocking KPIs into
    /// peak-minute vs steady-state.
    pub fn in_peak(&self, at_ms: u64) -> bool {
        self.multiplier_at_ms(at_ms) > PEAK_ATTRIBUTION_THRESHOLD
    }
}

/// Curve resolution: one sample per simulated second, matching the
/// "peak minute vs steady state" KPI granularity.
const SEGMENT_MS: u64 = 1_000;

/// Compiles the per-shard demand schedule.
///
/// Pure function of its arguments: the same `(cfg, master_seed,
/// shard_index, window_secs)` always yields the same plan. Per-shard
/// onset jitter is drawn from an independent sub-stream per shard, so
/// neighboring cells see the crowd arrive a few seconds apart — and
/// re-running with the same seed replays the exact same stagger.
pub fn compile_demand(
    cfg: &ScenarioConfig,
    master_seed: u64,
    shard_index: usize,
    window_secs: u64,
) -> DemandPlan {
    let mut plan = DemandPlan::default();
    if cfg.is_flat() || window_secs == 0 {
        return plan;
    }
    let mut rng = SimRng::derive(master_seed, STREAM_DRIFT ^ shard_index as u64);
    let window_ms = window_secs * 1_000;

    // Per-crowd onset jitter (up to 2% of the window), drawn
    // unconditionally for every crowd — active or not, epicenter or not —
    // so adding a crowd or moving the epicenter never perturbs another
    // crowd's stagger.
    let onsets: Vec<(u64, bool)> = cfg
        .crowds
        .iter()
        .map(|c| {
            let jitter = rng.range(0, (window_ms / 50).max(1));
            let onset =
                ((c.start_frac.clamp(0.0, 1.0) * window_ms as f64) as u64 + jitter).min(window_ms);
            let epicenter = shard_index < c.epicenter_shards;
            (onset, epicenter)
        })
        .collect();

    // Sample the curve at 1 s resolution and coalesce equal neighbors.
    for s in 0..window_secs {
        let from_ms = s * SEGMENT_MS;
        let mid_ms = from_ms + SEGMENT_MS / 2;
        let mut m = cfg.profile.multiplier_at(mid_ms as f64 / window_ms as f64);
        for (crowd, &(onset_ms, epicenter)) in cfg.crowds.iter().zip(&onsets) {
            if crowd.is_active() && epicenter {
                m *= crowd.envelope(mid_ms, onset_ms, window_ms);
            }
        }
        let m = m.clamp(0.0, MAX_MULTIPLIER);
        match plan.segments.last_mut() {
            Some(last) if last.multiplier == m => last.to_ms = from_ms + SEGMENT_MS,
            _ => plan.segments.push(DemandSegment {
                from_ms,
                to_ms: from_ms + SEGMENT_MS,
                multiplier: m,
            }),
        }
    }
    plan.peak = plan
        .segments
        .iter()
        .map(|s| s.multiplier)
        .fold(0.0, f64::max);

    // Drift recruitment: non-epicenter shards send a slice of their
    // population toward the epicenter for the crowd's duration.
    for (crowd, &(onset_ms, epicenter)) in cfg.crowds.iter().zip(&onsets) {
        if crowd.is_active() && !epicenter && crowd.drift_fraction > 0.0 {
            let span = ((crowd.ramp_frac + crowd.peak_frac + crowd.decay_frac)
                * window_ms as f64) as u64;
            let back_ms = (onset_ms + span.max(SEGMENT_MS)).min(window_ms);
            if back_ms > onset_ms {
                plan.drift.push(DriftWindow {
                    out_ms: onset_ms,
                    back_ms,
                    fraction: crowd.drift_fraction.clamp(0.0, 1.0),
                    epicenter_shards: crowd.epicenter_shards as u64,
                });
            }
        }
    }

    // Normalize: an all-ones curve is no curve (non-epicenter shards
    // keep their flat rate and only drift), and a plan with neither
    // curve nor drift is the flat plan — the engine then takes the
    // exact original arrival path.
    if plan
        .segments
        .iter()
        .all(|s| (s.multiplier - 1.0).abs() < 1e-12)
    {
        plan.segments.clear();
        plan.peak = 0.0;
    }
    if plan.segments.is_empty() && plan.drift.is_empty() {
        return DemandPlan::default();
    }
    plan
}

/// The overload-control knob block: the three mechanisms a real core
/// raises against a demand shock. `Default` is everything off, which
/// leaves every node on its historical code path (byte-identical runs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OverloadControls {
    /// VMSC paging-request throttle: at most this many pages per
    /// simulated second; excess pages queue (bounded) and then shed.
    /// `0` disables the throttle.
    pub paging_rate_per_s: u32,
    /// Gatekeeper ARJ load shedding: new admissions that would push
    /// bandwidth utilization above this fraction are rejected with
    /// network-congestion, feeding the VMSC's bounded ARQ retry ladder.
    /// `0.0` disables shedding.
    pub gk_shed_utilization: f64,
    /// SGSN PDP admission control: at most this many PDP-context
    /// activations admitted per simulated second; excess queues
    /// (bounded) and then rejects with a q850 congestion cause.
    /// `0` disables admission control.
    pub pdp_rate_per_s: u32,
}

impl Default for OverloadControls {
    fn default() -> Self {
        OverloadControls { paging_rate_per_s: 0, gk_shed_utilization: 0.0, pdp_rate_per_s: 0 }
    }
}

impl OverloadControls {
    /// The surge harness's canonical "controls on" setting, sized for
    /// its per-shard population. The shed threshold sits at the
    /// admission-budget boundary: every admission the budget would
    /// hard-reject is shed with a retryable congestion cause instead,
    /// so overload degrades to deferred setups rather than failures
    /// while the budget itself is unchanged.
    pub fn standard() -> Self {
        OverloadControls {
            paging_rate_per_s: 5,
            gk_shed_utilization: 1.0,
            pdp_rate_per_s: 8,
        }
    }

    /// True if any control is active.
    pub fn enabled(&self) -> bool {
        self.paging_rate_per_s > 0 || self.gk_shed_utilization > 0.0 || self.pdp_rate_per_s > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_scenario_compiles_to_flat_plan() {
        let plan = compile_demand(&ScenarioConfig::default(), 42, 0, 300);
        assert!(plan.is_flat());
        assert_eq!(plan, DemandPlan::default());
        // Intensity <= 1.0 is a zero-shock point, not a degenerate crowd.
        for intensity in [0.0, 0.5, 1.0] {
            let plan = compile_demand(&ScenarioConfig::flash(intensity), 42, 0, 300);
            assert!(plan.is_flat(), "flash({intensity}) must be flat");
        }
    }

    #[test]
    fn plans_are_deterministic() {
        let cfg = ScenarioConfig::flash(10.0);
        let a = compile_demand(&cfg, 0xD15EA5E, 1, 300);
        let b = compile_demand(&cfg, 0xD15EA5E, 1, 300);
        assert_eq!(a, b);
        assert!(!a.is_flat());
    }

    #[test]
    fn shards_and_seeds_get_independent_jitter() {
        let cfg = ScenarioConfig::flash(10.0);
        let a = compile_demand(&cfg, 42, 0, 300);
        let c = compile_demand(&cfg, 43, 0, 300);
        assert_ne!(a, c, "seed must vary the plan");
        // Two epicenter shards: same spec, independently jittered onsets.
        let mut wide = ScenarioConfig::flash(10.0);
        wide.crowds[0].epicenter_shards = 2;
        let s0 = compile_demand(&wide, 42, 0, 300);
        let s1 = compile_demand(&wide, 42, 1, 300);
        assert_ne!(s0, s1, "shard index must vary the stagger");
    }

    #[test]
    fn epicenter_gets_rate_others_get_drift() {
        let cfg = ScenarioConfig::flash(10.0);
        let epi = compile_demand(&cfg, 42, 0, 300);
        assert!(epi.peak > 5.0, "epicenter must carry the spike: {}", epi.peak);
        assert!(epi.drift.is_empty(), "epicenter shards do not drift");
        let other = compile_demand(&cfg, 42, 1, 300);
        assert!(other.segments.is_empty(), "non-epicenter rate stays flat");
        assert_eq!(other.drift.len(), 1);
        let d = other.drift[0];
        assert!(d.back_ms > d.out_ms && d.back_ms <= 300_000);
        assert!((d.fraction - 0.30).abs() < 1e-12);
        assert_eq!(d.epicenter_shards, 1);
    }

    #[test]
    fn peak_is_monotone_in_intensity() {
        let peaks: Vec<f64> = [1.0, 4.0, 10.0, 25.0]
            .iter()
            .map(|&i| compile_demand(&ScenarioConfig::flash(i), 7, 0, 300).envelope())
            .collect();
        for pair in peaks.windows(2) {
            assert!(pair[0] <= pair[1], "envelope shrank: {peaks:?}");
        }
        assert!(peaks[3] > peaks[1]);
    }

    #[test]
    fn segments_tile_the_window_sorted_and_coalesced() {
        let plan = compile_demand(&ScenarioConfig::flash(25.0), 99, 0, 300);
        let mut cursor = 0;
        for pair in plan.segments.windows(2) {
            assert!(
                pair[0].multiplier != pair[1].multiplier,
                "adjacent equal segments must coalesce"
            );
        }
        for s in &plan.segments {
            assert_eq!(s.from_ms, cursor, "segments must tile contiguously");
            assert!(s.to_ms > s.from_ms);
            assert!(s.multiplier >= 0.0 && s.multiplier <= MAX_MULTIPLIER);
            cursor = s.to_ms;
        }
        assert_eq!(cursor, 300_000);
        assert!((plan.envelope() - plan.peak).abs() < 1e-12);
    }

    #[test]
    fn multiplier_lookup_and_peak_attribution() {
        let plan = compile_demand(&ScenarioConfig::flash(10.0), 42, 0, 300);
        // Before onset (minus jitter slack) the curve is flat.
        assert_eq!(plan.multiplier_at_ms(1_000), 1.0);
        assert!(!plan.in_peak(1_000));
        // Mid-plateau (onset ~20% + ramp 10% → plateau spans ~30–60%).
        let mid = 135_000;
        assert!(plan.multiplier_at_ms(mid) > 5.0, "plateau missing at {mid}");
        assert!(plan.in_peak(mid));
        // Past the end of every segment the curve is flat again.
        assert_eq!(plan.multiplier_at_ms(10_000_000), 1.0);
    }

    #[test]
    fn diurnal_profile_shapes_the_curve() {
        let cfg = ScenarioConfig { profile: DailyProfile::diurnal(), crowds: Vec::new() };
        assert!(!cfg.is_flat());
        let plan = compile_demand(&cfg, 42, 3, 600);
        assert!(!plan.is_flat());
        assert!(plan.drift.is_empty(), "a profile alone never drifts");
        // The 17:00→19:00 slice rises into the evening peak.
        let early = plan.multiplier_at_ms(30_000);
        let late = plan.multiplier_at_ms(450_000);
        assert!(late > early, "evening ramp missing: {early} → {late}");
    }

    #[test]
    fn profile_interpolates_and_wraps() {
        let p = DailyProfile::diurnal();
        let m = DailyProfile { start_hour: 23.5, span_hours: 1.0, ..p.clone() };
        // 23.5h → halfway between hour 23 and hour 0 (wrap).
        let expect = (p.hourly[23] + p.hourly[0]) / 2.0;
        assert!((m.multiplier_at(0.0) - expect).abs() < 1e-9);
        assert!(DailyProfile::default().is_flat());
        assert!(!p.is_flat());
    }

    #[test]
    fn controls_default_off() {
        let off = OverloadControls::default();
        assert!(!off.enabled());
        assert!(OverloadControls::standard().enabled());
        assert!(OverloadControls { paging_rate_per_s: 1, ..off }.enabled());
        assert!(OverloadControls { gk_shed_utilization: 0.5, ..off }.enabled());
        assert!(OverloadControls { pdp_rate_per_s: 9, ..off }.enabled());
    }
}
