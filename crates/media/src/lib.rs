//! # vgprs-media — the voice media plane
//!
//! Frame-level voice modeling for the reproduction's experiments:
//!
//! * [`Vocoder`] — GSM-FR / G.711 frame parameters (cadence, size,
//!   processing delay, E-model impairments),
//! * [`JitterBuffer`] — receiver-side playout buffering with late-frame
//!   accounting,
//! * [`EModel`] — ITU-T G.107 transmission rating and MOS,
//! * [`StreamAnalyzer`] — the one instrument every voice experiment
//!   scores through,
//! * [`TalkspurtModel`] — Brady on/off conversational activity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod emodel;
mod jitter;
mod talkspurt;
mod vocoder;

pub use analyzer::{FrameRecord, StreamAnalyzer, VoiceScore};
pub use emodel::EModel;
pub use jitter::{JitterBuffer, PlayoutOutcome};
pub use talkspurt::TalkspurtModel;
pub use vocoder::Vocoder;
