//! GSM full-rate vocoder model.
//!
//! The real GSM 06.10 RPE-LTP DSP is replaced by a frame-accurate model
//! (see DESIGN.md's substitution table): what the experiments need is the
//! frame cadence (20 ms), the frame size (260 bits), the codec's lookahead
//! and processing latency, and its E-model equipment impairment — not the
//! audio samples.

use vgprs_sim::SimDuration;

/// Frame-level parameters of a voice codec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vocoder {
    /// Time covered by one frame.
    pub frame_interval: SimDuration,
    /// Encoded bits per frame.
    pub bits_per_frame: u32,
    /// One-way algorithmic + processing delay added by an encode or a
    /// decode pass.
    pub processing_delay: SimDuration,
    /// ITU-T G.113 equipment impairment factor (Ie) for the E-model.
    pub impairment_ie: f64,
    /// Packet-loss robustness factor (Bpl) for the E-model.
    pub loss_robustness_bpl: f64,
}

impl Vocoder {
    /// GSM full rate (GSM 06.10): 20 ms / 260-bit frames, Ie = 20.
    pub fn gsm_full_rate() -> Self {
        Vocoder {
            frame_interval: SimDuration::from_millis(20),
            bits_per_frame: 260,
            processing_delay: SimDuration::from_millis(10),
            impairment_ie: 20.0,
            loss_robustness_bpl: 10.0,
        }
    }

    /// G.711 64 kbit/s PCM (used when the far end is a plain phone).
    pub fn g711() -> Self {
        Vocoder {
            frame_interval: SimDuration::from_millis(20),
            bits_per_frame: 1280,
            processing_delay: SimDuration::from_millis(1),
            impairment_ie: 0.0,
            loss_robustness_bpl: 4.3,
        }
    }

    /// Encoded frame size in whole bytes (bits rounded up).
    pub fn frame_bytes(&self) -> usize {
        self.bits_per_frame.div_ceil(8) as usize
    }

    /// Net bit rate in bits per second.
    pub fn bit_rate_bps(&self) -> u64 {
        let frames_per_second = 1_000_000 / self.frame_interval.as_micros();
        u64::from(self.bits_per_frame) * frames_per_second
    }

    /// Delay of one tandem transcoding stage (decode + re-encode), as the
    /// VMSC performs between the circuit leg and the RTP leg.
    pub fn transcoding_delay(&self) -> SimDuration {
        self.processing_delay * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gsm_fr_parameters() {
        let v = Vocoder::gsm_full_rate();
        assert_eq!(v.frame_bytes(), 33);
        assert_eq!(v.bit_rate_bps(), 13_000);
        assert_eq!(v.transcoding_delay(), SimDuration::from_millis(20));
    }

    #[test]
    fn g711_parameters() {
        let v = Vocoder::g711();
        assert_eq!(v.frame_bytes(), 160);
        assert_eq!(v.bit_rate_bps(), 64_000);
        assert_eq!(v.impairment_ie, 0.0);
    }
}
