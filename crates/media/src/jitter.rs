//! Receiver-side jitter buffer.
//!
//! Frames arriving over a packet network are re-timed before playout: the
//! buffer trades extra delay for fewer late losses. The C1 experiment runs
//! both systems' frame streams through the same buffer so their MOS
//! scores are directly comparable.

use vgprs_sim::{SimDuration, SimTime};

/// What happened to a frame offered to the buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlayoutOutcome {
    /// The frame arrived in time and will play at its slot.
    OnTime,
    /// The frame arrived after its playout slot and is discarded.
    Late,
    /// A frame with this sequence number was already accepted.
    Duplicate,
}

/// A fixed-playout-point jitter buffer.
///
/// The playout clock starts when the first frame arrives: frame `s` plays
/// at `first_arrival + playout_delay + (s - first_seq) × frame_interval`.
///
/// # Examples
///
/// ```rust
/// use vgprs_media::JitterBuffer;
/// use vgprs_sim::{SimDuration, SimTime};
///
/// let mut jb = JitterBuffer::new(SimDuration::from_millis(60), SimDuration::from_millis(20));
/// jb.offer(1, SimTime::from_micros(0));
/// jb.offer(2, SimTime::from_micros(15_000));
/// assert_eq!(jb.accepted(), 2);
/// ```
#[derive(Debug)]
pub struct JitterBuffer {
    playout_delay: SimDuration,
    frame_interval: SimDuration,
    first: Option<(u32, SimTime)>,
    highest_seq: u32,
    accepted: u64,
    late: u64,
    duplicates: u64,
    seen: std::collections::HashSet<u32>,
}

impl JitterBuffer {
    /// Creates a buffer with the given playout delay and frame cadence.
    pub fn new(playout_delay: SimDuration, frame_interval: SimDuration) -> Self {
        JitterBuffer {
            playout_delay,
            frame_interval,
            first: None,
            highest_seq: 0,
            accepted: 0,
            late: 0,
            duplicates: 0,
            seen: std::collections::HashSet::new(),
        }
    }

    /// The playout deadline for sequence number `seq`, once the clock has
    /// started. `None` before the first frame.
    pub fn playout_time(&self, seq: u32) -> Option<SimTime> {
        let (first_seq, first_arrival) = self.first?;
        let slots = seq.saturating_sub(first_seq) as u64;
        Some(first_arrival + self.playout_delay + self.frame_interval * slots)
    }

    /// Offers a frame to the buffer.
    pub fn offer(&mut self, seq: u32, arrival: SimTime) -> PlayoutOutcome {
        if self.first.is_none() {
            self.first = Some((seq, arrival));
        }
        if !self.seen.insert(seq) {
            self.duplicates += 1;
            return PlayoutOutcome::Duplicate;
        }
        self.highest_seq = self.highest_seq.max(seq);
        let deadline = self.playout_time(seq).expect("clock started above");
        if arrival > deadline {
            self.late += 1;
            PlayoutOutcome::Late
        } else {
            self.accepted += 1;
            PlayoutOutcome::OnTime
        }
    }

    /// Frames accepted for playout.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Frames discarded as late.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Duplicate frames discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Frames that never arrived, inferred from sequence gaps.
    pub fn missing(&self) -> u64 {
        let Some((first_seq, _)) = self.first else {
            return 0;
        };
        let expected = u64::from(self.highest_seq - first_seq) + 1;
        expected.saturating_sub(self.accepted + self.late)
    }

    /// Effective loss ratio experienced by the listener: late frames and
    /// never-arrived frames both play as gaps.
    pub fn effective_loss(&self) -> f64 {
        let Some((first_seq, _)) = self.first else {
            return 0.0;
        };
        let expected = (u64::from(self.highest_seq - first_seq) + 1) as f64;
        if expected == 0.0 {
            return 0.0;
        }
        (self.late + self.missing()) as f64 / expected
    }

    /// The buffering delay added to every on-time frame.
    pub fn playout_delay(&self) -> SimDuration {
        self.playout_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jb() -> JitterBuffer {
        JitterBuffer::new(SimDuration::from_millis(60), SimDuration::from_millis(20))
    }

    #[test]
    fn on_time_frames_accepted() {
        let mut b = jb();
        // frame 1 at t=0 → plays at 60 ms; frame 2 → 80 ms; frame 3 → 100 ms
        assert_eq!(b.offer(1, SimTime::from_micros(0)), PlayoutOutcome::OnTime);
        assert_eq!(
            b.offer(2, SimTime::from_micros(70_000)),
            PlayoutOutcome::OnTime
        );
        assert_eq!(
            b.offer(3, SimTime::from_micros(99_000)),
            PlayoutOutcome::OnTime
        );
        assert_eq!(b.accepted(), 3);
        assert_eq!(b.effective_loss(), 0.0);
    }

    #[test]
    fn late_frame_discarded() {
        let mut b = jb();
        b.offer(1, SimTime::from_micros(0));
        assert_eq!(
            b.offer(2, SimTime::from_micros(81_000)),
            PlayoutOutcome::Late
        );
        assert_eq!(b.late(), 1);
        assert!(b.effective_loss() > 0.0);
    }

    #[test]
    fn duplicates_rejected() {
        let mut b = jb();
        b.offer(1, SimTime::from_micros(0));
        assert_eq!(
            b.offer(1, SimTime::from_micros(1_000)),
            PlayoutOutcome::Duplicate
        );
        assert_eq!(b.duplicates(), 1);
        assert_eq!(b.accepted(), 1);
    }

    #[test]
    fn gaps_counted_as_missing() {
        let mut b = jb();
        b.offer(1, SimTime::from_micros(0));
        b.offer(5, SimTime::from_micros(80_000)); // plays at 60+4*20=140ms, on time
        assert_eq!(b.accepted(), 2);
        assert_eq!(b.missing(), 3); // frames 2,3,4
        assert!((b.effective_loss() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_buffer_is_lossless() {
        let b = jb();
        assert_eq!(b.missing(), 0);
        assert_eq!(b.effective_loss(), 0.0);
        assert_eq!(b.playout_time(1), None);
    }
}
