//! Conversational speech activity model (Brady on/off).
//!
//! Load experiments don't send continuous voice: speakers alternate
//! talkspurts and silences. P. Brady's classic measurements give mean
//! talkspurt ≈ 1.0 s and mean silence ≈ 1.35 s, exponentially
//! distributed — that duty cycle (~42 %) sets how much air capacity the
//! packet baseline actually fights over in experiment C1.

use vgprs_sim::{SimDuration, SimRng};

/// An on/off speech activity source.
#[derive(Clone, Copy, Debug)]
pub struct TalkspurtModel {
    /// Mean talkspurt length.
    pub mean_talk: SimDuration,
    /// Mean silence length.
    pub mean_silence: SimDuration,
}

impl TalkspurtModel {
    /// Brady's conversational-speech parameters.
    pub fn brady() -> Self {
        TalkspurtModel {
            mean_talk: SimDuration::from_millis(1_000),
            mean_silence: SimDuration::from_millis(1_350),
        }
    }

    /// A source that never pauses (continuous tone / worst case).
    pub fn continuous() -> Self {
        TalkspurtModel {
            mean_talk: SimDuration::from_secs(3_600),
            mean_silence: SimDuration::ZERO,
        }
    }

    /// Samples the next talkspurt duration.
    pub fn sample_talk(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.exponential(self.mean_talk.as_secs_f64()))
    }

    /// Samples the next silence duration.
    pub fn sample_silence(&self, rng: &mut SimRng) -> SimDuration {
        if self.mean_silence.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(rng.exponential(self.mean_silence.as_secs_f64()))
        }
    }

    /// Long-run fraction of time spent talking.
    pub fn activity_factor(&self) -> f64 {
        let t = self.mean_talk.as_secs_f64();
        let s = self.mean_silence.as_secs_f64();
        t / (t + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brady_activity_factor() {
        let m = TalkspurtModel::brady();
        assert!((m.activity_factor() - 0.4255).abs() < 0.001);
    }

    #[test]
    fn continuous_never_pauses() {
        let m = TalkspurtModel::continuous();
        assert_eq!(m.activity_factor(), 1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(m.sample_silence(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn samples_follow_means() {
        let m = TalkspurtModel::brady();
        let mut rng = SimRng::new(42);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_talk(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "sample mean {mean}");
    }
}
