//! ITU-T G.107 E-model voice-quality scoring (simplified).
//!
//! Quantifies the paper's Section 6 "real-time communication" claim: a
//! voice path is scored from its one-way mouth-to-ear delay, its effective
//! frame loss, and the codec's equipment impairment. The resulting MOS
//! lets experiment C1 compare vGPRS's circuit-switched air interface with
//! the TR 22.973 baseline's contended packet air interface on one scale.

use vgprs_sim::SimDuration;

use crate::vocoder::Vocoder;

/// Default transmission rating with no impairments (G.107).
const R0: f64 = 93.2;

/// The E-model calculator for one codec.
#[derive(Clone, Copy, Debug)]
pub struct EModel {
    ie: f64,
    bpl: f64,
}

impl EModel {
    /// Builds the model from a codec's impairment parameters.
    pub fn for_codec(codec: &Vocoder) -> Self {
        EModel {
            ie: codec.impairment_ie,
            bpl: codec.loss_robustness_bpl,
        }
    }

    /// Delay impairment Id (G.107 simplified form, G.114 alignment):
    /// negligible below ~100 ms, growing sharply past 177.3 ms.
    pub fn delay_impairment(one_way: SimDuration) -> f64 {
        let d = one_way.as_secs_f64() * 1000.0;
        let base = 0.024 * d;
        let knee = if d > 177.3 { 0.11 * (d - 177.3) } else { 0.0 };
        base + knee
    }

    /// Effective equipment impairment under loss (G.107 §7.2):
    /// `Ie_eff = Ie + (95 − Ie) · Ppl / (Ppl + Bpl)`.
    pub fn loss_impairment(&self, loss_ratio: f64) -> f64 {
        let ppl = (loss_ratio.clamp(0.0, 1.0)) * 100.0;
        self.ie + (95.0 - self.ie) * ppl / (ppl + self.bpl)
    }

    /// The transmission rating R for a path.
    pub fn rating(&self, one_way_delay: SimDuration, loss_ratio: f64) -> f64 {
        (R0 - Self::delay_impairment(one_way_delay) - self.loss_impairment(loss_ratio))
            .clamp(0.0, 100.0)
    }

    /// Maps an R rating to a mean opinion score (G.107 Annex B).
    pub fn mos_from_rating(r: f64) -> f64 {
        if r <= 0.0 {
            return 1.0;
        }
        if r >= 100.0 {
            return 4.5;
        }
        1.0 + 0.035 * r + r * (r - 60.0) * (100.0 - r) * 7e-6
    }

    /// Convenience: MOS for a path.
    pub fn mos(&self, one_way_delay: SimDuration, loss_ratio: f64) -> f64 {
        Self::mos_from_rating(self.rating(one_way_delay, loss_ratio))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gsm() -> EModel {
        EModel::for_codec(&Vocoder::gsm_full_rate())
    }

    #[test]
    fn perfect_path_scores_well() {
        let mos = gsm().mos(SimDuration::from_millis(20), 0.0);
        assert!(mos > 3.5, "clean GSM call should be good: {mos}");
    }

    #[test]
    fn delay_monotonically_hurts() {
        let m = gsm();
        let a = m.mos(SimDuration::from_millis(50), 0.0);
        let b = m.mos(SimDuration::from_millis(200), 0.0);
        let c = m.mos(SimDuration::from_millis(400), 0.0);
        assert!(a > b && b > c, "{a} > {b} > {c} expected");
    }

    #[test]
    fn loss_monotonically_hurts() {
        let m = gsm();
        let a = m.mos(SimDuration::from_millis(50), 0.0);
        let b = m.mos(SimDuration::from_millis(50), 0.05);
        let c = m.mos(SimDuration::from_millis(50), 0.20);
        assert!(a > b && b > c, "{a} > {b} > {c} expected");
    }

    #[test]
    fn knee_at_g114_threshold() {
        // Id grows faster past 177.3 ms.
        let below = EModel::delay_impairment(SimDuration::from_millis(170));
        let above = EModel::delay_impairment(SimDuration::from_millis(190));
        let slope_below = below - EModel::delay_impairment(SimDuration::from_millis(150));
        let slope_above = above - below;
        assert!(slope_above > slope_below);
    }

    #[test]
    fn mos_bounds() {
        assert_eq!(EModel::mos_from_rating(-5.0), 1.0);
        assert_eq!(EModel::mos_from_rating(150.0), 4.5);
        let mid = EModel::mos_from_rating(70.0);
        assert!((1.0..=4.5).contains(&mid));
    }

    #[test]
    fn g711_better_than_gsm_fr() {
        let g711 = EModel::for_codec(&Vocoder::g711());
        let d = SimDuration::from_millis(50);
        assert!(g711.mos(d, 0.0) > gsm().mos(d, 0.0));
    }

    #[test]
    fn total_loss_is_unusable() {
        let mos = gsm().mos(SimDuration::from_millis(50), 1.0);
        assert!(mos < 2.0, "{mos}");
    }
}
