//! End-to-end voice-path analysis.
//!
//! Collects per-frame (sequence, origin, arrival) records from a receiver,
//! replays them through a [`JitterBuffer`], and scores the path with the
//! [`EModel`]. This is the single instrument every voice experiment
//! reports through, so vGPRS and baseline numbers are produced
//! identically.

use vgprs_sim::{SimDuration, SimTime};

use crate::emodel::EModel;
use crate::jitter::JitterBuffer;
use crate::vocoder::Vocoder;

/// One received frame observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameRecord {
    /// Sender-side sequence number.
    pub seq: u32,
    /// When the frame was created (simulated microseconds).
    pub origin_us: u64,
    /// When it arrived at the listener.
    pub arrival: SimTime,
}

/// The scored result of a voice path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VoiceScore {
    /// Frames observed at the receiver.
    pub frames: u64,
    /// Mean network one-way delay (origin → arrival).
    pub mean_network_delay: SimDuration,
    /// 95th-percentile network delay.
    pub p95_network_delay: SimDuration,
    /// Effective loss after the jitter buffer (late + missing).
    pub effective_loss: f64,
    /// Mouth-to-ear delay used for scoring: mean network delay + codec
    /// processing + jitter-buffer playout delay.
    pub mouth_to_ear: SimDuration,
    /// E-model transmission rating.
    pub rating: f64,
    /// Mean opinion score (1.0–4.5).
    pub mos: f64,
}

/// Collects frames and produces a [`VoiceScore`].
#[derive(Debug)]
pub struct StreamAnalyzer {
    codec: Vocoder,
    playout_delay: SimDuration,
    records: Vec<FrameRecord>,
}

impl StreamAnalyzer {
    /// Creates an analyzer for a codec with a receiver jitter buffer of
    /// the given playout delay.
    pub fn new(codec: Vocoder, playout_delay: SimDuration) -> Self {
        StreamAnalyzer {
            codec,
            playout_delay,
            records: Vec::new(),
        }
    }

    /// Records one received frame.
    pub fn record(&mut self, seq: u32, origin_us: u64, arrival: SimTime) {
        self.records.push(FrameRecord {
            seq,
            origin_us,
            arrival,
        });
    }

    /// Number of frames recorded so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no frames were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Scores the collected stream.
    ///
    /// Returns `None` if no frames were recorded (no path at all is a
    /// different failure from a scored-bad path, so it is not given a
    /// fake MOS of 1.0).
    pub fn score(&self) -> Option<VoiceScore> {
        if self.records.is_empty() {
            return None;
        }
        let mut jb = JitterBuffer::new(self.playout_delay, self.codec.frame_interval);
        let mut delays_us: Vec<u64> = Vec::with_capacity(self.records.len());
        for r in &self.records {
            jb.offer(r.seq, r.arrival);
            delays_us.push(r.arrival.as_micros().saturating_sub(r.origin_us));
        }
        delays_us.sort_unstable();
        let mean_us = delays_us.iter().sum::<u64>() / delays_us.len() as u64;
        let p95_us = delays_us[((delays_us.len() - 1) as f64 * 0.95).round() as usize];
        let mean_network_delay = SimDuration::from_micros(mean_us);
        let mouth_to_ear =
            mean_network_delay + self.codec.transcoding_delay() + self.playout_delay;
        let loss = jb.effective_loss();
        let model = EModel::for_codec(&self.codec);
        let rating = model.rating(mouth_to_ear, loss);
        Some(VoiceScore {
            frames: self.records.len() as u64,
            mean_network_delay,
            p95_network_delay: SimDuration::from_micros(p95_us),
            effective_loss: loss,
            mouth_to_ear,
            rating,
            mos: EModel::mos_from_rating(rating),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzer() -> StreamAnalyzer {
        StreamAnalyzer::new(Vocoder::gsm_full_rate(), SimDuration::from_millis(60))
    }

    /// Feeds a clean stream: `n` frames, constant one-way delay.
    fn feed_clean(a: &mut StreamAnalyzer, n: u32, delay_ms: u64) {
        for seq in 1..=n {
            let origin = u64::from(seq) * 20_000;
            a.record(
                seq,
                origin,
                SimTime::from_micros(origin + delay_ms * 1000),
            );
        }
    }

    #[test]
    fn clean_stream_scores_high() {
        let mut a = analyzer();
        feed_clean(&mut a, 200, 30);
        let s = a.score().expect("frames present");
        assert_eq!(s.frames, 200);
        assert_eq!(s.effective_loss, 0.0);
        assert_eq!(s.mean_network_delay, SimDuration::from_millis(30));
        // 30 net + 20 codec + 60 jitter = 110 ms mouth-to-ear
        assert_eq!(s.mouth_to_ear, SimDuration::from_millis(110));
        assert!(s.mos > 3.3, "{}", s.mos);
    }

    #[test]
    fn lossy_stream_scores_lower() {
        let mut clean = analyzer();
        feed_clean(&mut clean, 100, 30);
        let mut lossy = analyzer();
        for seq in 1..=100u32 {
            if seq % 5 == 0 {
                continue; // 20 % loss
            }
            let origin = u64::from(seq) * 20_000;
            lossy.record(seq, origin, SimTime::from_micros(origin + 30_000));
        }
        let c = clean.score().unwrap();
        let l = lossy.score().unwrap();
        assert!(l.effective_loss > 0.15);
        assert!(l.mos < c.mos);
    }

    #[test]
    fn jittered_stream_counts_late_frames() {
        let mut a = analyzer();
        // every 4th frame delayed past the playout point
        for seq in 1..=100u32 {
            let origin = u64::from(seq) * 20_000;
            let delay = if seq % 4 == 0 { 200_000 } else { 10_000 };
            a.record(seq, origin, SimTime::from_micros(origin + delay));
        }
        let s = a.score().unwrap();
        assert!(s.effective_loss > 0.2, "{}", s.effective_loss);
    }

    #[test]
    fn empty_stream_has_no_score() {
        assert!(analyzer().score().is_none());
        assert!(analyzer().is_empty());
    }

    #[test]
    fn percentile_reflects_tail() {
        let mut a = analyzer();
        for seq in 1..=100u32 {
            let origin = u64::from(seq) * 20_000;
            let delay = if seq > 94 { 90_000 } else { 10_000 };
            a.record(seq, origin, SimTime::from_micros(origin + delay));
        }
        let s = a.score().unwrap();
        assert_eq!(s.p95_network_delay, SimDuration::from_millis(90));
        assert!(s.mean_network_delay < SimDuration::from_millis(20));
    }
}
