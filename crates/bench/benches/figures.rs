//! One benchmark per paper figure: each regenerates the figure's
//! scenario end-to-end, so `cargo bench` re-validates every reproduction
//! while measuring its simulation cost.

use criterion::{criterion_group, criterion_main, Criterion};
use vgprs_bench::scenarios::{
    intersystem_handoff, tromboning_classic, tromboning_vgprs, SingleZone,
};
use vgprs_sim::SimDuration;
use vgprs_wire::{CallId, Command, Message};

fn figures_1_to_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(15);
    // Figures 1–4 are all exercised by the registration scenario.
    g.bench_function("fig1_to_fig4_registration", |b| {
        b.iter(|| {
            let s = SingleZone::build(42);
            assert!(s
                .net
                .trace()
                .contains_subsequence(&["Um_Location_Update_Request", "RAS_RCF"]));
            s
        })
    });
    g.finish();
}

fn figure_5_and_6(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(15);
    g.bench_function("fig5_origination_release", |b| {
        b.iter_batched(
            || SingleZone::build(42),
            |mut s| {
                s.call_from_ms(CallId(1), SimDuration::from_secs(1));
                s.hangup_from_ms();
                s
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("fig6_termination", |b| {
        b.iter_batched(
            || SingleZone::build(42),
            |mut s| {
                let called = s.ms_msisdn;
                s.net.inject(
                    SimDuration::ZERO,
                    s.term,
                    Message::Cmd(Command::Dial {
                        call: CallId(2),
                        called,
                    }),
                );
                let deadline = s.net.now() + SimDuration::from_secs(8);
                s.net.run_until(deadline);
                s
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn figures_7_to_9(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig7_tromboning_classic", |b| {
        b.iter(|| {
            let r = tromboning_classic(42);
            assert_eq!(r.international_trunks, 2);
            r
        })
    });
    g.bench_function("fig8_tromboning_vgprs", |b| {
        b.iter(|| {
            let r = tromboning_vgprs(42, true);
            assert_eq!(r.international_trunks, 0);
            r
        })
    });
    g.bench_function("fig9_intersystem_handoff", |b| {
        b.iter(|| {
            let r = intersystem_handoff(42);
            assert_eq!(r.handoffs_completed, 1);
            r
        })
    });
    g.finish();
}

criterion_group!(benches, figures_1_to_4, figure_5_and_6, figures_7_to_9);
criterion_main!(benches);
