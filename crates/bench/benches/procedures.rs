//! End-to-end procedure benchmarks: how fast the simulator executes the
//! paper's full signaling procedures (registrations and calls per second
//! of wall-clock time).

use criterion::{criterion_group, criterion_main, Criterion};
use vgprs_bench::scenarios::{SingleZone, TrSingleZone};
use vgprs_sim::SimDuration;
use vgprs_wire::CallId;

fn registration(c: &mut Criterion) {
    let mut g = c.benchmark_group("procedures");
    g.sample_size(20);
    g.bench_function("vgprs_full_registration", |b| {
        b.iter(|| SingleZone::build(42))
    });
    g.bench_function("tr_full_registration", |b| {
        b.iter(|| TrSingleZone::build(42))
    });
    g.finish();
}

fn call_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("procedures");
    g.sample_size(20);
    g.bench_function("vgprs_call_and_release", |b| {
        b.iter_batched(
            || SingleZone::build(42),
            |mut s| {
                s.call_from_ms(CallId(1), SimDuration::from_secs(1));
                s.hangup_from_ms();
                s
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, registration, call_cycle);
criterion_main!(benches);
