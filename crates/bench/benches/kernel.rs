//! Simulation-kernel throughput: how many events per second the
//! discrete-event core sustains.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vgprs_sim::{Context, Interface, Network, Node, NodeId, Payload, SimDuration};

#[derive(Clone, Debug)]
struct Ball(u32);
impl Payload for Ball {
    fn label(&self) -> String {
        "Ball".into()
    }
    fn traceable(&self) -> bool {
        false // measure the kernel, not trace recording
    }
}

struct Player {
    peer: Option<NodeId>,
    remaining: u32,
}
impl Node<Ball> for Player {
    fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
        if let Some(p) = self.peer {
            ctx.send(p, Ball(self.remaining));
        }
    }
    fn on_message(&mut self, ctx: &mut Context<'_, Ball>, from: NodeId, _i: Interface, b: Ball) {
        if b.0 > 0 {
            ctx.send(from, Ball(b.0 - 1));
        }
    }
}

fn ping_pong(c: &mut Criterion) {
    let events: u32 = 100_000;
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(u64::from(events)));
    g.bench_function("ping_pong_100k_events", |b| {
        b.iter(|| {
            let mut net = Network::new(1);
            let a = net.add_node("a", Player { peer: None, remaining: 0 });
            let bn = net.add_node(
                "b",
                Player {
                    peer: Some(a),
                    remaining: events,
                },
            );
            net.connect(a, bn, Interface::Lan, SimDuration::from_micros(10));
            net.run_until_quiescent()
        })
    });
    g.finish();
}

fn timer_churn(c: &mut Criterion) {
    struct Ticker {
        remaining: u32,
    }
    impl Node<Ball> for Ticker {
        fn on_start(&mut self, ctx: &mut Context<'_, Ball>) {
            ctx.set_timer(SimDuration::from_micros(10), 0);
        }
        fn on_message(&mut self, _c: &mut Context<'_, Ball>, _f: NodeId, _i: Interface, _m: Ball) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, Ball>, _t: vgprs_sim::TimerToken, _tag: u64) {
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(SimDuration::from_micros(10), 0);
            }
        }
    }
    let events: u32 = 100_000;
    let mut g = c.benchmark_group("kernel");
    g.throughput(Throughput::Elements(u64::from(events)));
    g.bench_function("timer_churn_100k", |b| {
        b.iter(|| {
            let mut net = Network::new(1);
            net.add_node(
                "ticker",
                Ticker {
                    remaining: events,
                },
            );
            net.run_until_quiescent()
        })
    });
    g.finish();
}

criterion_group!(benches, ping_pong, timer_churn);
criterion_main!(benches);
