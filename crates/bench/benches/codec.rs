//! Micro-benchmarks of the wire codecs (GTP, Q.931, ISUP, RTP).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vgprs_wire::{
    CallId, Cause, Cic, Crv, GtpHeader, GtpMsgType, Ipv4Addr, IsupKind, IsupMessage, Msisdn,
    Q931Kind, Q931Message, RtpPacket, TransportAddr,
};

fn gtp_header(c: &mut Criterion) {
    let h = GtpHeader {
        msg_type: GtpMsgType::TPdu,
        length: 128,
        seq: 777,
        flow: 3,
        tid: 0x1122_3344_5566_7788,
    };
    let bytes = h.encode();
    c.bench_function("gtp_header_encode", |b| b.iter(|| black_box(h).encode()));
    c.bench_function("gtp_header_decode", |b| {
        b.iter(|| GtpHeader::decode(black_box(&bytes)).expect("valid"))
    });
}

fn q931(c: &mut Criterion) {
    let m = Q931Message {
        crv: Crv(42),
        call: CallId(777),
        kind: Q931Kind::Setup {
            calling: Some(Msisdn::parse("886912000001").expect("valid")),
            called: Msisdn::parse("886220001111").expect("valid"),
            signal_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 5), 1720),
            media_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 0, 0, 5), 30_000),
        },
    };
    let bytes = m.encode();
    c.bench_function("q931_setup_encode", |b| b.iter(|| black_box(&m).encode()));
    c.bench_function("q931_setup_decode", |b| {
        b.iter(|| Q931Message::decode(black_box(&bytes)).expect("valid"))
    });
}

fn isup(c: &mut Criterion) {
    let m = IsupMessage {
        cic: Cic(31),
        call: CallId(1234),
        kind: IsupKind::Iam {
            called: Msisdn::parse("85291234567").expect("valid"),
            calling: Some(Msisdn::parse("447700900123").expect("valid")),
        },
    };
    let bytes = m.encode();
    c.bench_function("isup_iam_encode", |b| b.iter(|| black_box(&m).encode()));
    c.bench_function("isup_iam_decode", |b| {
        b.iter(|| IsupMessage::decode(black_box(&bytes)).expect("valid"))
    });
    let rel = IsupMessage {
        cic: Cic(31),
        call: CallId(1234),
        kind: IsupKind::Rel {
            cause: Cause::NormalClearing,
        },
    };
    c.bench_function("isup_rel_roundtrip", |b| {
        b.iter(|| IsupMessage::decode(&black_box(&rel).encode()).expect("valid"))
    });
}

fn rtp(c: &mut Criterion) {
    let p = RtpPacket {
        ssrc: 0xCAFEBABE,
        seq: 4321,
        timestamp: 160_000,
        payload_type: 3,
        marker: false,
        payload_len: 33,
        call: CallId(1),
        origin_us: 0,
    };
    let bytes = p.encode_header();
    c.bench_function("rtp_header_encode", |b| {
        b.iter(|| black_box(&p).encode_header())
    });
    c.bench_function("rtp_header_decode", |b| {
        b.iter(|| RtpPacket::decode_header(black_box(&bytes)).expect("valid"))
    });
}

criterion_group!(benches, gtp_header, q931, isup, rtp);
criterion_main!(benches);
