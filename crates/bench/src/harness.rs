//! Shared plumbing for the `harness` binary's subcommands.
//!
//! Every population-scale subcommand (`load`, `capacity`, `kernelbench`,
//! `chaos`, `surge`) parses the same flag vocabulary into a
//! [`LoadConfig`], prints the same banner style, and stamps the same
//! run-metadata block into its `BENCH_*.json` artifact. Keeping the
//! pieces here means a new subcommand cannot drift from the others.

use vgprs_load::{CallMix, LoadConfig, TrunkFaultClass, TrunkPlanConfig};
use vgprs_sim::Kernel;

/// The master seed every experiment defaults to.
pub const SEED: u64 = 42;

/// Tiny flag parser: `--name value` pairs plus bare `--flag` switches.
pub struct Flags<'a>(pub &'a [String]);

impl Flags<'_> {
    /// The raw value following `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    /// Parses the value of `--name`, exiting with a usage error when the
    /// value does not parse; `default` when the flag is absent.
    pub fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("invalid value {raw:?} for {name}");
                std::process::exit(2);
            }),
        }
    }

    /// Presence of a bare flag with no value (e.g. `--check`).
    pub fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

/// Parses a trunk fault class name (`loss`, `dup`, `reorder`,
/// `partition` — the `trunk_` prefix is optional), exiting with a
/// usage error otherwise.
pub fn parse_trunk_class(raw: &str) -> TrunkFaultClass {
    let key = raw.strip_prefix("trunk_").unwrap_or(raw);
    match key {
        "loss" => TrunkFaultClass::Loss,
        "dup" => TrunkFaultClass::Dup,
        "reorder" => TrunkFaultClass::Reorder,
        "partition" => TrunkFaultClass::Partition,
        _ => {
            eprintln!(
                "invalid value {raw:?} for --trunk-class; expected loss, dup, \
                 reorder, partition or all"
            );
            std::process::exit(2);
        }
    }
}

/// Parses `heap`/`wheel`, exiting with a usage error otherwise.
pub fn parse_kernel(raw: &str) -> Kernel {
    match raw {
        "heap" => Kernel::Heap,
        "wheel" => Kernel::Wheel,
        _ => {
            eprintln!("invalid value {raw:?} for --kernel; expected heap or wheel");
            std::process::exit(2);
        }
    }
}

/// Per-subcommand defaults for the shared flag vocabulary. Start from
/// [`RunDefaults::default`] and override the fields the experiment
/// needs; every field is overridable on the command line.
#[derive(Clone, Debug)]
pub struct RunDefaults {
    /// `--subscribers` default.
    pub subscribers: usize,
    /// `--shards` default (`0` = derive from population).
    pub shards: usize,
    /// `--threads` default (`0` = machine parallelism).
    pub threads: usize,
    /// `--window-secs` default.
    pub window_secs: u64,
    /// `--rate` default (calls per subscriber-hour).
    pub calls_per_sub_hour: f64,
    /// `--hold` default (mean seconds).
    pub mean_hold_secs: f64,
    /// `--mobility` default.
    pub mobility_fraction: f64,
    /// `--gk-bandwidth` default (admission budget per serving area).
    pub gk_bandwidth: u32,
}

impl Default for RunDefaults {
    fn default() -> Self {
        let base = LoadConfig::default();
        RunDefaults {
            subscribers: base.subscribers,
            shards: base.shards,
            threads: base.threads,
            window_secs: base.population.window_secs,
            calls_per_sub_hour: base.population.calls_per_sub_hour,
            mean_hold_secs: base.population.mean_hold_secs,
            mobility_fraction: base.population.mobility_fraction,
            gk_bandwidth: base.gk_bandwidth,
        }
    }
}

/// Builds a [`LoadConfig`] from the shared flag vocabulary over the
/// given per-subcommand defaults.
pub fn load_config_from(flags: &Flags<'_>, defaults: &RunDefaults) -> LoadConfig {
    let mut cfg = LoadConfig {
        subscribers: flags.parse("--subscribers", defaults.subscribers),
        shards: flags.parse("--shards", defaults.shards),
        threads: flags.parse("--threads", defaults.threads),
        seed: flags.parse("--seed", SEED),
        tch_capacity: flags.parse("--tch", 64),
        voice_sample_ms: flags.parse("--voice-sample-ms", 1_000),
        gk_bandwidth: flags.parse("--gk-bandwidth", defaults.gk_bandwidth),
        ..LoadConfig::default()
    };
    cfg.population.window_secs = flags.parse("--window-secs", defaults.window_secs);
    cfg.population.calls_per_sub_hour = flags.parse("--rate", defaults.calls_per_sub_hour);
    cfg.population.mean_hold_secs = flags.parse("--hold", defaults.mean_hold_secs);
    cfg.population.mobility_fraction = flags.parse("--mobility", defaults.mobility_fraction);
    cfg.population.cross_shard_fraction = flags.parse("--cross-shard-rate", 0.0);
    cfg.snapshot_secs = flags.parse("--snapshot-secs", cfg.snapshot_secs);
    let trunk_intensity: f64 = flags.parse("--trunk-intensity", 0.0);
    if trunk_intensity > 0.0 {
        cfg.trunk = match flags.get("--trunk-class") {
            None | Some("all") => TrunkPlanConfig::all(trunk_intensity),
            Some(raw) => TrunkPlanConfig::only(parse_trunk_class(raw), trunk_intensity),
        };
    }
    if let Some(raw) = flags.get("--kernel") {
        cfg.kernel = parse_kernel(raw);
    }
    if let Some(mix) = flags.get("--mix") {
        let parts: Vec<f64> = mix.split(',').filter_map(|p| p.parse().ok()).collect();
        if parts.len() != 3 {
            eprintln!("--mix expects MO,MT,M2M weights, e.g. 0.45,0.45,0.10");
            std::process::exit(2);
        }
        cfg.population.mix = CallMix {
            mo: parts[0],
            mt: parts[1],
            m2m: parts[2],
        };
    }
    cfg
}

/// Writes an artifact, exiting on I/O failure.
pub fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// Prints the section banner every subcommand uses.
pub fn heading(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// outside a repository. Identifies the code that produced an artifact;
/// never part of any fingerprint.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The run-metadata block stamped into every `BENCH_*.json` artifact:
/// enough to re-run the experiment and to trace the artifact back to
/// the code revision. Rendered with a two-space base indent for
/// inclusion as a top-level `"meta"` member.
pub fn meta_json(cfg: &LoadConfig) -> String {
    format!(
        "  \"meta\": {{\"seed\": {}, \"subscribers\": {}, \"shards\": {}, \
         \"threads\": {}, \"kernel\": \"{}\", \"window_secs\": {}, \
         \"git\": \"{}\"}}",
        cfg.seed,
        cfg.subscribers,
        cfg.effective_shards(),
        cfg.effective_threads(),
        cfg.kernel,
        cfg.population.window_secs,
        git_describe()
    )
}
