//! # vgprs-bench — experiment scenarios and harness
//!
//! The library half of the benchmark crate: every figure/claim of the
//! paper is reproduced by a function in [`scenarios`] or [`experiments`],
//! shared by the `harness` binary, the workspace integration tests and
//! the Criterion benches so that all three observe identical systems.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod experiments;
pub mod harness;
pub mod scenarios;
