//! The experiment harness: regenerates every figure and Section 6 claim
//! of the paper on stdout, and hosts the population-scale load tools.
//!
//! ```text
//! harness [fig1|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|c1|c2|c3|c4|c5|all]
//! harness load [--subscribers N] [--threads N] [--shards N] [--seed N]
//!              [--window-secs N] [--rate CALLS_PER_SUB_HOUR] [--hold SECS]
//!              [--mix MO,MT,M2M] [--mobility FRAC] [--cross-shard-rate FRAC]
//!              [--tch N] [--voice-sample-ms N] [--kernel heap|wheel]
//!              [--trunk-intensity F] [--trunk-class CLASS]
//!              [--json PATH] [--snapshots PATH] [--snapshot-secs N]
//!              [--snapshots-per-shard] [--snapshots-csv PATH]
//! harness capacity [--subscribers N] [--threads N] [--seed N]
//!                  [--max-load F] [--refine N] [--json PATH]
//! harness kernelbench [--subscribers N] [--shards N] [--repeat N]
//!                     [--out PATH] [--check]
//! harness chaos [--subscribers N] [--shards N] [--threads N] [--seed N]
//!               [--window-secs N] [--rate F] [--hold SECS] [--out PATH]
//!               [--cross-shard-rate FRAC] [--check]
//! harness surge [--subscribers N] [--shards N] [--threads N] [--seed N]
//!               [--window-secs N] [--rate F] [--hold SECS]
//!               [--gk-bandwidth N] [--paging-rate N] [--gk-shed F]
//!               [--pdp-rate N] [--out PATH] [--check]
//! harness diff BASELINE.json CANDIDATE.json [--thresholds PATH] [--json]
//! harness diff --check [--update-baseline] [--baseline PATH]
//!              [--thresholds PATH]
//! harness bench
//! ```
//!
//! With no argument it runs every paper experiment (`all`). The outputs
//! recorded in `EXPERIMENTS.md` are produced by `harness all`, the
//! capacity table by `harness capacity`, the event-kernel baseline
//! in `BENCH_kernel.json` by `harness kernelbench`, the resilience
//! matrix in `BENCH_chaos.json` by `harness chaos`, and the flash-crowd
//! overload sweep in `BENCH_surge.json` by `harness surge`. `harness
//! diff` compares two such dumps KPI-by-KPI against the thresholds in
//! `diff-thresholds.toml` and exits nonzero on regression; `harness
//! diff --check` is the verify-script gate, diffing a fresh canonical
//! small run against the committed `baselines/load_small.json`.

use std::time::Instant;

use vgprs_bench::diff::{compare, Thresholds};
use vgprs_bench::experiments::{
    c1_voice_quality, c2_idle_ablation, c2_setup_latency, c3_context_memory, c4_signaling,
    c5_handoff_cost, interface_usage,
};
use vgprs_bench::harness::{
    heading, load_config_from, meta_json, write_file, Flags, RunDefaults, SEED,
};
use vgprs_bench::scenarios::{
    intersystem_handoff, tromboning_classic, tromboning_vgprs, SingleZone,
};
use vgprs_load::{
    capacity_knee, run_load, FaultClass, FaultPlanConfig, LoadConfig, OverloadControls,
    ScenarioConfig, TrunkFaultClass, TrunkPlanConfig,
};
use vgprs_sim::{Kernel, LadderDiagram, SimDuration};
use vgprs_wire::{CallId, Command, Message};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg = args.first().map(String::as_str).unwrap_or("all");
    match arg {
        "load" => return load_cmd(&args[1..]),
        "capacity" => return capacity_cmd(&args[1..]),
        "kernelbench" => return kernelbench_cmd(&args[1..]),
        "chaos" => return chaos_cmd(&args[1..]),
        "surge" => return surge_cmd(&args[1..]),
        "diff" => return diff_cmd(&args[1..]),
        "bench" => return bench_cmd(),
        _ => {}
    }
    let all = arg == "all";
    let mut ran = false;
    macro_rules! run {
        ($name:literal, $f:expr) => {
            if all || arg == $name {
                $f;
                ran = true;
            }
        };
    }
    run!("fig1", fig1());
    run!("fig2", fig2());
    run!("fig3", fig3());
    run!("fig4", fig4());
    run!("fig5", fig5());
    run!("fig6", fig6());
    run!("fig7", fig7());
    run!("fig8", fig8());
    run!("fig9", fig9());
    run!("c1", c1());
    run!("c2", c2());
    run!("c2b", c2_ablation());
    run!("c3", c3());
    run!("c4", c4());
    run!("c5", c5());
    if !ran {
        eprintln!(
            "unknown experiment {arg:?}; expected fig1..fig9, c1..c5, c2b, \
             load, capacity, kernelbench, chaos, surge, diff, bench or all"
        );
        std::process::exit(2);
    }
}

fn load_cmd(rest: &[String]) {
    let flags = Flags(rest);
    let cfg = load_config_from(&flags, &RunDefaults::default());
    heading(&format!(
        "Busy hour — {} subscribers, {} shards, {} threads, seed {}, {} kernel",
        cfg.subscribers,
        cfg.effective_shards(),
        cfg.effective_threads(),
        cfg.seed,
        cfg.kernel
    ));
    let report = run_load(&cfg);
    print!("{}", report.render());
    println!("fingerprint           : {:016x}", report.fingerprint());
    if cfg.snapshot_secs > 0 {
        println!(
            "snapshot fingerprint  : {:016x} ({} frames @ {} s)",
            report.snapshot_fingerprint(),
            report.snapshots.len(),
            cfg.snapshot_secs
        );
    }
    if let Some(path) = flags.get("--json") {
        write_file(path, &report.to_json());
        println!("json report           : {path}");
    }
    let per_shard = flags.has("--snapshots-per-shard");
    if let Some(path) = flags.get("--snapshots") {
        write_file(path, &report.snapshots_json_with(per_shard));
        println!(
            "snapshot series       : {path}{}",
            if per_shard { " (with per-shard series)" } else { "" }
        );
    }
    if let Some(path) = flags.get("--snapshots-csv") {
        write_file(path, &report.snapshots_csv(per_shard));
        println!("snapshot csv          : {path}");
    }
}

/// Default threshold file and committed baseline for `harness diff`.
const DIFF_THRESHOLDS: &str = "diff-thresholds.toml";
const DIFF_BASELINE: &str = "baselines/load_small.json";

/// Reads and parses one JSON report, exiting with a diagnostic on
/// failure (a malformed dump is an input error, not a panic).
fn read_report(path: &str) -> vgprs_sim::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    vgprs_sim::JsonValue::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

/// Loads the threshold file named by `--thresholds` (default
/// `diff-thresholds.toml`), falling back to built-in defaults when the
/// default file does not exist.
fn read_thresholds(flags: &Flags<'_>) -> Thresholds {
    let (path, required) = match flags.get("--thresholds") {
        Some(p) => (p, true),
        None => (DIFF_THRESHOLDS, false),
    };
    match std::fs::read_to_string(path) {
        Ok(text) => Thresholds::parse(&text).unwrap_or_else(|e| {
            eprintln!("bad thresholds in {path}: {e}");
            std::process::exit(2);
        }),
        Err(e) if required => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
        Err(_) => Thresholds::default(),
    }
}

/// The canonical small-population run the `--check` gate compares
/// against the committed baseline: same tiny workload as the chaos and
/// surge determinism checks, so it finishes in seconds.
fn diff_check_config() -> LoadConfig {
    load_config_from(
        &Flags(&[]),
        &RunDefaults {
            subscribers: 96,
            shards: 4,
            threads: 1,
            window_secs: 90,
            calls_per_sub_hour: 40.0,
            mean_hold_secs: 20.0,
            ..RunDefaults::default()
        },
    )
}

/// `harness diff`: structural KPI regression gate. With two positional
/// paths it compares candidate against baseline and exits nonzero on any
/// regressed or missing KPI. `--check` instead runs the canonical small
/// population fresh and diffs it against `baselines/load_small.json`;
/// `--update-baseline` regenerates that file (after intentional KPI
/// changes — see `scripts/update-baselines.sh`).
fn diff_cmd(rest: &[String]) {
    let flags = Flags(rest);
    let thresholds = read_thresholds(&flags);
    if flags.has("--check") || flags.has("--update-baseline") {
        let baseline_path = flags.get("--baseline").unwrap_or(DIFF_BASELINE);
        let cfg = diff_check_config();
        heading(&format!(
            "KPI regression gate — {} subscribers, {} shards, seed {} vs {}",
            cfg.subscribers,
            cfg.effective_shards(),
            cfg.seed,
            baseline_path
        ));
        let report = run_load(&cfg);
        println!(
            "  fresh run: fingerprint {:016x}, snapshot fingerprint {:016x}",
            report.fingerprint(),
            report.snapshot_fingerprint()
        );
        if flags.has("--update-baseline") {
            write_file(baseline_path, &report.to_json());
            println!("  baseline updated: {baseline_path}");
            return;
        }
        let baseline = read_report(baseline_path);
        let candidate = vgprs_sim::JsonValue::parse(&report.to_json())
            .expect("a freshly rendered report always parses");
        let diff = compare(&baseline, &candidate, &thresholds);
        print!("{}", diff.render());
        if !diff.passed() {
            eprintln!("  KPI REGRESSION against {baseline_path}");
            std::process::exit(1);
        }
        println!("  no KPI regressions against the committed baseline");
        return;
    }
    let positional: Vec<&String> = {
        // Positional operands: everything not consumed as a flag value.
        let mut skip = false;
        rest.iter()
            .filter(|a| {
                if skip {
                    skip = false;
                    return false;
                }
                if a.as_str() == "--thresholds" || a.as_str() == "--baseline" {
                    skip = true;
                    return false;
                }
                !a.starts_with("--")
            })
            .collect()
    };
    let [a_path, b_path] = positional.as_slice() else {
        eprintln!(
            "usage: harness diff BASELINE.json CANDIDATE.json [--thresholds PATH] [--json]\n\
             \x20      harness diff --check [--update-baseline] [--baseline PATH]"
        );
        std::process::exit(2);
    };
    heading(&format!("KPI diff — {a_path} (baseline) vs {b_path} (candidate)"));
    let diff = compare(&read_report(a_path), &read_report(b_path), &thresholds);
    if flags.has("--json") {
        print!("{}", diff.to_json());
    } else {
        print!("{}", diff.render());
    }
    if !diff.passed() {
        if !flags.has("--json") {
            eprintln!("  KPI REGRESSION: {b_path} regressed against {a_path}");
        }
        std::process::exit(1);
    }
}

fn capacity_cmd(rest: &[String]) {
    let flags = Flags(rest);
    let mut base = load_config_from(&flags, &RunDefaults::default());
    if flags.get("--subscribers").is_none() {
        base.subscribers = 2048;
    }
    let max_load: f64 = flags.parse("--max-load", 32.0);
    let refine: u32 = flags.parse("--refine", 3);
    heading(&format!(
        "Capacity knee — {} subscribers, seed {}: bisecting offered load to the knee",
        base.subscribers, base.seed
    ));
    let search = capacity_knee(&base, max_load, refine);
    println!(
        "  {:>6} | {:>9} | {:>8} | {:>8} | {:>7} | {:>9} {:>9} | {:>5}",
        "load", "calls/s/h", "erlangs", "attempts", "block%", "setup p50", "setup p99", "MOS"
    );
    let mut rows: Vec<usize> = (0..search.probes.len()).collect();
    rows.sort_by(|&a, &b| {
        search.probes[a]
            .load_factor
            .total_cmp(&search.probes[b].load_factor)
    });
    for i in rows {
        let p = &search.probes[i];
        let setup = p.report.setup_delay();
        println!(
            "  {:>5.2}x | {:>9.1} | {:>8.1} | {:>8} | {:>6.2}% | {:>7.1}ms {:>7.1}ms | {:>5.2}",
            p.load_factor,
            p.calls_per_sub_hour,
            p.offered_erlangs,
            p.report.attempts(),
            p.report.blocking_rate() * 100.0,
            setup.percentile(50.0),
            setup.percentile(99.0),
            p.report.mos()
        );
    }
    match &search.knee {
        Some(k) => println!(
            "  knee bracketed in ({:.2}x, {:.2}x]: degrades at {:.1} Erlangs \
             ({:.1} calls/sub-hour)",
            k.good_factor, k.load_factor, k.offered_erlangs, k.calls_per_sub_hour
        ),
        None => println!("  no knee up to {max_load}x offered load"),
    }
    if let Some(path) = flags.get("--json") {
        write_file(path, &capacity_json(&search, &base, max_load, refine));
        println!("  json report: {path}");
    }
}

/// Hand-rolled JSON dump of a knee search: every probe plus the knee.
fn capacity_json(
    search: &vgprs_load::KneeSearch,
    base: &LoadConfig,
    max_load: f64,
    refine: u32,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("{},\n", meta_json(base)));
    out.push_str(&format!("  \"subscribers\": {},\n", base.subscribers));
    out.push_str(&format!("  \"seed\": {},\n", base.seed));
    out.push_str(&format!("  \"max_load_factor\": {max_load},\n"));
    out.push_str(&format!("  \"refine_steps\": {refine},\n"));
    out.push_str("  \"probes\": [");
    for (i, p) in search.probes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let setup = p.report.setup_delay();
        out.push_str(&format!(
            "\n    {{\"load_factor\": {}, \"offered_erlangs\": {}, \"attempts\": {}, \
             \"blocking_rate\": {}, \"setup_p50_ms\": {}, \"setup_p99_ms\": {}, \
             \"mos\": {}, \"fingerprint\": \"{:016x}\"}}",
            p.load_factor,
            p.offered_erlangs,
            p.report.attempts(),
            p.report.blocking_rate(),
            setup.percentile(50.0),
            setup.percentile(99.0),
            p.report.mos(),
            p.report.fingerprint()
        ));
    }
    out.push_str("\n  ],\n");
    match &search.knee {
        Some(k) => out.push_str(&format!(
            "  \"knee\": {{\"load_factor\": {}, \"good_factor\": {}, \
             \"offered_erlangs\": {}, \"calls_per_sub_hour\": {}}}\n",
            k.load_factor, k.good_factor, k.offered_erlangs, k.calls_per_sub_hour
        )),
        None => out.push_str("  \"knee\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// One kernel's side of the `kernelbench` comparison.
struct KernelRun {
    kernel: Kernel,
    fingerprint: u64,
    events: u64,
    wall_secs: Vec<f64>,
}

impl KernelRun {
    /// Best (highest) observed throughput across the repeats.
    fn events_per_sec(&self) -> f64 {
        let best = self.wall_secs.iter().copied().fold(f64::MAX, f64::min);
        self.events as f64 / best
    }
}

fn run_kernel_once(cfg: &LoadConfig, kernel: Kernel, into: &mut KernelRun) {
    let mut cfg = cfg.clone();
    cfg.kernel = kernel;
    let report = run_load(&cfg);
    into.fingerprint = report.fingerprint();
    into.events = report.events;
    into.wall_secs.push(report.wall.as_secs_f64().max(1e-9));
}

/// Event-kernel baseline: the busy-hour shard workload on the binary
/// heap vs. the timer wheel. Fingerprints must be identical — the wheel
/// is only allowed to be *faster*, never *different*. Throughput is
/// reported, and recorded in `BENCH_kernel.json`, but never gated: this
/// command fails only on fingerprint divergence.
///
/// The default population is a city-scale shard (40k subscribers): deep
/// enough that the heap's `O(log n)` pointer-chasing sift path separates
/// clearly from the wheel's `O(1)` slot drains, while the wheel's compact
/// 24-byte routing keys still sit within the cache (past ~64k subscribers
/// the whole simulation working set outgrows the LLC and both kernels
/// flatten toward memory bandwidth).
fn kernelbench_cmd(rest: &[String]) {
    let flags = Flags(rest);
    let check = flags.has("--check");
    let cfg = LoadConfig {
        subscribers: flags.parse("--subscribers", if check { 256 } else { 40_960 }),
        shards: flags.parse("--shards", 1),
        threads: 1,
        seed: flags.parse("--seed", SEED),
        ..LoadConfig::default()
    };
    let repeat: usize = flags.parse("--repeat", if check { 1 } else { 3 });
    heading(&format!(
        "Event-kernel baseline — {} subscribers, {} shard(s), {} repeat(s), seed {}",
        cfg.subscribers,
        cfg.effective_shards(),
        repeat,
        cfg.seed
    ));
    let mut heap = KernelRun {
        kernel: Kernel::Heap,
        fingerprint: 0,
        events: 0,
        wall_secs: Vec::with_capacity(repeat),
    };
    let mut wheel = KernelRun {
        kernel: Kernel::Wheel,
        fingerprint: 0,
        events: 0,
        wall_secs: Vec::with_capacity(repeat),
    };
    // Interleave the repeats (heap, wheel, heap, wheel, ...): shared
    // machines drift, and running one kernel's block entirely before the
    // other would fold that drift into the comparison.
    for _ in 0..repeat {
        run_kernel_once(&cfg, Kernel::Heap, &mut heap);
        run_kernel_once(&cfg, Kernel::Wheel, &mut wheel);
    }
    for r in [&heap, &wheel] {
        println!(
            "  {:<6} {:>12.0} events/s  ({} events, fingerprint {:016x})",
            r.kernel.to_string(),
            r.events_per_sec(),
            r.events,
            r.fingerprint
        );
    }
    let speedup = wheel.events_per_sec() / heap.events_per_sec();
    println!("  speedup: {speedup:.2}x (wheel over heap)");
    if heap.fingerprint != wheel.fingerprint || heap.events != wheel.events {
        eprintln!(
            "  KERNEL DIVERGENCE: heap {:016x} ({} events) != wheel {:016x} ({} events)",
            heap.fingerprint, heap.events, wheel.fingerprint, wheel.events
        );
        std::process::exit(1);
    }
    println!("  fingerprints identical: the wheel reproduces the heap's schedule");
    if !check {
        let path = flags.get("--out").unwrap_or("BENCH_kernel.json");
        write_file(path, &kernelbench_json(&cfg, repeat, &heap, &wheel, speedup));
        println!("  recorded: {path}");
    }
}

fn kernelbench_json(
    cfg: &LoadConfig,
    repeat: usize,
    heap: &KernelRun,
    wheel: &KernelRun,
    speedup: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"workload\": \"busy_hour_shard\",\n");
    out.push_str(&format!("{},\n", meta_json(cfg)));
    out.push_str(&format!("  \"subscribers\": {},\n", cfg.subscribers));
    out.push_str(&format!("  \"shards\": {},\n", cfg.effective_shards()));
    out.push_str(&format!("  \"threads\": {},\n", cfg.effective_threads()));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"repeats\": {repeat},\n"));
    out.push_str(&format!(
        "  \"fingerprint\": \"{:016x}\",\n",
        wheel.fingerprint
    ));
    for r in [heap, wheel] {
        out.push_str(&format!(
            "  \"{}\": {{\"events\": {}, \"events_per_sec\": {:.0}, \"wall_secs\": [{}]}},\n",
            r.kernel,
            r.events,
            r.events_per_sec(),
            r.wall_secs
                .iter()
                .map(|w| format!("{w:.6}"))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str(&format!("  \"speedup\": {speedup:.3}\n"));
    out.push_str("}\n");
    out
}

/// One cell of the chaos matrix: a fault class at an intensity (or the
/// zero-fault baseline), with the resilience KPIs it produced.
struct ChaosCell {
    label: &'static str,
    intensity: f64,
    faults_injected: u64,
    attempts: u64,
    dropped_faulted: u64,
    dropped_baseline: u64,
    drop_rate: f64,
    recovery_n: u64,
    recovery_p50: f64,
    recovery_p99: f64,
    ras_retries: u64,
    arq_retries: u64,
    redials: u64,
    unavailability_secs: f64,
    frame_loss: f64,
    mos: f64,
    trunk_retransmits: u64,
    trunk_dup_drops: u64,
    trunk_dup_injected: u64,
    trunk_reordered: u64,
    trunk_expired: u64,
    trunk_frame_drops: u64,
    trunk_handoff_drops: u64,
    trunk_reroutes: u64,
    fingerprint: u64,
}

/// Folds one finished run into a [`ChaosCell`] row. Classic node-fault
/// cells leave the trunk counters at zero and vice versa — the matrix
/// keeps one uniform schema for both fault families.
fn chaos_cell_from(label: &'static str, intensity: f64, cfg: &LoadConfig) -> ChaosCell {
    let report = run_load(cfg);
    let dropped_faulted = FaultClass::ALL
        .into_iter()
        .map(|c| report.dropped_by_class(c))
        .sum::<u64>();
    let recovery = report.recovery_time();
    let (ras_retries, arq_retries) = report.guard_retries();
    ChaosCell {
        label,
        intensity,
        faults_injected: report.faults_injected(),
        attempts: report.attempts(),
        dropped_faulted,
        dropped_baseline: report.dropped_baseline(),
        drop_rate: if report.attempts() == 0 {
            0.0
        } else {
            dropped_faulted as f64 / report.attempts() as f64
        },
        recovery_n: recovery.count(),
        recovery_p50: recovery.percentile(50.0),
        recovery_p99: recovery.percentile(99.0),
        ras_retries,
        arq_retries,
        redials: report.redial_attempts(),
        unavailability_secs: FaultClass::ALL
            .into_iter()
            .map(|c| report.unavailability_secs(c))
            .sum(),
        frame_loss: report.frame_loss(),
        mos: report.mos(),
        trunk_retransmits: report.trunk_retransmits(),
        trunk_dup_drops: report.trunk_dup_drops(),
        trunk_dup_injected: report.trunk_dup_injected(),
        trunk_reordered: report.trunk_reordered(),
        trunk_expired: report.trunk_expired(),
        trunk_frame_drops: report.trunk_frame_drops(),
        trunk_handoff_drops: report.trunk_handoff_drops(),
        trunk_reroutes: report.trunk_reroutes(),
        fingerprint: report.fingerprint(),
    }
}

fn run_chaos_cell(base: &LoadConfig, class: Option<FaultClass>, intensity: f64) -> ChaosCell {
    let mut cfg = base.clone();
    cfg.faults = match class {
        Some(c) => FaultPlanConfig::only(c, intensity),
        None => FaultPlanConfig::default(),
    };
    chaos_cell_from(class.map_or("baseline", FaultClass::key), intensity, &cfg)
}

fn run_trunk_cell(base: &LoadConfig, class: Option<TrunkFaultClass>, intensity: f64) -> ChaosCell {
    let mut cfg = base.clone();
    cfg.trunk = match class {
        Some(c) => TrunkPlanConfig::only(c, intensity),
        None => TrunkPlanConfig::default(),
    };
    chaos_cell_from(
        class.map_or("trunk_baseline", TrunkFaultClass::key),
        intensity,
        &cfg,
    )
}

/// The chaos workload with cross-shard traffic switched on: trunk
/// faults only bite flits that actually cross a shard boundary, so the
/// trunk rows and gates run a population where a third of the calls do.
fn cross_shard_base(base: &LoadConfig) -> LoadConfig {
    let mut cfg = base.clone();
    if cfg.population.cross_shard_fraction == 0.0 {
        cfg.population.cross_shard_fraction = 0.35;
    }
    cfg
}

/// Resilience matrix: every fault class at two intensities against the
/// zero-fault baseline, on one fixed workload. Records drop rates,
/// recovery percentiles and retry volumes in `BENCH_chaos.json`.
/// `--check` instead verifies the determinism contract for faulted runs
/// (thread count x kernel, plus zero-intensity equivalence) on a tiny
/// population and exits nonzero on any divergence.
fn chaos_cmd(rest: &[String]) {
    let flags = Flags(rest);
    if flags.has("--check") {
        return chaos_check(&flags);
    }
    let base = load_config_from(
        &flags,
        &RunDefaults {
            subscribers: 512,
            shards: 2,
            window_secs: 120,
            calls_per_sub_hour: 60.0,
            mean_hold_secs: 20.0,
            ..RunDefaults::default()
        },
    );
    heading(&format!(
        "Chaos matrix — {} subscribers, {} shards, seed {}: fault classes x intensity",
        base.subscribers,
        base.effective_shards(),
        base.seed
    ));
    let mut cells = vec![run_chaos_cell(&base, None, 0.0)];
    for class in FaultClass::ALL {
        for intensity in [0.3, 1.0] {
            cells.push(run_chaos_cell(&base, Some(class), intensity));
        }
    }
    let xbase = cross_shard_base(&base);
    let trunk_start = cells.len();
    cells.push(run_trunk_cell(&xbase, None, 0.0));
    for class in TrunkFaultClass::ALL {
        for intensity in [0.3, 1.0] {
            cells.push(run_trunk_cell(&xbase, Some(class), intensity));
        }
    }
    println!(
        "  {:<15} {:>5} | {:>6} {:>7} {:>6} | {:>9} {:>9} {:>4} | {:>7} {:>5}",
        "class", "int", "faults", "drop%", "redial", "rec p50", "rec p99", "n", "loss%", "MOS"
    );
    for c in &cells[..trunk_start] {
        println!(
            "  {:<15} {:>5.1} | {:>6} {:>6.2}% {:>6} | {:>7.1}ms {:>7.1}ms {:>4} | {:>6.2}% {:>5.2}",
            c.label,
            c.intensity,
            c.faults_injected,
            c.drop_rate * 100.0,
            c.redials,
            c.recovery_p50,
            c.recovery_p99,
            c.recovery_n,
            c.frame_loss * 100.0,
            c.mos
        );
    }
    println!(
        "  {:<15} {:>5} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>7} {:>5}",
        "trunk class", "int", "retx", "dup", "reord", "exp", "hodrop", "route", "frames", "loss%",
        "MOS"
    );
    for c in &cells[trunk_start..] {
        println!(
            "  {:<15} {:>5.1} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>6.2}% {:>5.2}",
            c.label,
            c.intensity,
            c.trunk_retransmits,
            c.trunk_dup_drops,
            c.trunk_reordered,
            c.trunk_expired,
            c.trunk_handoff_drops,
            c.trunk_reroutes,
            c.trunk_frame_drops,
            c.frame_loss * 100.0,
            c.mos
        );
    }
    let path = flags.get("--out").unwrap_or("BENCH_chaos.json");
    write_file(path, &chaos_json(&base, &cells));
    println!("  recorded: {path}");
}

fn chaos_json(base: &LoadConfig, cells: &[ChaosCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"workload\": \"busy_hour_chaos\",\n");
    out.push_str(&format!("{},\n", meta_json(base)));
    out.push_str(&format!("  \"subscribers\": {},\n", base.subscribers));
    out.push_str(&format!("  \"shards\": {},\n", base.effective_shards()));
    out.push_str(&format!("  \"seed\": {},\n", base.seed));
    out.push_str(&format!(
        "  \"window_secs\": {},\n",
        base.population.window_secs
    ));
    out.push_str("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"class\": \"{}\", \"intensity\": {}, \"faults_injected\": {}, \
             \"attempts\": {}, \"dropped_faulted\": {}, \"dropped_baseline\": {}, \
             \"drop_rate\": {:.6}, \"recovery_n\": {}, \"recovery_p50_ms\": {:.1}, \
             \"recovery_p99_ms\": {:.1}, \"ras_retries\": {}, \"arq_retries\": {}, \
             \"redial_attempts\": {}, \"unavailability_secs\": {:.1}, \
             \"frame_loss\": {:.6}, \"mos\": {:.3}, \"trunk_retransmits\": {}, \
             \"trunk_dup_drops\": {}, \"trunk_dup_injected\": {}, \"trunk_reordered\": {}, \
             \"trunk_expired\": {}, \"trunk_frame_drops\": {}, \
             \"trunk_handoff_drops\": {}, \"trunk_reroutes\": {}, \
             \"fingerprint\": \"{:016x}\"}}",
            c.label,
            c.intensity,
            c.faults_injected,
            c.attempts,
            c.dropped_faulted,
            c.dropped_baseline,
            c.drop_rate,
            c.recovery_n,
            c.recovery_p50,
            c.recovery_p99,
            c.ras_retries,
            c.arq_retries,
            c.redials,
            c.unavailability_secs,
            c.frame_loss,
            c.mos,
            c.trunk_retransmits,
            c.trunk_dup_drops,
            c.trunk_dup_injected,
            c.trunk_reordered,
            c.trunk_expired,
            c.trunk_frame_drops,
            c.trunk_handoff_drops,
            c.trunk_reroutes,
            c.fingerprint
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The chaos determinism gate: a fixed fault plan must fingerprint
/// identically at every thread count on both kernels, and a
/// zero-intensity plan must reproduce the fault-free run exactly. The
/// same two contracts are then enforced for the trunk fault family on a
/// cross-shard population, plus per-class monotonicity: raising a trunk
/// class's intensity must never reduce the damage it reports.
fn chaos_check(flags: &Flags<'_>) {
    let base = load_config_from(
        flags,
        &RunDefaults {
            subscribers: 96,
            shards: 4,
            threads: 1,
            window_secs: 90,
            calls_per_sub_hour: 40.0,
            mean_hold_secs: 20.0,
            ..RunDefaults::default()
        },
    );
    heading(&format!(
        "Chaos determinism check — {} subscribers, {} shards, seed {}",
        base.subscribers,
        base.effective_shards(),
        base.seed
    ));
    let mut failed = false;

    let plain = run_load(&base);
    let zero = run_load(&LoadConfig {
        faults: FaultPlanConfig::all(0.0),
        ..base.clone()
    });
    if plain.fingerprint() == zero.fingerprint() {
        println!(
            "  zero-intensity == fault-free: {:016x}",
            plain.fingerprint()
        );
    } else {
        eprintln!(
            "  ZERO-INTENSITY DIVERGENCE: fault-free {:016x} != zero-plan {:016x}",
            plain.fingerprint(),
            zero.fingerprint()
        );
        failed = true;
    }

    let faulted = LoadConfig {
        faults: FaultPlanConfig::all(1.0),
        ..base.clone()
    };
    let reference = run_load(&faulted);
    println!(
        "  faulted reference (1 thread, wheel): {:016x} ({} faults)",
        reference.fingerprint(),
        reference.faults_injected()
    );
    if reference.faults_injected() == 0 {
        eprintln!("  NO FAULTS INJECTED: the check is vacuous");
        failed = true;
    }
    for threads in [1usize, 2, 8] {
        for kernel in [Kernel::Wheel, Kernel::Heap] {
            if threads == 1 && kernel == Kernel::Wheel {
                continue; // that is the reference itself
            }
            let other = run_load(&LoadConfig {
                threads,
                kernel,
                ..faulted.clone()
            });
            if other.fingerprint() == reference.fingerprint() {
                println!("  {threads} thread(s) on {kernel}: identical");
            } else {
                eprintln!(
                    "  FAULTED DIVERGENCE at {threads} thread(s) on {kernel}: \
                     {:016x} != {:016x}",
                    other.fingerprint(),
                    reference.fingerprint()
                );
                failed = true;
            }
        }
    }

    // --- Trunk fault family, on a population with cross-shard calls ---
    let cross = cross_shard_base(&base);
    let plain_cross = run_load(&cross);
    let zero_trunk = run_load(&LoadConfig {
        trunk: TrunkPlanConfig::all(0.0),
        ..cross.clone()
    });
    if plain_cross.fingerprint() == zero_trunk.fingerprint() {
        println!(
            "  zero-intensity trunk plan == trunk-free: {:016x}",
            plain_cross.fingerprint()
        );
    } else {
        eprintln!(
            "  TRUNK ZERO-INTENSITY DIVERGENCE: trunk-free {:016x} != zero-plan {:016x}",
            plain_cross.fingerprint(),
            zero_trunk.fingerprint()
        );
        failed = true;
    }

    let trunk_faulted = LoadConfig {
        trunk: TrunkPlanConfig::all(1.0),
        ..cross
    };
    let trunk_reference = run_load(&trunk_faulted);
    println!(
        "  trunk-faulted reference (1 thread, wheel): {:016x} ({} retransmits, {} expired)",
        trunk_reference.fingerprint(),
        trunk_reference.trunk_retransmits(),
        trunk_reference.trunk_expired()
    );
    if trunk_reference.trunk_retransmits() == 0 {
        eprintln!("  NO TRUNK RETRANSMITS: the trunk check is vacuous");
        failed = true;
    }
    for threads in [1usize, 2, 8] {
        for kernel in [Kernel::Wheel, Kernel::Heap] {
            if threads == 1 && kernel == Kernel::Wheel {
                continue; // that is the reference itself
            }
            let other = run_load(&LoadConfig {
                threads,
                kernel,
                ..trunk_faulted.clone()
            });
            if other.fingerprint() == trunk_reference.fingerprint() {
                println!("  trunk: {threads} thread(s) on {kernel}: identical");
            } else {
                eprintln!(
                    "  TRUNK DIVERGENCE at {threads} thread(s) on {kernel}: \
                     {:016x} != {:016x}",
                    other.fingerprint(),
                    trunk_reference.fingerprint()
                );
                failed = true;
            }
        }
    }

    // Per-class graceful degradation: each class's own damage counter
    // must not shrink when its intensity rises (prefix-superset plans
    // make this hold by construction; the gate catches regressions).
    for class in TrunkFaultClass::ALL {
        let damage = |intensity: f64| -> u64 {
            let report = run_load(&LoadConfig {
                trunk: TrunkPlanConfig::only(class, intensity),
                ..trunk_faulted.clone()
            });
            match class {
                TrunkFaultClass::Loss => report.trunk_loss_drops(),
                TrunkFaultClass::Dup => report.trunk_dup_injected(),
                TrunkFaultClass::Reorder => report.trunk_reordered(),
                TrunkFaultClass::Partition => report.trunk_partition_drops(),
            }
        };
        let (low, high) = (damage(0.3), damage(1.0));
        if high < low {
            eprintln!(
                "  TRUNK NON-MONOTONE: {} damage fell from {} to {} as intensity rose",
                class.key(),
                low,
                high
            );
            failed = true;
        } else {
            println!(
                "  trunk {} monotone: {} damage at 0.3 -> {} at 1.0",
                class.key(),
                low,
                high
            );
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("  chaos determinism holds (node faults and trunk faults)");
}

/// One cell of the surge sweep: a flash-crowd intensity with the
/// overload controls on or off, and the KPIs it produced.
struct SurgeCell {
    intensity: f64,
    controls: bool,
    attempts: u64,
    attempts_peak: u64,
    peak_drop_rate: f64,
    steady_drop_rate: f64,
    pages_throttled: u64,
    pages_shed: u64,
    gk_shed: u64,
    gk_deferred: u64,
    pdp_deferred: u64,
    pdp_rejected: u64,
    admission_n: u64,
    admission_p50: f64,
    admission_p99: f64,
    setup_p99: f64,
    mos: f64,
    fingerprint: u64,
}

impl SurgeCell {
    /// Total overload-control interventions — the quantity that must
    /// grow monotonically with shock intensity when the controls are on.
    fn interventions(&self) -> u64 {
        self.pages_throttled
            + self.pages_shed
            + self.gk_shed
            + self.pdp_deferred
            + self.pdp_rejected
    }
}

/// The surge flag vocabulary shared by the sweep and the check: the
/// base workload plus the three control knobs.
fn surge_controls(flags: &Flags<'_>) -> OverloadControls {
    let std = OverloadControls::standard();
    OverloadControls {
        paging_rate_per_s: flags.parse("--paging-rate", std.paging_rate_per_s),
        gk_shed_utilization: flags.parse("--gk-shed", std.gk_shed_utilization),
        pdp_rate_per_s: flags.parse("--pdp-rate", std.pdp_rate_per_s),
    }
}

fn run_surge_cell(
    base: &LoadConfig,
    controls: OverloadControls,
    intensity: f64,
    on: bool,
) -> SurgeCell {
    run_surge_cell_verbose(base, controls, intensity, on, false)
}

fn run_surge_cell_verbose(
    base: &LoadConfig,
    controls: OverloadControls,
    intensity: f64,
    on: bool,
    verbose: bool,
) -> SurgeCell {
    let mut cfg = base.clone();
    cfg.scenario = ScenarioConfig::flash(intensity);
    cfg.controls = if on { controls } else { OverloadControls::default() };
    let report = run_load(&cfg);
    if verbose {
        println!(
            "\n--- {intensity}x, controls {} ---",
            if on { "on" } else { "off" }
        );
        println!("{}", report.render_deterministic());
    }
    let admission = report.admission_delay();
    SurgeCell {
        intensity,
        controls: on,
        attempts: report.attempts(),
        attempts_peak: report.attempts_peak(),
        peak_drop_rate: report.peak_drop_rate(),
        steady_drop_rate: report.steady_drop_rate(),
        pages_throttled: report.pages_throttled(),
        pages_shed: report.pages_shed(),
        gk_shed: report.gk_admission_shed(),
        gk_deferred: report.gk_shed_deferred(),
        pdp_deferred: report.pdp_deferred(),
        pdp_rejected: report.pdp_rejected(),
        admission_n: admission.count(),
        admission_p50: admission.percentile(50.0),
        admission_p99: admission.percentile(99.0),
        setup_p99: report.setup_delay().percentile(99.0),
        mos: report.mos(),
        fingerprint: report.fingerprint(),
    }
}

/// Flash-crowd overload sweep: shock intensity x {controls off, on} on
/// one fixed workload, recording shed/throttle volumes, admission
/// delay, peak-vs-steady drop rates and MOS in `BENCH_surge.json`.
/// `--check` instead runs the surge determinism + monotonicity gate.
fn surge_cmd(rest: &[String]) {
    let flags = Flags(rest);
    if flags.has("--check") {
        return surge_check(&flags);
    }
    let base = load_config_from(
        &flags,
        &RunDefaults {
            subscribers: 512,
            shards: 2,
            window_secs: 120,
            calls_per_sub_hour: 30.0,
            mean_hold_secs: 20.0,
            gk_bandwidth: 25_600,
            ..RunDefaults::default()
        },
    );
    let controls = surge_controls(&flags);
    heading(&format!(
        "Surge sweep — {} subscribers, {} shards, seed {}: shock intensity x overload controls",
        base.subscribers,
        base.effective_shards(),
        base.seed
    ));
    let verbose = flags.has("--verbose");
    let mut cells = Vec::new();
    for intensity in [0.0, 4.0, 10.0, 25.0] {
        for on in [false, true] {
            cells.push(run_surge_cell_verbose(&base, controls, intensity, on, verbose));
        }
    }
    println!(
        "  {:>5} {:<8} | {:>8} {:>7} | {:>6} {:>6} | {:>6} {:>5} {:>5} | {:>9} | {:>9} {:>5}",
        "shock", "controls", "attempts", "peak", "pk dr%", "st dr%", "thrtl", "shed", "GK", "adm p99", "setup p99", "MOS"
    );
    for c in &cells {
        println!(
            "  {:>4.0}x {:<8} | {:>8} {:>7} | {:>5.1}% {:>5.1}% | {:>6} {:>5} {:>5} | {:>7.1}ms | {:>7.1}ms {:>5.2}",
            c.intensity,
            if c.controls { "on" } else { "off" },
            c.attempts,
            c.attempts_peak,
            c.peak_drop_rate * 100.0,
            c.steady_drop_rate * 100.0,
            c.pages_throttled,
            c.pages_shed,
            c.gk_shed,
            c.admission_p99,
            c.setup_p99,
            c.mos
        );
    }
    let path = flags.get("--out").unwrap_or("BENCH_surge.json");
    write_file(path, &surge_json(&base, controls, &cells));
    println!("  recorded: {path}");
}

fn surge_json(base: &LoadConfig, controls: OverloadControls, cells: &[SurgeCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"workload\": \"busy_hour_surge\",\n");
    out.push_str(&format!("{},\n", meta_json(base)));
    out.push_str(&format!("  \"subscribers\": {},\n", base.subscribers));
    out.push_str(&format!("  \"shards\": {},\n", base.effective_shards()));
    out.push_str(&format!("  \"seed\": {},\n", base.seed));
    out.push_str(&format!(
        "  \"window_secs\": {},\n",
        base.population.window_secs
    ));
    out.push_str(&format!(
        "  \"controls\": {{\"paging_rate_per_s\": {}, \"gk_shed_utilization\": {}, \
         \"pdp_rate_per_s\": {}}},\n",
        controls.paging_rate_per_s, controls.gk_shed_utilization, controls.pdp_rate_per_s
    ));
    out.push_str("  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"intensity\": {}, \"controls\": {}, \"attempts\": {}, \
             \"attempts_peak\": {}, \"peak_drop_rate\": {:.6}, \"steady_drop_rate\": {:.6}, \
             \"pages_throttled\": {}, \"pages_shed\": {}, \"gk_admission_shed\": {}, \
             \"gk_shed_deferred\": {}, \"pdp_deferred\": {}, \"pdp_rejected\": {}, \
             \"admission_delay_n\": {}, \"admission_delay_p50_ms\": {:.1}, \
             \"admission_delay_p99_ms\": {:.1}, \"setup_p99_ms\": {:.1}, \"mos\": {:.3}, \
             \"fingerprint\": \"{:016x}\"}}",
            c.intensity,
            c.controls,
            c.attempts,
            c.attempts_peak,
            c.peak_drop_rate,
            c.steady_drop_rate,
            c.pages_throttled,
            c.pages_shed,
            c.gk_shed,
            c.gk_deferred,
            c.pdp_deferred,
            c.pdp_rejected,
            c.admission_n,
            c.admission_p50,
            c.admission_p99,
            c.setup_p99,
            c.mos,
            c.fingerprint
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The surge determinism + monotonicity gate:
///
/// 1. A zero-shock plan with the controls off must reproduce the plain
///    flat busy-hour run bit-for-bit (fingerprint equality).
/// 2. A surged, controlled run must fingerprint identically at every
///    thread count on both kernels.
/// 3. With the controls on, total interventions must grow monotonically
///    with shock intensity, and must be nonzero at the top intensity.
fn surge_check(flags: &Flags<'_>) {
    let base = load_config_from(
        flags,
        &RunDefaults {
            subscribers: 96,
            shards: 4,
            threads: 1,
            window_secs: 90,
            calls_per_sub_hour: 40.0,
            mean_hold_secs: 20.0,
            gk_bandwidth: 1_280,
            ..RunDefaults::default()
        },
    );
    // Aggressive knobs so the tiny check population still trips every
    // control within the 90 s window.
    let controls = OverloadControls {
        paging_rate_per_s: flags.parse("--paging-rate", 2),
        gk_shed_utilization: flags.parse("--gk-shed", 0.5),
        pdp_rate_per_s: flags.parse("--pdp-rate", 2),
    };
    heading(&format!(
        "Surge determinism check — {} subscribers, {} shards, seed {}",
        base.subscribers,
        base.effective_shards(),
        base.seed
    ));
    let mut failed = false;

    let plain = run_load(&base);
    let zero = run_load(&LoadConfig {
        scenario: ScenarioConfig::flash(0.0),
        ..base.clone()
    });
    if plain.fingerprint() == zero.fingerprint() {
        println!("  zero-shock == flat busy hour: {:016x}", plain.fingerprint());
    } else {
        eprintln!(
            "  ZERO-SHOCK DIVERGENCE: flat {:016x} != zero-shock plan {:016x}",
            plain.fingerprint(),
            zero.fingerprint()
        );
        failed = true;
    }

    let mut surged = base.clone();
    surged.scenario = ScenarioConfig::flash(10.0);
    surged.controls = controls;
    let reference = run_load(&surged);
    println!(
        "  surged reference (1 thread, wheel): {:016x} ({} peak attempts)",
        reference.fingerprint(),
        reference.attempts_peak()
    );
    if reference.attempts_peak() == 0 {
        eprintln!("  NO PEAK ATTEMPTS: the shock never materialized");
        failed = true;
    }
    for threads in [1usize, 2, 8] {
        for kernel in [Kernel::Wheel, Kernel::Heap] {
            if threads == 1 && kernel == Kernel::Wheel {
                continue; // that is the reference itself
            }
            let other = run_load(&LoadConfig {
                threads,
                kernel,
                ..surged.clone()
            });
            if other.fingerprint() == reference.fingerprint() {
                println!("  {threads} thread(s) on {kernel}: identical");
            } else {
                eprintln!(
                    "  SURGE DIVERGENCE at {threads} thread(s) on {kernel}: \
                     {:016x} != {:016x}",
                    other.fingerprint(),
                    reference.fingerprint()
                );
                failed = true;
            }
        }
    }

    let mut last = None;
    for intensity in [4.0, 10.0, 25.0] {
        let cell = run_surge_cell(&base, controls, intensity, true);
        println!(
            "  controls on at {:.0}x: {} interventions, peak drop {:.1}%",
            intensity,
            cell.interventions(),
            cell.peak_drop_rate * 100.0
        );
        if let Some(prev) = last {
            if cell.interventions() < prev {
                eprintln!(
                    "  NON-MONOTONE: {} interventions at {:.0}x after {} below it",
                    cell.interventions(),
                    intensity,
                    prev
                );
                failed = true;
            }
        }
        last = Some(cell.interventions());
    }
    if last == Some(0) {
        eprintln!("  CONTROLS NEVER ENGAGED: the monotonicity check is vacuous");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("  surge determinism and monotone degradation hold");
}

/// Instant-based micro-benchmarks (successor to the criterion benches,
/// which required a crates-io dependency the workspace no longer has).
fn bench_cmd() {
    heading("Micro-benchmarks (median of 5 batches)");
    bench("gtp_header_roundtrip", 100_000, || {
        let h = std::hint::black_box(vgprs_wire::GtpHeader {
            msg_type: vgprs_wire::GtpMsgType::TPdu,
            length: 128,
            seq: 7,
            flow: 9,
            tid: 0x0123_4567_89AB_CDEF,
        });
        let bytes = h.encode();
        assert!(vgprs_wire::GtpHeader::decode(std::hint::black_box(&bytes)).is_ok());
    });
    bench("rtp_header_roundtrip", 100_000, || {
        let p = std::hint::black_box(vgprs_wire::RtpPacket {
            ssrc: 0xFEED,
            seq: 1,
            timestamp: 160,
            payload_type: vgprs_wire::PAYLOAD_TYPE_GSM,
            marker: true,
            payload_len: 33,
            call: CallId(1),
            origin_us: 0,
        });
        let bytes = p.encode_header();
        assert!(vgprs_wire::RtpPacket::decode_header(std::hint::black_box(&bytes)).is_ok());
    });
    bench("vgprs_full_registration", 20, || {
        let s = SingleZone::build(SEED);
        assert!(s.net.now() > vgprs_sim::SimTime::ZERO);
    });
    bench("vgprs_call_and_release", 20, || {
        let mut s = SingleZone::build(SEED);
        s.call_from_ms(CallId(1), SimDuration::from_secs(1));
        s.hangup_from_ms();
    });
    bench("busy_hour_shard_64_subs", 3, || {
        let report = run_load(&LoadConfig {
            subscribers: 64,
            shards: 1,
            threads: 1,
            ..LoadConfig::default()
        });
        assert!(report.events > 0);
    });
}

fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    let mut batches: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    batches.sort_by(f64::total_cmp);
    let median = batches[2];
    if median >= 1e-3 {
        println!("  {name:<28} {:>10.3} ms/iter", median * 1e3);
    } else {
        println!("  {name:<28} {:>10.0} ns/iter", median * 1e9);
    }
}

fn fig1() {
    heading("Figure 1 — the GPRS network: data path MS → BSS → SGSN → GGSN → PSDN");
    let s = SingleZone::build(SEED);
    // Evidence: the MS's RRQ crossed every element of the data path in
    // order (Gb → Gn → Gi). Chain by trace index so the terminal's own
    // LAN-side RRQ is not mistaken for it.
    let t = s.net.trace();
    let gb = t.find_label("LLC:RAS_RRQ", 0).expect("RRQ on Gb");
    let gn = t.find_label("GTP:RAS_RRQ", gb).expect("RRQ on Gn");
    let gi = t.find_label("RAS_RRQ", gn).expect("RRQ on Gi/LAN");
    for (idx, label) in [(gb, "LLC:RAS_RRQ (Gb)"), (gn, "GTP:RAS_RRQ (Gn)"), (gi, "RAS_RRQ (Gi)")] {
        println!("  {label:<20} at {}", t.entries()[idx].at());
    }
    println!("  (Gb → Gn → Gi/LAN traversal confirms the Figure 1 topology)");
}

fn fig2() {
    heading("Figure 2 — VMSC interfaces and the vGPRS voice path");
    for row in interface_usage(SEED) {
        if row.messages > 0 {
            println!("  {:<6} {:>5} messages", row.interface.to_string(), row.messages);
        }
    }
    println!("  (A/B/Gb/Gn/Gi/LAN all carry traffic in one register + call cycle)");
}

fn fig3() {
    heading("Figure 3 — protocol layering per link (encapsulation labels)");
    let mut s = SingleZone::build(SEED);
    s.net.trace_mut().clear();
    s.call_from_ms(CallId(1), SimDuration::from_secs(1));
    let mut shown = std::collections::BTreeSet::new();
    for (label, iface) in s.net.trace().labeled_interfaces() {
        let key = (label.split(':').next().unwrap_or(label).to_owned(), iface);
        if shown.insert(key.clone()) && (label.contains(':') || iface.is_packet_core()) {
            println!("  [{:<4}] {label}", iface.to_string());
        }
    }
    println!("  (LLC: on Gb, GTP: on Gn — H.323 rides the tunnel exactly as Figure 3 draws)");
}

fn registration_ladder() -> (SingleZone, String) {
    let s = SingleZone::build(SEED);
    let ladder = LadderDiagram::new(s.net.trace()).render();
    (s, ladder)
}

fn fig4() {
    heading("Figure 4 — message flow for vGPRS registration (steps 1.1–1.6)");
    let (_s, ladder) = registration_ladder();
    print!("{ladder}");
}

fn fig5() {
    heading("Figure 5 — MS call origination and release (steps 2.1–2.9, 3.1–3.4)");
    let mut s = SingleZone::build(SEED);
    s.net.trace_mut().clear();
    s.call_from_ms(CallId(1), SimDuration::from_secs(1));
    s.hangup_from_ms();
    print!("{}", LadderDiagram::new(s.net.trace()).render());
}

fn fig6() {
    heading("Figure 6 — MS call termination (steps 4.1–4.8)");
    let mut s = SingleZone::build(SEED);
    s.net.trace_mut().clear();
    let ms_msisdn = s.ms_msisdn;
    s.net.inject(
        SimDuration::ZERO,
        s.term,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called: ms_msisdn,
        }),
    );
    let deadline = s.net.now() + SimDuration::from_secs(8);
    s.net.run_until(deadline);
    print!("{}", LadderDiagram::new(s.net.trace()).render());
}

fn fig7() {
    heading("Figure 7 — tromboning: classic GSM delivery to a roamer");
    let r = tromboning_classic(SEED);
    println!("  connected:            {}", r.connected);
    println!("  international trunks: {}", r.international_trunks);
    println!("  local trunks:         {}", r.local_trunks);
    println!("  trunk cost (60 s):    {:.1} units", r.trunk_cost_60s);
    if let Some(d) = r.post_dial_delay_ms {
        println!("  post-dial delay:      {d:.1} ms");
    }
}

fn fig8() {
    heading("Figure 8 — tromboning eliminated by vGPRS (visited-network GK)");
    let r = tromboning_vgprs(SEED, true);
    println!("  connected:            {}", r.connected);
    println!("  international trunks: {}", r.international_trunks);
    println!("  local trunks:         {}", r.local_trunks);
    println!("  trunk cost (60 s):    {:.1} units", r.trunk_cost_60s);
    if let Some(d) = r.post_dial_delay_ms {
        println!("  post-dial delay:      {d:.1} ms");
    }
    let f = tromboning_vgprs(SEED, false);
    println!("  --- gatekeeper miss (roamer absent): fallback to PSTN ---");
    println!("  connected:            {}", f.connected);
    println!("  international trunks: {}", f.international_trunks);
}

fn fig9() {
    heading("Figure 9 — inter-system handoff with the VMSC as anchor");
    let r = intersystem_handoff(SEED);
    println!("  handoffs completed:   {}", r.handoffs_completed);
    println!("  MS frames before:     {}", r.frames_before);
    println!("  MS frames after:      {}", r.frames_after);
    println!("  terminal frames after:{}", r.term_frames_after);
}

fn c1() {
    heading("C1 — voice quality vs. load (MOS; circuit air vs. shared PDCH)");
    println!(
        "  {:>5} | {:>10} {:>7} {:>5} | {:>10} {:>7} {:>5}",
        "calls", "vGPRS ms", "loss", "MOS", "TR ms", "loss", "MOS"
    );
    for row in c1_voice_quality(&[1, 2, 3, 4, 6], SEED) {
        println!(
            "  {:>5} | {:>10.1} {:>6.1}% {:>5.2} | {:>10.1} {:>6.1}% {:>5.2}",
            row.calls,
            row.vgprs_delay_ms,
            row.vgprs_loss * 100.0,
            row.vgprs_mos,
            row.tr_delay_ms,
            row.tr_loss * 100.0,
            row.tr_mos
        );
    }
}

fn c2() {
    heading("C2 — call-setup latency: pre-activated vs. per-call PDP context");
    println!(
        "  {:>5} | {:>9} | {:>9} {:>12} | {:>9} {:>9}",
        "scale", "vGPRS MO", "TR MO", "TR MO(on)", "vGPRS MT", "TR MT"
    );
    for row in c2_setup_latency(&[1, 5, 10], SEED) {
        println!(
            "  {:>4}x | {:>7.1}ms | {:>7.1}ms {:>10.1}ms | {:>7.1}ms {:>7.1}ms",
            row.core_scale,
            row.vgprs_mo_ms,
            row.tr_mo_ms,
            row.tr_mo_always_on_ms,
            row.vgprs_mt_ms,
            row.tr_mt_ms
        );
    }
}

fn c2_ablation() {
    heading("C2b — the paper's rejected variant: deactivate vGPRS contexts when idle");
    let r = c2_idle_ablation(SEED);
    println!("  standard vGPRS MO post-dial : {:.1} ms", r.standard_mo_ms);
    println!("  idle-deactivation variant   : {:.1} ms", r.idle_mode_mo_ms);
    println!(
        "  penalty                     : +{:.1} ms ({} context reactivation)",
        r.idle_mode_mo_ms - r.standard_mo_ms,
        r.reactivations
    );
}

fn c3() {
    heading("C3 — resident PDP contexts (always-on vs. on-demand)");
    println!(
        "  {:>11} {:>12} | {:>14} {:>11}",
        "subscribers", "active calls", "vGPRS contexts", "TR contexts"
    );
    for row in c3_context_memory(&[(10, 1), (20, 2), (40, 4)], SEED) {
        println!(
            "  {:>11} {:>12} | {:>14} {:>11}",
            row.subscribers, row.active_calls, row.vgprs_contexts, row.tr_contexts
        );
    }
}

fn c4() {
    heading("C4 — signaling volume and IMSI confidentiality");
    let (rows, conf) = c4_signaling(SEED);
    println!("  {:<20} {:>12} {:>12}", "procedure", "vGPRS msgs", "TR msgs");
    for r in rows {
        println!(
            "  {:<20} {:>12} {:>12}",
            r.procedure, r.vgprs_messages, r.tr_messages
        );
    }
    println!(
        "  IMSIs leaked to the H.323 domain: vGPRS = {}, TR = {}",
        conf.vgprs_imsi_disclosures, conf.tr_imsi_disclosures
    );
}

fn c5() {
    heading("C5 — anchor-path cost after inter-system handoff");
    let r = c5_handoff_cost(SEED);
    println!("  handoffs:            {}", r.handoffs);
    println!("  delay before:        {:.2} ms", r.delay_before_ms);
    println!("  delay after:         {:.2} ms", r.delay_after_ms);
    println!(
        "  anchor detour cost:  +{:.2} ms per frame",
        r.delay_after_ms - r.delay_before_ms
    );
}
