//! Quantified versions of the paper's Section 6 comparison claims.
//!
//! The paper argues these qualitatively; each function here turns one
//! claim into a measured table. `EXPERIMENTS.md` records the outputs.

use vgprs_core::{LatencyProfile, VgprsZone, VgprsZoneConfig};
use vgprs_gprs::Sgsn;
use vgprs_h323::{Gatekeeper, H323Terminal};
use vgprs_media::{EModel, Vocoder};
use vgprs_sim::{Interface, Network, SimDuration};
use vgprs_tr22973::{H323Ms, TrZone, TrZoneConfig};
use vgprs_wire::{CallId, Command, Imsi, Message, Msisdn};

/// Jitter-buffer playout delay assumed when scoring voice (ms).
const PLAYOUT_MS: u64 = 60;

fn imsi(i: usize) -> Imsi {
    Imsi::parse(&format!("4669200000{i:05}")).expect("valid generated IMSI")
}

fn msisdn(i: usize) -> Msisdn {
    Msisdn::parse(&format!("8869120{i:05}")).expect("valid generated MSISDN")
}

fn alias(i: usize) -> Msisdn {
    Msisdn::parse(&format!("8862200{i:05}")).expect("valid generated alias")
}

/// One row of the C1 (voice quality vs. load) table.
#[derive(Clone, Copy, Debug)]
pub struct C1Row {
    /// Concurrent calls in the cell.
    pub calls: usize,
    /// vGPRS mean one-way frame delay (ms).
    pub vgprs_delay_ms: f64,
    /// vGPRS effective frame loss.
    pub vgprs_loss: f64,
    /// vGPRS MOS.
    pub vgprs_mos: f64,
    /// TR 22.973 mean one-way frame delay (ms).
    pub tr_delay_ms: f64,
    /// TR effective frame loss.
    pub tr_loss: f64,
    /// TR MOS.
    pub tr_mos: f64,
}

/// C1 — "Real-time communication": MOS vs. number of concurrent calls in
/// one cell. vGPRS voice rides dedicated circuit channels; the TR
/// baseline's voice contends for the shared packet channel, which
/// saturates as load grows.
pub fn c1_voice_quality(loads: &[usize], seed: u64) -> Vec<C1Row> {
    let talk = SimDuration::from_secs(20);
    loads
        .iter()
        .map(|&n| {
            let (vd, vl) = voice_run(SystemKind::Vgprs, n, seed, talk);
            let (td, tl) = voice_run(SystemKind::Tr, n, seed, talk);
            let model = EModel::for_codec(&Vocoder::gsm_full_rate());
            let m2e = |d: f64| {
                SimDuration::from_micros(((d + 20.0 + PLAYOUT_MS as f64) * 1000.0) as u64)
            };
            C1Row {
                calls: n,
                vgprs_delay_ms: vd,
                vgprs_loss: vl,
                vgprs_mos: model.mos(m2e(vd), vl),
                tr_delay_ms: td,
                tr_loss: tl,
                tr_mos: model.mos(m2e(td), tl),
            }
        })
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum SystemKind {
    Vgprs,
    Tr,
}

/// Runs `n` concurrent MS→terminal calls on one system; returns
/// (mean one-way delay ms, loss ratio) at the wireline listeners.
fn voice_run(kind: SystemKind, n: usize, seed: u64, talk: SimDuration) -> (f64, f64) {
    let mut net = Network::new(seed);
    net.set_trace_details(false); // load sweep; nothing scans contents
    let mut mss = Vec::new();
    let mut terms = Vec::new();
    match kind {
        SystemKind::Vgprs => {
            let mut zone = VgprsZone::build(
                &mut net,
                VgprsZoneConfig {
                    pdch_bps: 160_000,
                    tch_capacity: 64,
                    ..VgprsZoneConfig::taiwan()
                },
            );
            for i in 0..n {
                mss.push(zone.add_subscriber(
                    &mut net,
                    &format!("ms{i}"),
                    imsi(i),
                    0x1000 + i as u64,
                    msisdn(i),
                ));
                terms.push(zone.add_terminal(&mut net, &format!("t{i}"), alias(i)));
            }
        }
        SystemKind::Tr => {
            let mut zone = TrZone::build(
                &mut net,
                TrZoneConfig {
                    pdch_bps: 160_000,
                    ..TrZoneConfig::taiwan()
                },
            );
            for i in 0..n {
                mss.push(zone.add_tr_ms(&mut net, &format!("trms{i}"), imsi(i), msisdn(i)));
                terms.push(zone.add_terminal(&mut net, &format!("t{i}"), alias(i)));
            }
        }
    }
    for (i, ms) in mss.iter().enumerate() {
        net.inject(
            SimDuration::from_millis(i as u64 * 13),
            *ms,
            Message::Cmd(Command::PowerOn),
        );
    }
    net.run_until_quiescent();
    for (i, ms) in mss.iter().enumerate() {
        net.inject(
            SimDuration::from_millis(i as u64 * 31),
            *ms,
            Message::Cmd(Command::Dial {
                call: CallId(100 + i as u64),
                called: alias(i),
            }),
        );
    }
    net.run_until(net.now() + SimDuration::from_secs(6) + talk);
    let received: u64 = terms
        .iter()
        .map(|t| {
            net.node::<H323Terminal>(*t)
                .map(|x| x.frames_received)
                .unwrap_or(0)
        })
        .sum();
    let delay = net
        .stats()
        .histogram("term.voice_e2e_ms")
        .map(|h| h.mean())
        .unwrap_or(f64::NAN);
    let expected = (talk.as_millis() / 20) * n as u64;
    let loss = 1.0 - (received as f64 / expected as f64).min(1.0);
    (delay, loss)
}

/// One row of the C2 (call-setup latency) table.
#[derive(Clone, Copy, Debug)]
pub struct C2Row {
    /// Packet-core latency scale factor.
    pub core_scale: u64,
    /// vGPRS mobile-originated post-dial delay (ms).
    pub vgprs_mo_ms: f64,
    /// TR mobile-originated post-dial delay (ms), incl. PDP activation.
    pub tr_mo_ms: f64,
    /// TR MO with the always-on ablation (context never torn down).
    pub tr_mo_always_on_ms: f64,
    /// vGPRS mobile-terminated post-dial delay at the caller (ms).
    pub vgprs_mt_ms: f64,
    /// TR MT post-dial delay, incl. network-initiated activation (ms).
    pub tr_mt_ms: f64,
}

/// C2 — "PDP context activation": call-setup latency with the context
/// pre-activated (vGPRS) vs. activated per call (TR), swept over the
/// packet-core latency.
pub fn c2_setup_latency(core_scales: &[u64], seed: u64) -> Vec<C2Row> {
    core_scales
        .iter()
        .map(|&scale| {
            let lat = scaled_latency(scale);
            C2Row {
                core_scale: scale,
                vgprs_mo_ms: vgprs_setup(seed, lat, false),
                tr_mo_ms: tr_setup(seed, lat, false, true),
                tr_mo_always_on_ms: tr_setup(seed, lat, false, false),
                vgprs_mt_ms: vgprs_setup(seed, lat, true),
                tr_mt_ms: tr_setup(seed, lat, true, true),
            }
        })
        .collect()
}

fn scaled_latency(scale: u64) -> LatencyProfile {
    let base = LatencyProfile::default();
    LatencyProfile {
        gb: base.gb * scale,
        gn: base.gn * scale,
        lan: base.lan * scale,
        ..base
    }
}

fn vgprs_setup(seed: u64, latency: LatencyProfile, mt: bool) -> f64 {
    let mut net = Network::new(seed);
    let mut zone = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            latency,
            ..VgprsZoneConfig::taiwan()
        },
    );
    let ms = zone.add_subscriber(&mut net, "ms", imsi(1), 0x1001, msisdn(1));
    let term = zone.add_terminal(&mut net, "t", alias(1));
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    let (dialer, called, stat) = if mt {
        (term, msisdn(1), "term.post_dial_delay_ms")
    } else {
        (ms, alias(1), "ms.post_dial_delay_ms")
    };
    net.inject(
        SimDuration::ZERO,
        dialer,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(30));
    net.stats()
        .histogram(stat)
        .map(|h| h.mean())
        .unwrap_or(f64::NAN)
}

fn tr_setup(seed: u64, latency: LatencyProfile, mt: bool, deactivate_when_idle: bool) -> f64 {
    let mut net = Network::new(seed);
    let mut zone = TrZone::build(
        &mut net,
        TrZoneConfig {
            latency,
            ..TrZoneConfig::taiwan()
        },
    );
    let ms = zone.add_tr_ms(&mut net, "trms", imsi(1), msisdn(1));
    let term = zone.add_terminal(&mut net, "t", alias(1));
    net.node_mut::<H323Ms>(ms)
        .expect("tr ms")
        .set_deactivate_when_idle(deactivate_when_idle);
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    let (dialer, called, stat) = if mt {
        (term, msisdn(1), "term.post_dial_delay_ms")
    } else {
        (ms, alias(1), "trms.post_dial_delay_ms")
    };
    net.inject(
        SimDuration::ZERO,
        dialer,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(30));
    net.stats()
        .histogram(stat)
        .map(|h| h.mean())
        .unwrap_or(f64::NAN)
}

/// One row of the C3 (context memory) table.
#[derive(Clone, Copy, Debug)]
pub struct C3Row {
    /// Registered subscribers.
    pub subscribers: usize,
    /// Subscribers simultaneously on a call.
    pub active_calls: usize,
    /// PDP contexts resident at the vGPRS SGSN.
    pub vgprs_contexts: usize,
    /// PDP contexts resident at the TR SGSN.
    pub tr_contexts: usize,
}

/// C3 — the context-memory tradeoff the paper concedes: vGPRS keeps one
/// signaling context per registered subscriber (plus one voice context
/// per active call); the TR keeps contexts only for active calls.
pub fn c3_context_memory(populations: &[(usize, usize)], seed: u64) -> Vec<C3Row> {
    populations
        .iter()
        .map(|&(subs, active)| {
            assert!(active <= subs, "active calls cannot exceed subscribers");
            C3Row {
                subscribers: subs,
                active_calls: active,
                vgprs_contexts: context_count(SystemKind::Vgprs, subs, active, seed),
                tr_contexts: context_count(SystemKind::Tr, subs, active, seed),
            }
        })
        .collect()
}

fn context_count(kind: SystemKind, subs: usize, active: usize, seed: u64) -> usize {
    let mut net = Network::new(seed);
    net.set_trace_details(false);
    let mut mss = Vec::new();
    let sgsn;
    match kind {
        SystemKind::Vgprs => {
            let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
            sgsn = zone.sgsn;
            for i in 0..subs {
                mss.push(zone.add_subscriber(
                    &mut net,
                    &format!("ms{i}"),
                    imsi(i),
                    0x2000 + i as u64,
                    msisdn(i),
                ));
            }
            for i in 0..active {
                zone.add_terminal(&mut net, &format!("t{i}"), alias(i));
            }
        }
        SystemKind::Tr => {
            let mut zone = TrZone::build(
                &mut net,
                TrZoneConfig {
                    // generous air capacity so every call connects
                    pdch_bps: 2_000_000,
                    ..TrZoneConfig::taiwan()
                },
            );
            sgsn = zone.sgsn;
            for i in 0..subs {
                mss.push(zone.add_tr_ms(&mut net, &format!("trms{i}"), imsi(i), msisdn(i)));
            }
            for i in 0..active {
                zone.add_terminal(&mut net, &format!("t{i}"), alias(i));
            }
        }
    }
    for (i, ms) in mss.iter().enumerate() {
        net.inject(
            SimDuration::from_millis(i as u64 * 7),
            *ms,
            Message::Cmd(Command::PowerOn),
        );
    }
    net.run_until_quiescent();
    for (i, ms) in mss.iter().take(active).enumerate() {
        net.inject(
            SimDuration::from_millis(i as u64 * 17),
            *ms,
            Message::Cmd(Command::Dial {
                call: CallId(300 + i as u64),
                called: alias(i),
            }),
        );
    }
    net.run_until(net.now() + SimDuration::from_secs(8));
    net.node::<Sgsn>(sgsn).expect("sgsn").active_pdp_count()
}

/// One row of the C4 (signaling volume + confidentiality) table.
#[derive(Clone, Debug)]
pub struct C4Row {
    /// Procedure name.
    pub procedure: &'static str,
    /// Signaling messages the procedure generated under vGPRS.
    pub vgprs_messages: usize,
    /// Signaling messages under the TR baseline.
    pub tr_messages: usize,
}

/// The confidentiality half of C4.
#[derive(Clone, Copy, Debug)]
pub struct C4Confidentiality {
    /// IMSIs the vGPRS gatekeeper learned (the paper's claim: zero).
    pub vgprs_imsi_disclosures: usize,
    /// IMSIs the TR gatekeeper learned (one per subscriber).
    pub tr_imsi_disclosures: usize,
}

/// C4 — signaling message counts per procedure plus the IMSI exposure
/// comparison of Section 6 ("IMSI is considered confidential to the GPRS
/// network operator").
pub fn c4_signaling(seed: u64) -> (Vec<C4Row>, C4Confidentiality) {
    // --- vGPRS: registration, then MO call + release ---
    let mut v = crate::scenarios::SingleZone::build(seed);
    let v_reg = v.net.trace().messages().count();
    let v_gk_leaks = v
        .net
        .node::<Gatekeeper>(v.zone.gk)
        .expect("gk")
        .imsi_disclosures();
    v.net.trace_mut().clear();
    v.call_from_ms(CallId(1), SimDuration::from_secs(2));
    v.hangup_from_ms();
    let v_call = v.net.trace().messages().count();

    // --- TR: same procedures ---
    let mut t = crate::scenarios::TrSingleZone::build(seed);
    let t_reg = t.net.trace().messages().count();
    let t_gk_leaks = t
        .net
        .node::<Gatekeeper>(t.zone.gk)
        .expect("gk")
        .imsi_disclosures();
    t.net.trace_mut().clear();
    let term_alias = t.term_alias;
    t.net.inject(
        SimDuration::ZERO,
        t.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias,
        }),
    );
    t.net.run_until(t.net.now() + SimDuration::from_secs(8));
    t.net
        .inject(SimDuration::ZERO, t.ms, Message::Cmd(Command::Hangup));
    t.net.run_until_quiescent();
    let t_call = t.net.trace().messages().count();

    (
        vec![
            C4Row {
                procedure: "registration",
                vgprs_messages: v_reg,
                tr_messages: t_reg,
            },
            C4Row {
                procedure: "MO call + release",
                vgprs_messages: v_call,
                tr_messages: t_call,
            },
        ],
        C4Confidentiality {
            vgprs_imsi_disclosures: v_gk_leaks,
            tr_imsi_disclosures: t_gk_leaks,
        },
    )
}

/// The C5 (handoff cost) measurements.
#[derive(Clone, Copy, Debug)]
pub struct C5Report {
    /// Handoffs completed.
    pub handoffs: u64,
    /// Mean downlink frame delay before the handoff (ms).
    pub delay_before_ms: f64,
    /// Mean downlink frame delay after the handoff (ms) — the anchor +
    /// E-trunk detour the paper accepts for coexistence (Section 7).
    pub delay_after_ms: f64,
}

/// C5 — Section 7's coexistence cost: the anchor VMSC stays in the path
/// after inter-system handoff, adding the inter-MSC trunk's latency to
/// every frame.
pub fn c5_handoff_cost(seed: u64) -> C5Report {
    crate::scenarios::intersystem_handoff_windowed(seed)
}

/// The vGPRS idle-deactivation ablation (the variant the paper names in
/// Section 6 but rejects: "this approach may significantly increase the
/// call setup time").
#[derive(Clone, Copy, Debug)]
pub struct IdleAblationReport {
    /// Post-dial delay with the standard always-on signaling context (ms).
    pub standard_mo_ms: f64,
    /// Post-dial delay when the context is torn down while idle and
    /// re-activated per call (ms).
    pub idle_mode_mo_ms: f64,
    /// Context re-activations the idle mode performed.
    pub reactivations: u64,
}

/// Measures the paper's own rejected variant of vGPRS.
pub fn c2_idle_ablation(seed: u64) -> IdleAblationReport {
    let run = |deactivate: bool| {
        let mut net = Network::new(seed);
        let mut zone = VgprsZone::build(
            &mut net,
            VgprsZoneConfig {
                deactivate_idle_contexts: deactivate,
                ..VgprsZoneConfig::taiwan()
            },
        );
        let ms = zone.add_subscriber(&mut net, "ms", imsi(1), 0x1001, msisdn(1));
        zone.add_terminal(&mut net, "t", alias(1));
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        net.inject(
            SimDuration::ZERO,
            ms,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: alias(1),
            }),
        );
        net.run_until(net.now() + SimDuration::from_secs(30));
        (
            net.stats()
                .histogram("ms.post_dial_delay_ms")
                .map(|h| h.mean())
                .unwrap_or(f64::NAN),
            net.stats().counter("vmsc.context_reactivations"),
        )
    };
    let (standard, _) = run(false);
    let (idle, reactivations) = run(true);
    IdleAblationReport {
        standard_mo_ms: standard,
        idle_mode_mo_ms: idle,
        reactivations,
    }
}

/// Per-interface traffic for one full vGPRS register + call cycle
/// (Figure 2/3 evidence).
#[derive(Clone, Debug)]
pub struct InterfaceRow {
    /// Interface name.
    pub interface: Interface,
    /// Messages observed on it.
    pub messages: usize,
}

/// Counts per-interface traffic for one full vGPRS register + call cycle.
pub fn interface_usage(seed: u64) -> Vec<InterfaceRow> {
    let mut s = crate::scenarios::SingleZone::build(seed);
    s.call_from_ms(CallId(1), SimDuration::from_secs(2));
    s.hangup_from_ms();
    Interface::ALL
        .iter()
        .map(|&iface| InterfaceRow {
            interface: iface,
            messages: s.net.trace().count_interface(iface),
        })
        .collect()
}
