//! `harness diff`: structural KPI comparison of two report dumps.
//!
//! Compares two `LoadReport::to_json` / `BENCH_*.json` documents
//! path-by-path (dotted JSON paths, [`vgprs_sim::JsonValue::flatten`])
//! against per-KPI absolute/relative thresholds loaded from a
//! TOML-subset file (`diff-thresholds.toml`). The comparison is the
//! enforceable half of the observability layer: `scripts/verify.sh`
//! runs a fresh small-population load and diffs it against the
//! committed baseline, turning the BENCH trajectory into a gate
//! instead of a pile of snapshots.
//!
//! Semantics:
//!
//! * Numeric leaves compare within `tol = max(abs, rel * |baseline|)`,
//!   directionally — a KPI marked `higher_is_worse` only *regresses*
//!   upward (a drop is an improvement), and vice versa.
//! * A path present in the baseline but missing from the candidate is
//!   a **regression** (a dropped KPI field is exactly the silent
//!   breakage the gate exists to catch); an extra candidate path is a
//!   warning.
//! * Known-nondeterministic paths (wall clock, throughput,
//!   fingerprints, `meta`, raw counter/histogram dumps) are skipped.

use std::fmt::Write as _;

use vgprs_sim::JsonValue;

/// Which direction of movement counts as a regression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Growth beyond tolerance regresses (blocking, drops, delay).
    HigherIsWorse,
    /// Shrinkage beyond tolerance regresses (MOS, successes).
    LowerIsWorse,
}

/// One threshold rule: tolerance plus direction.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Absolute tolerance.
    pub abs: f64,
    /// Relative tolerance (fraction of the baseline magnitude).
    pub rel: f64,
    /// Which way a change regresses.
    pub direction: Direction,
}

impl Default for Rule {
    fn default() -> Self {
        Rule {
            abs: 1e-9,
            rel: 0.20,
            direction: Direction::HigherIsWorse,
        }
    }
}

/// The parsed `diff-thresholds.toml`: a default rule plus per-KPI
/// overrides keyed by path fragments.
#[derive(Clone, Debug, Default)]
pub struct Thresholds {
    /// Applied when no per-KPI key matches.
    pub default: Rule,
    /// `(key, rule)` overrides, most specific (longest key) first.
    pub per_kpi: Vec<(String, Rule)>,
}

impl Thresholds {
    /// Parses the TOML subset the repo uses (the workspace is hermetic,
    /// so no toml crate): `[default]` and `[kpi."KEY"]` sections with
    /// `abs = <float>`, `rel = <float>` and
    /// `direction = "higher_is_worse" | "lower_is_worse"` assignments,
    /// `#` comments, blank lines.
    pub fn parse(text: &str) -> Result<Thresholds, String> {
        let mut out = Thresholds::default();
        // None = before any section; Some(None) = [default];
        // Some(Some(i)) = the i-th per-KPI rule.
        let mut section: Option<Option<usize>> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: &str| format!("{msg} at line {}: {raw:?}", lineno + 1);
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if header == "default" {
                    section = Some(None);
                } else if let Some(key) = header
                    .strip_prefix("kpi.\"")
                    .and_then(|h| h.strip_suffix('"'))
                {
                    // Per-KPI rules inherit the default as parsed so far.
                    out.per_kpi.push((key.to_owned(), out.default));
                    section = Some(Some(out.per_kpi.len() - 1));
                } else {
                    return Err(err("unknown section"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            let rule = match section {
                None => return Err(err("assignment before any section")),
                Some(None) => &mut out.default,
                Some(Some(i)) => &mut out.per_kpi[i].1,
            };
            match key {
                "abs" => {
                    rule.abs = value.parse().map_err(|_| err("bad float for abs"))?;
                }
                "rel" => {
                    rule.rel = value.parse().map_err(|_| err("bad float for rel"))?;
                }
                "direction" => {
                    rule.direction = match value.trim_matches('"') {
                        "higher_is_worse" => Direction::HigherIsWorse,
                        "lower_is_worse" => Direction::LowerIsWorse,
                        _ => return Err(err("unknown direction")),
                    };
                }
                _ => return Err(err("unknown key")),
            }
        }
        // Longest key first, so the most specific override wins.
        out.per_kpi.sort_by_key(|k| std::cmp::Reverse(k.0.len()));
        Ok(out)
    }

    /// The rule governing a dotted path: the longest per-KPI key that
    /// matches it (exactly, as a `.`-delimited suffix/prefix, or as an
    /// interior segment run), else the default. Fragment matching is
    /// what lets one `[kpi."mos"]` entry govern `kpis.mos` and every
    /// `snapshots.frames.N.mos` alike.
    pub fn rule_for(&self, path: &str) -> Rule {
        for (key, rule) in &self.per_kpi {
            if path == key
                || path.ends_with(&format!(".{key}"))
                || path.starts_with(&format!("{key}."))
                || path.contains(&format!(".{key}."))
            {
                return *rule;
            }
        }
        self.default
    }
}

/// The outcome of one compared path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Within tolerance (including bit-identical).
    Ok,
    /// Moved beyond tolerance in the *good* direction.
    Improved,
    /// Moved beyond tolerance in the regression direction.
    Regressed,
    /// Present in the baseline, missing from the candidate.
    Missing,
    /// Present in the candidate only (informational).
    Extra,
    /// Non-numeric leaf whose value changed (informational).
    Changed,
}

/// One row of the comparison.
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Dotted JSON path.
    pub path: String,
    /// Baseline value (numeric leaves).
    pub a: Option<f64>,
    /// Candidate value (numeric leaves).
    pub b: Option<f64>,
    /// The verdict.
    pub status: Status,
}

/// The full comparison result.
#[derive(Clone, Debug, Default)]
pub struct DiffReport {
    /// Every compared path, in baseline order (extras appended).
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Paths that regressed or went missing — the gate's failures.
    pub fn failures(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows
            .iter()
            .filter(|r| matches!(r.status, Status::Regressed | Status::Missing))
    }

    /// True when no path regressed or disappeared.
    pub fn passed(&self) -> bool {
        self.failures().next().is_none()
    }

    fn count(&self, status: Status) -> usize {
        self.rows.iter().filter(|r| r.status == status).count()
    }

    /// The human-readable table: every non-Ok row plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  {:<52} {:>14} {:>14} {:>10}",
            "path", "baseline", "candidate", "verdict"
        );
        for row in &self.rows {
            if row.status == Status::Ok {
                continue;
            }
            let verdict = match row.status {
                Status::Ok => "ok",
                Status::Improved => "improved",
                Status::Regressed => "REGRESSED",
                Status::Missing => "MISSING",
                Status::Extra => "extra",
                Status::Changed => "changed",
            };
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:.6}"),
                None => "-".to_owned(),
            };
            let _ = writeln!(
                out,
                "  {:<52} {:>14} {:>14} {:>10}",
                row.path,
                fmt(row.a),
                fmt(row.b),
                verdict
            );
        }
        let _ = writeln!(
            out,
            "  {} paths: {} ok, {} improved, {} regressed, {} missing, {} extra, {} changed",
            self.rows.len(),
            self.count(Status::Ok),
            self.count(Status::Improved),
            self.count(Status::Regressed),
            self.count(Status::Missing),
            self.count(Status::Extra),
            self.count(Status::Changed),
        );
        out
    }

    /// The machine-readable result (hand-rolled JSON, like every other
    /// artifact in the workspace).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"passed\": ");
        out.push_str(if self.passed() { "true" } else { "false" });
        out.push_str(",\n  \"rows\": [");
        let mut first = true;
        for row in &self.rows {
            if row.status == Status::Ok {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let v = |x: Option<f64>| {
                x.filter(|x| x.is_finite())
                    .map_or("null".to_owned(), |x| format!("{x:?}"))
            };
            let _ = write!(
                out,
                "\n    {{\"path\": \"{}\", \"baseline\": {}, \"candidate\": {}, \"status\": \"{:?}\"}}",
                row.path,
                v(row.a),
                v(row.b),
                row.status
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Paths excluded from comparison: wall-clock and environment facts
/// that legitimately differ between runs, fingerprints (they change
/// whenever anything does and carry no thresholdable magnitude), and
/// the raw counter/histogram dumps (run-shape specific — the KPI
/// surface above them is the gated contract).
fn skipped(path: &str) -> bool {
    if path.starts_with("meta.")
        || path.starts_with("counters.")
        || path.starts_with("histograms.")
        || path == "threads"
    {
        return true;
    }
    path.split('.').any(|seg| {
        matches!(
            seg,
            "wall_secs" | "events_per_sec" | "fingerprint" | "git" | "threads"
        )
    })
}

/// Compares candidate `b` against baseline `a` under `thresholds`.
pub fn compare(a: &JsonValue, b: &JsonValue, thresholds: &Thresholds) -> DiffReport {
    let flat_a = a.flatten();
    let flat_b = b.flatten();
    let lookup: std::collections::HashMap<&str, &JsonValue> = flat_b
        .iter()
        .map(|(p, v)| (p.as_str(), *v))
        .collect();
    let mut report = DiffReport::default();
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for (path, va) in &flat_a {
        if skipped(path) {
            continue;
        }
        seen.insert(path.as_str());
        let Some(vb) = lookup.get(path.as_str()) else {
            report.rows.push(DiffRow {
                path: path.clone(),
                a: va.as_f64(),
                b: None,
                status: Status::Missing,
            });
            continue;
        };
        let status = match (va.as_f64(), vb.as_f64()) {
            (Some(x), Some(y)) => {
                let rule = thresholds.rule_for(path);
                let tol = rule.abs.max(rule.rel * x.abs());
                if (y - x).abs() <= tol {
                    Status::Ok
                } else {
                    let worse = match rule.direction {
                        Direction::HigherIsWorse => y > x,
                        Direction::LowerIsWorse => y < x,
                    };
                    if worse {
                        Status::Regressed
                    } else {
                        Status::Improved
                    }
                }
            }
            // Non-numeric leaves (strings, bools, nulls): equality only.
            _ => {
                if va == vb {
                    Status::Ok
                } else {
                    Status::Changed
                }
            }
        };
        report.rows.push(DiffRow {
            path: path.clone(),
            a: va.as_f64(),
            b: vb.as_f64(),
            status,
        });
    }
    for (path, vb) in &flat_b {
        if skipped(path) || seen.contains(path.as_str()) {
            continue;
        }
        report.rows.push(DiffRow {
            path: path.clone(),
            a: None,
            b: vb.as_f64(),
            status: Status::Extra,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const THRESHOLDS: &str = r#"
# test thresholds
[default]
abs = 1e-9
rel = 0.20
direction = "higher_is_worse"

[kpi."mos"]
direction = "lower_is_worse"
abs = 0.05
rel = 0.0

[kpi."attempts"]
abs = 5
rel = 0.10
"#;

    fn report(blocking: f64, mos: f64, p99: f64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{"kpis": {{"attempts": 100, "blocking_rate": {blocking}, "mos": {mos},
                 "handoff_interruption_ms": {{"count": 7, "p99": {p99}}}}},
                "wall_secs": 1.5}}"#
        ))
        .expect("synthetic report parses")
    }

    fn thresholds() -> Thresholds {
        Thresholds::parse(THRESHOLDS).expect("test thresholds parse")
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(0.02, 4.1, 180.0);
        let d = compare(&a, &a, &thresholds());
        assert!(d.passed(), "{}", d.render());
        assert!(d.rows.iter().all(|r| r.status == Status::Ok));
    }

    #[test]
    fn blocking_regression_flags() {
        // +50% blocking: well past the 20% relative default.
        let d = compare(&report(0.02, 4.1, 180.0), &report(0.03, 4.1, 180.0), &thresholds());
        assert!(!d.passed());
        let failing: Vec<&str> = d.failures().map(|r| r.path.as_str()).collect();
        assert_eq!(failing, vec!["kpis.blocking_rate"]);
    }

    #[test]
    fn mos_drop_flags_and_mos_gain_passes() {
        let t = thresholds();
        let d = compare(&report(0.02, 4.1, 180.0), &report(0.02, 3.6, 180.0), &t);
        assert!(!d.passed(), "MOS -0.5 must regress");
        let d = compare(&report(0.02, 4.1, 180.0), &report(0.02, 4.4, 180.0), &t);
        assert!(d.passed(), "a MOS gain is an improvement, not a failure");
        assert!(d.rows.iter().any(|r| r.status == Status::Improved));
    }

    #[test]
    fn p99_doubling_flags() {
        let d = compare(&report(0.02, 4.1, 180.0), &report(0.02, 4.1, 360.0), &thresholds());
        assert!(!d.passed());
        assert!(d
            .failures()
            .any(|r| r.path == "kpis.handoff_interruption_ms.p99"));
    }

    #[test]
    fn jitter_within_thresholds_passes() {
        // +5% blocking, -0.03 MOS, +10% p99: all inside tolerance.
        let d = compare(
            &report(0.0200, 4.10, 180.0),
            &report(0.0210, 4.07, 198.0),
            &thresholds(),
        );
        assert!(d.passed(), "{}", d.render());
    }

    #[test]
    fn missing_fields_fail_and_extra_fields_warn() {
        let a = JsonValue::parse(r#"{"kpis": {"mos": 4.1, "blocking_rate": 0.02}}"#).unwrap();
        let b = JsonValue::parse(r#"{"kpis": {"mos": 4.1, "new_kpi": 1.0}}"#).unwrap();
        let d = compare(&a, &b, &thresholds());
        assert!(!d.passed(), "a dropped KPI field must fail the gate");
        assert!(d
            .rows
            .iter()
            .any(|r| r.path == "kpis.blocking_rate" && r.status == Status::Missing));
        assert!(d
            .rows
            .iter()
            .any(|r| r.path == "kpis.new_kpi" && r.status == Status::Extra));
    }

    #[test]
    fn nondeterministic_paths_are_skipped() {
        let a = JsonValue::parse(
            r#"{"wall_secs": 1.0, "events_per_sec": 100.0, "threads": 1,
                "fingerprint": "aa", "meta": {"git": "x"}, "kpis": {"mos": 4.0}}"#,
        )
        .unwrap();
        let b = JsonValue::parse(
            r#"{"wall_secs": 9.0, "events_per_sec": 5.0, "threads": 8,
                "fingerprint": "bb", "meta": {"git": "y"}, "kpis": {"mos": 4.0}}"#,
        )
        .unwrap();
        let d = compare(&a, &b, &thresholds());
        assert!(d.passed(), "{}", d.render());
        assert_eq!(d.rows.len(), 1, "only kpis.mos is compared");
    }

    #[test]
    fn threshold_fragments_cover_snapshot_frames() {
        let t = thresholds();
        assert_eq!(t.rule_for("kpis.mos").direction, Direction::LowerIsWorse);
        assert_eq!(
            t.rule_for("snapshots.frames.3.mos").direction,
            Direction::LowerIsWorse
        );
        assert_eq!(
            t.rule_for("snapshots.aggregate.attempts").abs,
            5.0,
            "fragment keys reach nested rows"
        );
        assert_eq!(t.rule_for("kpis.frame_loss").rel, 0.20, "default otherwise");
    }

    #[test]
    fn threshold_parser_rejects_garbage() {
        assert!(Thresholds::parse("abs = 1.0").is_err(), "no section");
        assert!(Thresholds::parse("[bogus]").is_err(), "unknown section");
        assert!(Thresholds::parse("[default]\nnope = 3").is_err(), "unknown key");
        assert!(
            Thresholds::parse("[default]\ndirection = \"sideways\"").is_err(),
            "unknown direction"
        );
    }

    #[test]
    fn diff_json_is_wellformed() {
        let d = compare(&report(0.02, 4.1, 180.0), &report(0.03, 4.1, 180.0), &thresholds());
        let doc = JsonValue::parse(&d.to_json()).expect("diff JSON parses");
        assert_eq!(
            doc.get("passed"),
            Some(&JsonValue::Bool(false)),
            "regression reflected in JSON"
        );
    }
}
