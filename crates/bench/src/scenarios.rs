//! Reusable experiment scenarios.
//!
//! Every figure/claim reproduction builds its network through these
//! functions so the integration tests, the `harness` binary and the
//! Criterion benches all measure exactly the same systems.

use vgprs_core::{GsmZone, GsmZoneConfig, LatencyProfile, VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::MobileStation;
use vgprs_h323::H323Terminal;
use vgprs_pstn::{PstnPhone, PstnSwitch, TrunkClass};
use vgprs_sim::{Interface, Network, NodeId, SimDuration, SimTime};
use vgprs_tr22973::{TrZone, TrZoneConfig};
use vgprs_wire::{CallId, CellId, Command, Imsi, Lai, Message, Msisdn};

/// A single vGPRS zone with one registered MS and one H.323 terminal —
/// the world of Figures 1–6.
pub struct SingleZone {
    /// The network.
    pub net: Network<Message>,
    /// Zone handles.
    pub zone: VgprsZone,
    /// The mobile station.
    pub ms: NodeId,
    /// The MS's identity.
    pub ms_imsi: Imsi,
    /// The MS's number.
    pub ms_msisdn: Msisdn,
    /// The wireline H.323 terminal.
    pub term: NodeId,
    /// The terminal's alias.
    pub term_alias: Msisdn,
}

impl SingleZone {
    /// Builds the zone and registers both endpoints.
    pub fn build(seed: u64) -> SingleZone {
        let mut net = Network::new(seed);
        let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
        let ms_imsi = Imsi::parse("466920000000001").expect("valid");
        let ms_msisdn = Msisdn::parse("886912000001").expect("valid");
        let term_alias = Msisdn::parse("886220001111").expect("valid");
        let ms = zone.add_subscriber(&mut net, "ms1", ms_imsi, 0xABCD, ms_msisdn);
        let term = zone.add_terminal(&mut net, "term1", term_alias);
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        SingleZone {
            net,
            zone,
            ms,
            ms_imsi,
            ms_msisdn,
            term,
            term_alias,
        }
    }

    /// Places an MS→terminal call and runs until both talk, returning the
    /// post-dial delay (dial → ringback) in milliseconds.
    pub fn call_from_ms(&mut self, call: CallId, talk_for: SimDuration) -> f64 {
        self.net.inject(
            SimDuration::ZERO,
            self.ms,
            Message::Cmd(Command::Dial {
                call,
                called: self.term_alias,
            }),
        );
        let deadline = self.net.now() + SimDuration::from_secs(5) + talk_for;
        self.net.run_until(deadline);
        self.net
            .stats()
            .histogram("ms.post_dial_delay_ms")
            .map(|h| h.mean())
            .unwrap_or(f64::NAN)
    }

    /// Hangs up from the MS side and drains the release.
    pub fn hangup_from_ms(&mut self) {
        self.net
            .inject(SimDuration::ZERO, self.ms, Message::Cmd(Command::Hangup));
        self.net.run_until_quiescent();
    }
}

/// The measured outcome of one roaming-call scenario (Figures 7–8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TromboningReport {
    /// Did the call reach the roamer and connect?
    pub connected: bool,
    /// International trunk seizures across all switches.
    pub international_trunks: usize,
    /// Local trunk seizures across all switches.
    pub local_trunks: usize,
    /// Total trunk cost after 60 s of conversation (cost units).
    pub trunk_cost_60s: f64,
    /// Post-dial delay at the calling phone (ms), if ringback was heard.
    pub post_dial_delay_ms: Option<f64>,
}

/// Figure 7: subscriber `x` (home: UK) roams to Hong Kong under a
/// *classic* GSM visited network; `y` in Hong Kong calls `x`'s UK number.
///
/// Classic GSM call delivery routes via the UK GMSC and back — two
/// international trunks.
pub fn tromboning_classic(seed: u64) -> TromboningReport {
    let mut net = Network::new(seed);
    let lat = LatencyProfile::default();

    // Two national PSTNs joined by an international trunk group.
    let hk_switch = net.add_node("hk.pstn", PstnSwitch::new("hk"));
    let uk_switch = net.add_node("uk.pstn", PstnSwitch::new("uk"));
    net.connect(hk_switch, uk_switch, Interface::Isup, lat.isup_international);

    // Home network (UK): provides x's HLR and the GMSC role.
    let uk = GsmZone::build(
        &mut net,
        GsmZoneConfig {
            name: "uk".into(),
            country_code: "44".into(),
            home_prefix: "447".into(),
            msrn_prefix: "449990".into(),
            lai: Lai::new(234, 15, 1),
            cell: CellId(10),
            tch_capacity: 32,
            auth_on_access: true,
            latency: lat,
        },
        uk_switch,
    );
    // Visited network (HK), classic GSM.
    let hk = GsmZone::build(
        &mut net,
        GsmZoneConfig {
            name: "hk".into(),
            country_code: "852".into(),
            home_prefix: "8529".into(),
            msrn_prefix: "8529990".into(),
            lai: Lai::new(454, 0, 1),
            cell: CellId(20),
            tch_capacity: 32,
            auth_on_access: true,
            latency: lat,
        },
        hk_switch,
    );
    // Roamer dialogue path: HK VLR ↔ UK HLR (international SS7).
    net.connect(hk.vlr, uk.hlr, Interface::D, lat.ss7_international);
    net.node_mut::<vgprs_gsm::Vlr>(hk.vlr)
        .expect("hk vlr")
        .add_hlr_route("234", uk.hlr);

    // x: UK subscriber, roaming in HK.
    let x_imsi = Imsi::parse("234150000000001").expect("valid");
    let x_msisdn = Msisdn::parse("447700900123").expect("valid");
    net.node_mut::<vgprs_gsm::Hlr>(uk.hlr)
        .expect("uk hlr")
        .provision(x_imsi, 0xCAFE, vgprs_wire::SubscriberProfile::full(x_msisdn));
    let x = hk.add_roamer(&mut net, "x", x_imsi, 0xCAFE, x_msisdn);

    // y: a fixed-line phone in HK.
    let y_msisdn = Msisdn::parse("85221230001").expect("valid");
    let y = net.add_node("hk.y", PstnPhone::new(y_msisdn, hk_switch));
    net.connect(y, hk_switch, Interface::Isup, lat.isup);

    // Routing tables.
    {
        let s = net.node_mut::<PstnSwitch>(hk_switch).expect("hk switch");
        s.add_route("44", uk_switch, TrunkClass::International);
        s.add_route("85221230001", y, TrunkClass::Local);
        s.add_route("8529990", hk.msc, TrunkClass::Local);
    }
    {
        let s = net.node_mut::<PstnSwitch>(uk_switch).expect("uk switch");
        s.add_route("447", uk.msc, TrunkClass::National);
        s.add_route("852", hk_switch, TrunkClass::International);
    }

    // x registers in HK; then y calls x's UK number.
    net.inject(SimDuration::ZERO, x, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    let call = CallId(900);
    net.inject(
        SimDuration::ZERO,
        y,
        Message::Cmd(Command::Dial {
            call,
            called: x_msisdn,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(65));

    let connected = net
        .node::<MobileStation>(x)
        .map(|m| m.calls_connected > 0)
        .unwrap_or(false);
    summarize_trunks(&net, &[hk_switch, uk_switch], call, connected)
}

/// Figure 8: the same roaming call, but the visited network runs vGPRS
/// with a local gatekeeper and an H.323/PSTN gateway. When `x` is
/// registered locally the call never leaves Hong Kong; when not, the
/// gateway falls back to the international PSTN (crankback).
pub fn tromboning_vgprs(seed: u64, roamer_registered: bool) -> TromboningReport {
    let mut net = Network::new(seed);
    let lat = LatencyProfile::default();

    let hk_switch = net.add_node("hk.pstn", PstnSwitch::new("hk"));
    let uk_switch = net.add_node("uk.pstn", PstnSwitch::new("uk"));
    net.connect(hk_switch, uk_switch, Interface::Isup, lat.isup_international);

    // Home network (UK) stays classic: it holds x's HLR.
    let uk = GsmZone::build(
        &mut net,
        GsmZoneConfig {
            name: "uk".into(),
            country_code: "44".into(),
            home_prefix: "447".into(),
            msrn_prefix: "449990".into(),
            lai: Lai::new(234, 15, 1),
            cell: CellId(10),
            tch_capacity: 32,
            auth_on_access: true,
            latency: lat,
        },
        uk_switch,
    );

    // Visited network (HK) runs vGPRS.
    let mut hk = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            name: "hk".into(),
            country_code: "852".into(),
            msrn_prefix: "8529990".into(),
            lai: Lai::new(454, 0, 1),
            cell: CellId(20),
            ..VgprsZoneConfig::taiwan()
        },
    );
    net.connect(hk.vlr, uk.hlr, Interface::D, lat.ss7_international);
    net.node_mut::<vgprs_gsm::Vlr>(hk.vlr)
        .expect("hk vlr")
        .add_hlr_route("234", uk.hlr);

    let x_imsi = Imsi::parse("234150000000001").expect("valid");
    let x_msisdn = Msisdn::parse("447700900123").expect("valid");
    net.node_mut::<vgprs_gsm::Hlr>(uk.hlr)
        .expect("uk hlr")
        .provision(x_imsi, 0xCAFE, vgprs_wire::SubscriberProfile::full(x_msisdn));
    let x = hk.add_roamer(&mut net, "x", x_imsi, 0xCAFE, x_msisdn);

    let y_msisdn = Msisdn::parse("85221230001").expect("valid");
    let y = net.add_node("hk.y", PstnPhone::new(y_msisdn, hk_switch));
    net.connect(y, hk_switch, Interface::Isup, lat.isup);

    // The HK telco hands 44-prefixed calls to its VoIP gateway first
    // (Figure 8, step (1)); "44" also routes internationally as the
    // crankback fallback.
    let _gw = hk.add_gateway(&mut net, hk_switch, "447");
    {
        let s = net.node_mut::<PstnSwitch>(hk_switch).expect("hk switch");
        s.add_route("44", uk_switch, TrunkClass::International);
        s.add_route("85221230001", y, TrunkClass::Local);
    }
    {
        let s = net.node_mut::<PstnSwitch>(uk_switch).expect("uk switch");
        s.add_route("447", uk.msc, TrunkClass::National);
        s.add_route("852", hk_switch, TrunkClass::International);
    }

    if roamer_registered {
        net.inject(SimDuration::ZERO, x, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
    }
    let call = CallId(900);
    net.inject(
        SimDuration::ZERO,
        y,
        Message::Cmd(Command::Dial {
            call,
            called: x_msisdn,
        }),
    );
    net.run_until(net.now() + SimDuration::from_secs(65));

    let connected = net
        .node::<MobileStation>(x)
        .map(|m| m.calls_connected > 0)
        .unwrap_or(false);
    summarize_trunks(&net, &[hk_switch, uk_switch], call, connected)
}

fn summarize_trunks(
    net: &Network<Message>,
    switches: &[NodeId],
    call: CallId,
    connected: bool,
) -> TromboningReport {
    // Call legs carry their own (renamed) identifiers through the GMSC,
    // exactly as in real networks; the scenario has a single call, so
    // totalling the ledgers per trunk class captures all of its legs.
    let _ = call;
    let mut international = 0;
    let mut local = 0;
    let mut cost = 0.0;
    for &sw in switches {
        let ledger = net
            .node::<PstnSwitch>(sw)
            .expect("switch")
            .ledger();
        for entry in ledger.entries() {
            match entry.class {
                TrunkClass::International => international += 1,
                TrunkClass::Local => local += 1,
                TrunkClass::National => {}
            }
            cost += entry.cost(net.now());
        }
    }
    TromboningReport {
        connected,
        international_trunks: international,
        local_trunks: local,
        trunk_cost_60s: cost,
        post_dial_delay_ms: net
            .stats()
            .histogram("phone.post_dial_delay_ms")
            .map(|h| h.mean()),
    }
}

/// The measured outcome of the inter-system handoff scenario (Figure 9).
#[derive(Clone, Copy, Debug)]
pub struct HandoffReport {
    /// The MS completed the handoff.
    pub handoffs_completed: u64,
    /// Frames the MS heard before the handoff.
    pub frames_before: u64,
    /// Frames the MS heard after the handoff (voice continuity).
    pub frames_after: u64,
    /// Frames the terminal heard after the handoff (uplink continuity).
    pub term_frames_after: u64,
}

/// Figure 9: an MS in a call through a VMSC moves into a cell served by a
/// neighboring *classic* GSM MSC. The VMSC stays in the path as the
/// anchor; voice continues over an inter-MSC trunk.
pub fn intersystem_handoff(seed: u64) -> HandoffReport {
    let mut net = Network::new(seed);
    let lat = LatencyProfile::default();

    let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    // Neighboring classic MSC (same country) with its own BSC/BTS.
    let pstn = net.add_node("tw.pstn", PstnSwitch::new("tw"));
    let neighbor = GsmZone::build(
        &mut net,
        GsmZoneConfig {
            name: "tw2".into(),
            country_code: "886".into(),
            home_prefix: "8869".into(),
            msrn_prefix: "8869991".into(),
            lai: Lai::new(466, 92, 2),
            cell: CellId(2),
            tch_capacity: 32,
            auth_on_access: true,
            latency: lat,
        },
        pstn,
    );
    // E interface between the two MSCs; the VMSC knows cell 2's owner.
    net.connect(zone.vmsc, neighbor.msc, Interface::E, lat.e);
    net.node_mut::<Vmsc>(zone.vmsc)
        .expect("vmsc")
        .add_neighbor_cell(CellId(2), neighbor.msc);

    let ms_imsi = Imsi::parse("466920000000001").expect("valid");
    let ms_msisdn = Msisdn::parse("886912000001").expect("valid");
    let term_alias = Msisdn::parse("886220001111").expect("valid");
    let ms = zone.add_subscriber(&mut net, "ms1", ms_imsi, 0xABCD, ms_msisdn);
    let term = zone.add_terminal(&mut net, "term1", term_alias);
    // The MS can also hear the neighbor's cell.
    net.connect(ms, neighbor.bts, Interface::Um, lat.um);
    net.node_mut::<vgprs_gsm::Bts>(neighbor.bts)
        .expect("neighbor bts")
        .register_ms(ms);
    net.node_mut::<MobileStation>(ms)
        .expect("ms")
        .add_neighbor(CellId(2), neighbor.bts);

    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias,
        }),
    );
    // Talk for a while before moving.
    net.run_until(SimTime::from_micros(10_000_000));
    let frames_before = net.node::<MobileStation>(ms).expect("ms").frames_received;
    let term_frames_before = net.node::<H323Terminal>(term).expect("term").frames_received;

    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    net.run_until(SimTime::from_micros(20_000_000));

    let handset = net.node::<MobileStation>(ms).expect("ms");
    let terminal = net.node::<H323Terminal>(term).expect("term");
    HandoffReport {
        handoffs_completed: handset.handoffs_completed,
        frames_before,
        frames_after: handset.frames_received - frames_before,
        term_frames_after: terminal.frames_received - term_frames_before,
    }
}

/// Section 7's closing claim: "inter-system handoff between two VMSCs
/// follows the same procedure". Identical to [`intersystem_handoff`] but
/// the neighboring cell belongs to a *second VMSC* (its own GPRS core and
/// H.323 zone), not a classic MSC.
pub fn intervmsc_handoff(seed: u64) -> HandoffReport {
    let mut net = Network::new(seed);
    let lat = LatencyProfile::default();

    let mut zone1 = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let zone2 = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            name: "tw2".into(),
            lai: Lai::new(466, 92, 2),
            cell: CellId(2),
            msrn_prefix: "8869991".into(),
            pool: (vgprs_wire::Ipv4Addr::from_octets(10, 201, 0, 0), 16),
            gk_addr: vgprs_wire::TransportAddr::new(
                vgprs_wire::Ipv4Addr::from_octets(10, 2, 0, 2),
                1719,
            ),
            ..VgprsZoneConfig::taiwan()
        },
    );
    net.connect(zone1.vmsc, zone2.vmsc, Interface::E, lat.e);
    net.node_mut::<Vmsc>(zone1.vmsc)
        .expect("vmsc1")
        .add_neighbor_cell(CellId(2), zone2.vmsc);

    let ms = zone1.add_subscriber(
        &mut net,
        "ms1",
        Imsi::parse("466920000000001").expect("valid"),
        0xABCD,
        Msisdn::parse("886912000001").expect("valid"),
    );
    let term_alias = Msisdn::parse("886220001111").expect("valid");
    let term = zone1.add_terminal(&mut net, "term1", term_alias);
    net.connect(ms, zone2.bts, Interface::Um, lat.um);
    net.node_mut::<vgprs_gsm::Bts>(zone2.bts)
        .expect("bts2")
        .register_ms(ms);
    net.node_mut::<MobileStation>(ms)
        .expect("ms")
        .add_neighbor(CellId(2), zone2.bts);

    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias,
        }),
    );
    net.run_until(SimTime::from_micros(10_000_000));
    let frames_before = net.node::<MobileStation>(ms).expect("ms").frames_received;
    let term_before = net.node::<H323Terminal>(term).expect("term").frames_received;
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    net.run_until(SimTime::from_micros(20_000_000));
    let handset = net.node::<MobileStation>(ms).expect("ms");
    let terminal = net.node::<H323Terminal>(term).expect("term");
    HandoffReport {
        handoffs_completed: handset.handoffs_completed,
        frames_before,
        frames_after: handset.frames_received - frames_before,
        term_frames_after: terminal.frames_received - term_before,
    }
}

/// Figure 9 with windowed delay measurement: mean downlink frame delay
/// at the MS before vs. after the handoff (the C5 measurement).
pub fn intersystem_handoff_windowed(seed: u64) -> crate::experiments::C5Report {
    // Identical world to `intersystem_handoff`, but we snapshot the MS's
    // voice-delay histogram at the handoff boundary.
    let mut net = Network::new(seed);
    let lat = LatencyProfile::default();
    let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let pstn = net.add_node("tw.pstn", PstnSwitch::new("tw"));
    let neighbor = GsmZone::build(
        &mut net,
        GsmZoneConfig {
            name: "tw2".into(),
            country_code: "886".into(),
            home_prefix: "8869".into(),
            msrn_prefix: "8869991".into(),
            lai: Lai::new(466, 92, 2),
            cell: CellId(2),
            tch_capacity: 32,
            auth_on_access: true,
            latency: lat,
        },
        pstn,
    );
    net.connect(zone.vmsc, neighbor.msc, Interface::E, lat.e);
    net.node_mut::<Vmsc>(zone.vmsc)
        .expect("vmsc")
        .add_neighbor_cell(CellId(2), neighbor.msc);
    let ms = zone.add_subscriber(
        &mut net,
        "ms1",
        Imsi::parse("466920000000001").expect("valid"),
        0xABCD,
        Msisdn::parse("886912000001").expect("valid"),
    );
    let term_alias = Msisdn::parse("886220001111").expect("valid");
    let _term = zone.add_terminal(&mut net, "term1", term_alias);
    net.connect(ms, neighbor.bts, Interface::Um, lat.um);
    net.node_mut::<vgprs_gsm::Bts>(neighbor.bts)
        .expect("bts")
        .register_ms(ms);
    net.node_mut::<MobileStation>(ms)
        .expect("ms")
        .add_neighbor(CellId(2), neighbor.bts);

    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias,
        }),
    );
    net.run_until(SimTime::from_micros(10_000_000));
    let (n1, s1) = histogram_sum(&net, "ms.voice_e2e_ms");
    net.inject(
        SimDuration::ZERO,
        ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    net.run_until(SimTime::from_micros(20_000_000));
    let (n2, s2) = histogram_sum(&net, "ms.voice_e2e_ms");
    let before = if n1 > 0 { s1 / n1 as f64 } else { f64::NAN };
    let after = if n2 > n1 {
        (s2 - s1) / (n2 - n1) as f64
    } else {
        f64::NAN
    };
    crate::experiments::C5Report {
        handoffs: net.node::<MobileStation>(ms).expect("ms").handoffs_completed,
        delay_before_ms: before,
        delay_after_ms: after,
    }
}

fn histogram_sum(net: &Network<Message>, name: &str) -> (u64, f64) {
    net.stats()
        .histogram(name)
        .map(|h| (h.count(), h.sum()))
        .unwrap_or((0, 0.0))
}

/// A TR 22.973 zone with one TR MS and a terminal — the baseline world.
pub struct TrSingleZone {
    /// The network.
    pub net: Network<Message>,
    /// Zone handles.
    pub zone: TrZone,
    /// The TR mobile.
    pub ms: NodeId,
    /// Its number.
    pub ms_msisdn: Msisdn,
    /// The wireline terminal.
    pub term: NodeId,
    /// Its alias.
    pub term_alias: Msisdn,
}

impl TrSingleZone {
    /// Builds and registers both endpoints.
    pub fn build(seed: u64) -> TrSingleZone {
        let mut net = Network::new(seed);
        let mut zone = TrZone::build(&mut net, TrZoneConfig::taiwan());
        let ms_msisdn = Msisdn::parse("886912000001").expect("valid");
        let term_alias = Msisdn::parse("886220001111").expect("valid");
        let ms = zone.add_tr_ms(
            &mut net,
            "trms1",
            Imsi::parse("466920000000001").expect("valid"),
            ms_msisdn,
        );
        let term = zone.add_terminal(&mut net, "term1", term_alias);
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        TrSingleZone {
            net,
            zone,
            ms,
            ms_msisdn,
            term,
            term_alias,
        }
    }
}
