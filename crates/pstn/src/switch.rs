//! A PSTN switch: longest-prefix ISUP routing with trunk accounting.

use std::collections::HashMap;

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{CallId, Cause, Cic, IsupKind, IsupMessage, Message, Msisdn};

use crate::accounting::{Ledger, TrunkClass};

/// One routing-table entry.
#[derive(Clone, Debug)]
pub struct Route {
    /// Digit prefix this route matches.
    pub prefix: String,
    /// Next hop (another switch, an MSC, a gateway, or a phone).
    pub next_hop: NodeId,
    /// Tariff class of the trunk group toward that hop.
    pub class: TrunkClass,
}

/// The two trunk legs of a transit call.
#[derive(Debug)]
struct CallLegs {
    leg_in: (NodeId, Cic),
    leg_out: Option<(NodeId, Cic)>,
    called: Msisdn,
    calling: Option<Msisdn>,
    answered: bool,
    /// Next hops already attempted (crankback / alternate routing).
    tried: Vec<NodeId>,
}

impl CallLegs {
    /// The leg opposite to the one identified by `(from, cic)`, if that
    /// pair is one of this call's legs.
    fn opposite(&self, from: NodeId, cic: Cic) -> Option<(NodeId, Cic)> {
        if self.leg_in == (from, cic) {
            self.leg_out
        } else if self.leg_out == Some((from, cic)) {
            Some(self.leg_in)
        } else {
            None
        }
    }
}

/// A circuit-switched telephone exchange.
///
/// Routes IAMs by longest matching digit prefix, relays the rest of the
/// ISUP dialogue and the bearer frames between the two legs, and records
/// every outgoing trunk seizure in its [`Ledger`] — the data source for
/// the tromboning experiments (Figures 7–8).
#[derive(Debug)]
pub struct PstnSwitch {
    name: String,
    routes: Vec<Route>,
    calls: HashMap<CallId, CallLegs>,
    /// Both legs of every call, for exact (node, circuit) resolution —
    /// a call may transit this switch more than once (looping routes).
    leg_index: HashMap<(NodeId, Cic), CallId>,
    ledger: Ledger,
    next_cic: u16,
}

impl PstnSwitch {
    /// Creates a switch with no routes.
    pub fn new(name: impl Into<String>) -> Self {
        PstnSwitch {
            name: name.into(),
            routes: Vec::new(),
            calls: HashMap::new(),
            leg_index: HashMap::new(),
            ledger: Ledger::new(),
            next_cic: 1000,
        }
    }

    /// The switch's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a route. Longest prefix wins; ties resolve to the earliest
    /// entry.
    pub fn add_route(&mut self, prefix: impl Into<String>, next_hop: NodeId, class: TrunkClass) {
        self.routes.push(Route {
            prefix: prefix.into(),
            next_hop,
            class,
        });
    }

    /// The accounting ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// Calls currently transiting this switch.
    pub fn active_calls(&self) -> usize {
        self.calls.len()
    }

    /// Candidate routes for `called`, best (longest prefix) first,
    /// excluding already-tried next hops.
    fn candidates(&self, called: &Msisdn, tried: &[NodeId]) -> Vec<Route> {
        let digits = called.digits();
        let mut matching: Vec<Route> = self
            .routes
            .iter()
            .filter(|r| digits.starts_with(&r.prefix) && !tried.contains(&r.next_hop))
            .cloned()
            .collect();
        matching.sort_by_key(|r| std::cmp::Reverse(r.prefix.len()));
        matching
    }

    fn alloc_cic(&mut self) -> Cic {
        self.next_cic += 1;
        Cic(self.next_cic)
    }

    /// Resolves a message arriving on circuit `(from, cic)` to its call
    /// and the opposite leg.
    fn resolve(&self, from: NodeId, cic: Cic) -> Option<(CallId, Option<(NodeId, Cic)>)> {
        let call = *self.leg_index.get(&(from, cic))?;
        let legs = self.calls.get(&call)?;
        Some((call, legs.opposite(from, cic)))
    }

    /// Seizes the next untried candidate route for the call, if any.
    fn try_next_route(&mut self, ctx: &mut Context<'_, Message>, call: CallId) -> bool {
        let Some((called, calling, tried)) = self
            .calls
            .get(&call)
            .map(|l| (l.called, l.calling, l.tried.clone()))
        else {
            return false;
        };
        let Some(route) = self.candidates(&called, &tried).into_iter().next() else {
            return false;
        };
        let out_cic = self.alloc_cic();
        if let Some(legs) = self.calls.get_mut(&call) {
            legs.leg_out = Some((route.next_hop, out_cic));
            legs.tried.push(route.next_hop);
        }
        self.leg_index.insert((route.next_hop, out_cic), call);
        self.ledger.seize(call, route.class, ctx.now());
        ctx.count(route.class.counter_name());
        ctx.count("pstn.calls_routed");
        ctx.send(
            route.next_hop,
            Message::Isup(IsupMessage {
                cic: out_cic,
                call,
                kind: IsupKind::Iam { called, calling },
            }),
        );
        true
    }

    fn handle_isup(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: IsupMessage) {
        let IsupMessage { cic, call, kind } = msg;
        match kind {
            IsupKind::Iam { called, calling } => {
                self.calls.insert(
                    call,
                    CallLegs {
                        leg_in: (from, cic),
                        leg_out: None,
                        called,
                        calling,
                        answered: false,
                        tried: Vec::new(),
                    },
                );
                self.leg_index.insert((from, cic), call);
                if !self.try_next_route(ctx, call) {
                    ctx.count("pstn.unroutable");
                    self.calls.remove(&call);
                    self.leg_index.remove(&(from, cic));
                    ctx.send(
                        from,
                        Message::Isup(IsupMessage {
                            cic,
                            call,
                            kind: IsupKind::Rel {
                                cause: Cause::NoRouteToDestination,
                            },
                        }),
                    );
                }
            }
            IsupKind::Acm | IsupKind::Anm => {
                let Some((owning_call, other)) = self.resolve(from, cic) else {
                    ctx.count("pstn.unknown_circuit");
                    return;
                };
                if matches!(kind, IsupKind::Anm) {
                    if let Some(legs) = self.calls.get_mut(&owning_call) {
                        legs.answered = true;
                    }
                }
                if let Some((peer, peer_cic)) = other {
                    ctx.send(
                        peer,
                        Message::Isup(IsupMessage {
                            cic: peer_cic,
                            call,
                            kind,
                        }),
                    );
                }
            }
            IsupKind::Rel { cause } => {
                ctx.send(
                    from,
                    Message::Isup(IsupMessage {
                        cic,
                        call,
                        kind: IsupKind::Rlc,
                    }),
                );
                let Some((owning_call, other)) = self.resolve(from, cic) else {
                    ctx.count("pstn.unknown_circuit");
                    return;
                };
                // Crankback: the preferred route refused an unanswered call
                // with "no route" — try the next-best route instead of
                // clearing (this is how the Figure 8 gateway falls back to
                // the international PSTN when the gatekeeper misses).
                let is_out_leg = self
                    .calls
                    .get(&owning_call)
                    .and_then(|l| l.leg_out)
                    .map(|(peer, c)| peer == from && c == cic)
                    .unwrap_or(false);
                let unanswered = self
                    .calls
                    .get(&owning_call)
                    .map(|l| !l.answered)
                    .unwrap_or(false);
                if is_out_leg && unanswered && cause == Cause::NoRouteToDestination {
                    self.leg_index.remove(&(from, cic));
                    self.ledger.release(owning_call, ctx.now());
                    if self.try_next_route(ctx, owning_call) {
                        ctx.count("pstn.crankback_reroutes");
                        return;
                    }
                }
                if let Some((peer, peer_cic)) = other {
                    ctx.send(
                        peer,
                        Message::Isup(IsupMessage {
                            cic: peer_cic,
                            call,
                            kind: IsupKind::Rel { cause },
                        }),
                    );
                }
                self.ledger.release(owning_call, ctx.now());
                if let Some(legs) = self.calls.remove(&owning_call) {
                    self.leg_index.remove(&legs.leg_in);
                    if let Some(out) = legs.leg_out {
                        self.leg_index.remove(&out);
                    }
                }
            }
            IsupKind::Rlc => {}
        }
    }
}

impl Node<Message> for PstnSwitch {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Isup, Message::Isup(m)) => self.handle_isup(ctx, from, m),
            (
                Interface::Isup,
                Message::TrunkVoice {
                    cic,
                    call,
                    seq,
                    origin_us,
                },
            ) => {
                if let Some((_, Some((peer, peer_cic)))) = self.resolve(from, cic) {
                    ctx.send(
                        peer,
                        Message::TrunkVoice {
                            cic: peer_cic,
                            call,
                            seq,
                            origin_us,
                        },
                    );
                }
            }
            _ => ctx.count("pstn.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};

    struct Endpoint {
        switch: NodeId,
        originate: Option<(CallId, Msisdn)>,
        got: Vec<Message>,
        answer: bool,
    }
    impl Node<Message> for Endpoint {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            if let Some((call, called)) = self.originate.take() {
                ctx.send(
                    self.switch,
                    Message::Isup(IsupMessage {
                        cic: Cic(1),
                        call,
                        kind: IsupKind::Iam {
                            called,
                            calling: None,
                        },
                    }),
                );
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Message>,
            from: NodeId,
            _i: Interface,
            m: Message,
        ) {
            if let Message::Isup(ref isup) = m {
                if self.answer {
                    if let IsupKind::Iam { .. } = isup.kind {
                        ctx.send(
                            from,
                            Message::Isup(IsupMessage {
                                cic: isup.cic,
                                call: isup.call,
                                kind: IsupKind::Anm,
                            }),
                        );
                        ctx.send(
                            from,
                            Message::TrunkVoice {
                                cic: isup.cic,
                                call: isup.call,
                                seq: 1,
                                origin_us: 0,
                            },
                        );
                    }
                }
            }
            self.got.push(m);
        }
    }

    fn msisdn(s: &str) -> Msisdn {
        Msisdn::parse(s).unwrap()
    }

    fn rig() -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let sw = net.add_node("switch", PstnSwitch::new("test"));
        let caller = net.add_node(
            "caller",
            Endpoint {
                switch: sw,
                originate: Some((CallId(1), msisdn("85291234567"))),
                got: Vec::new(),
                answer: false,
            },
        );
        let callee = net.add_node(
            "callee",
            Endpoint {
                switch: sw,
                originate: None,
                got: Vec::new(),
                answer: true,
            },
        );
        net.connect(caller, sw, Interface::Isup, SimDuration::from_millis(2));
        net.connect(callee, sw, Interface::Isup, SimDuration::from_millis(8));
        net.node_mut::<PstnSwitch>(sw).unwrap().add_route(
            "852",
            callee,
            TrunkClass::International,
        );
        (net, sw, caller, callee)
    }

    #[test]
    fn routes_iam_and_relays_answer() {
        let (mut net, sw, caller, callee) = rig();
        net.run_until_quiescent();
        let callee_got = &net.node::<Endpoint>(callee).unwrap().got;
        assert!(matches!(
            callee_got[0],
            Message::Isup(IsupMessage {
                kind: IsupKind::Iam { .. },
                ..
            })
        ));
        let caller_got = &net.node::<Endpoint>(caller).unwrap().got;
        assert!(matches!(
            caller_got[0],
            Message::Isup(IsupMessage {
                kind: IsupKind::Anm,
                ..
            })
        ));
        assert_eq!(
            net.node::<PstnSwitch>(sw)
                .unwrap()
                .ledger()
                .count_for(CallId(1), TrunkClass::International),
            1
        );
        assert_eq!(net.stats().counter("pstn.trunk_international_seized"), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut net = Network::new(1);
        let sw = net.add_node("switch", PstnSwitch::new("test"));
        let generic = net.add_node(
            "generic",
            Endpoint {
                switch: sw,
                originate: None,
                got: Vec::new(),
                answer: false,
            },
        );
        let specific = net.add_node(
            "specific",
            Endpoint {
                switch: sw,
                originate: None,
                got: Vec::new(),
                answer: false,
            },
        );
        let caller = net.add_node(
            "caller",
            Endpoint {
                switch: sw,
                originate: Some((CallId(1), msisdn("85291234567"))),
                got: Vec::new(),
                answer: false,
            },
        );
        for (n, _) in [(generic, 0), (specific, 0), (caller, 0)] {
            net.connect(n, sw, Interface::Isup, SimDuration::from_millis(1));
        }
        {
            let s = net.node_mut::<PstnSwitch>(sw).unwrap();
            s.add_route("8", generic, TrunkClass::National);
            s.add_route("8529", specific, TrunkClass::Local);
        }
        net.run_until_quiescent();
        assert_eq!(net.node::<Endpoint>(specific).unwrap().got.len(), 1);
        assert!(net.node::<Endpoint>(generic).unwrap().got.is_empty());
    }

    #[test]
    fn unroutable_released_with_cause() {
        let mut net = Network::new(1);
        let sw = net.add_node("switch", PstnSwitch::new("test"));
        let caller = net.add_node(
            "caller",
            Endpoint {
                switch: sw,
                originate: Some((CallId(1), msisdn("99999999999"))),
                got: Vec::new(),
                answer: false,
            },
        );
        net.connect(caller, sw, Interface::Isup, SimDuration::from_millis(1));
        net.run_until_quiescent();
        match &net.node::<Endpoint>(caller).unwrap().got[0] {
            Message::Isup(IsupMessage {
                kind:
                    IsupKind::Rel {
                        cause: Cause::NoRouteToDestination,
                    },
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn release_clears_call_and_ledger() {
        // The caller endpoint hangs up on its own leg (circuits identify
        // legs, so a release must come from a real leg holder).
        struct HangingCaller {
            switch: NodeId,
            answered: bool,
        }
        impl Node<Message> for HangingCaller {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(
                    self.switch,
                    Message::Isup(IsupMessage {
                        cic: Cic(1),
                        call: CallId(1),
                        kind: IsupKind::Iam {
                            called: Msisdn::parse("85291234567").unwrap(),
                            calling: None,
                        },
                    }),
                );
            }
            fn on_message(
                &mut self,
                ctx: &mut Context<'_, Message>,
                from: NodeId,
                _i: Interface,
                m: Message,
            ) {
                if let Message::Isup(IsupMessage {
                    kind: IsupKind::Anm,
                    ..
                }) = m
                {
                    self.answered = true;
                    ctx.send(
                        from,
                        Message::Isup(IsupMessage {
                            cic: Cic(1),
                            call: CallId(1),
                            kind: IsupKind::Rel {
                                cause: Cause::NormalClearing,
                            },
                        }),
                    );
                }
            }
        }
        let mut net = Network::new(1);
        let sw = net.add_node("switch", PstnSwitch::new("test"));
        let caller = net.add_node(
            "caller",
            HangingCaller {
                switch: sw,
                answered: false,
            },
        );
        let callee = net.add_node(
            "callee",
            Endpoint {
                switch: sw,
                originate: None,
                got: Vec::new(),
                answer: true,
            },
        );
        net.connect(caller, sw, Interface::Isup, SimDuration::from_millis(2));
        net.connect(callee, sw, Interface::Isup, SimDuration::from_millis(8));
        net.node_mut::<PstnSwitch>(sw).unwrap().add_route(
            "852",
            callee,
            TrunkClass::International,
        );
        net.run_until_quiescent();
        assert!(net.node::<HangingCaller>(caller).unwrap().answered);
        let s = net.node::<PstnSwitch>(sw).unwrap();
        assert_eq!(s.active_calls(), 0);
        assert!(s.ledger().entries()[0].released_at.is_some());
    }

    #[test]
    fn voice_relayed_between_legs() {
        // The answering endpoint sends one voice frame right after ANM; the
        // switch must relay it to the originating leg.
        let (mut net, _sw, caller, _callee) = rig();
        net.run_until_quiescent();
        let caller_got = &net.node::<Endpoint>(caller).unwrap().got;
        assert!(caller_got
            .iter()
            .any(|m| matches!(m, Message::TrunkVoice { .. })));
    }

    #[test]
    fn voice_from_stranger_not_relayed() {
        let (mut net, sw, caller, callee) = rig();
        net.run_until_quiescent();
        struct Stranger {
            sw: NodeId,
        }
        impl Node<Message> for Stranger {
            fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
                ctx.send(
                    self.sw,
                    Message::TrunkVoice {
                        cic: Cic(9999),
                        call: CallId(1),
                        seq: 99,
                        origin_us: 0,
                    },
                );
            }
            fn on_message(
                &mut self,
                _c: &mut Context<'_, Message>,
                _f: NodeId,
                _i: Interface,
                _m: Message,
            ) {
            }
        }
        let before_caller = net.node::<Endpoint>(caller).unwrap().got.len();
        let before_callee = net.node::<Endpoint>(callee).unwrap().got.len();
        let s = net.add_node("stranger", Stranger { sw });
        net.connect(s, sw, Interface::Isup, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(net.node::<Endpoint>(caller).unwrap().got.len(), before_caller);
        assert_eq!(net.node::<Endpoint>(callee).unwrap().got.len(), before_callee);
    }
}
