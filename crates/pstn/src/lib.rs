//! # vgprs-pstn — circuit-switched telephone network substrate
//!
//! ISUP switches with longest-prefix routing and per-trunk-class cost
//! accounting ([`PstnSwitch`], [`Ledger`]), plus plain telephones
//! ([`PstnPhone`]). The accounting ledger is the measurement instrument
//! for the paper's tromboning scenarios (Figures 7–8): it records every
//! local/national/international trunk seizure per call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accounting;
mod phone;
mod switch;

pub use accounting::{Ledger, TrunkClass, TrunkUse};
pub use phone::{PhoneState, PstnPhone};
pub use switch::{PstnSwitch, Route};
