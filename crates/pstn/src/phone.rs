//! Fixed-line telephone endpoints.

use vgprs_sim::{Context, Interface, Node, NodeId, SimDuration, SimTime, TimerToken};
use vgprs_wire::{CallId, Cause, Cic, Command, IsupKind, IsupMessage, Message, Msisdn};

/// Timer tag: answer the ringing call.
const TIMER_ANSWER: u64 = 1;
/// Timer tag: emit the next voice frame.
const TIMER_VOICE: u64 = 2;

/// Observable state of a phone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhoneState {
    /// On hook.
    Idle,
    /// Dialed, waiting for the network.
    Calling,
    /// Hearing ringback.
    Ringback,
    /// Ringing (incoming).
    Ringing,
    /// In conversation.
    Active,
}

/// A plain telephone attached to a [`PstnSwitch`](crate::PstnSwitch).
///
/// Speaks a subscriber-line simplification of ISUP directly: the paper's
/// scenarios only need the phone to originate, ring, answer and clear.
#[derive(Debug)]
pub struct PstnPhone {
    msisdn: Msisdn,
    switch: NodeId,
    answer_after: Option<SimDuration>,
    talk_on_connect: bool,
    state: PhoneState,
    call: Option<CallId>,
    cic: Option<Cic>,
    voice_seq: u32,
    voice_timer: Option<TimerToken>,
    dialed_at: Option<SimTime>,
    /// Voice frames received.
    pub frames_received: u64,
    /// Calls answered or connected.
    pub calls_connected: u64,
}

impl PstnPhone {
    /// Creates an idle phone attached to `switch`.
    pub fn new(msisdn: Msisdn, switch: NodeId) -> Self {
        PstnPhone {
            msisdn,
            switch,
            answer_after: Some(SimDuration::from_secs(2)),
            talk_on_connect: true,
            state: PhoneState::Idle,
            call: None,
            cic: None,
            voice_seq: 0,
            voice_timer: None,
            dialed_at: None,
            frames_received: 0,
            calls_connected: 0,
        }
    }

    /// Overrides the auto-answer delay (`None` = never answer).
    pub fn with_answer_after(mut self, delay: Option<SimDuration>) -> Self {
        self.answer_after = delay;
        self
    }

    /// The phone's number.
    pub fn msisdn(&self) -> Msisdn {
        self.msisdn
    }

    /// Current state.
    pub fn state(&self) -> PhoneState {
        self.state
    }

    fn send_isup(&self, ctx: &mut Context<'_, Message>, kind: IsupKind) {
        if let (Some(call), Some(cic)) = (self.call, self.cic) {
            ctx.send(
                self.switch,
                Message::Isup(IsupMessage { cic, call, kind }),
            );
        }
    }

    fn start_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if self.voice_timer.is_none() {
            self.voice_timer = Some(ctx.set_timer(SimDuration::from_millis(20), TIMER_VOICE));
        }
    }

    fn stop_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(t) = self.voice_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn enter_active(&mut self, ctx: &mut Context<'_, Message>) {
        self.state = PhoneState::Active;
        self.calls_connected += 1;
        ctx.count("phone.calls_connected");
        if let Some(at) = self.dialed_at.take() {
            ctx.observe_duration("phone.call_setup_ms", ctx.now().duration_since(at));
        }
        if self.talk_on_connect {
            self.start_voice(ctx);
        }
    }

    fn clear(&mut self, ctx: &mut Context<'_, Message>) {
        self.stop_voice(ctx);
        self.state = PhoneState::Idle;
        self.call = None;
        self.cic = None;
    }
}

impl Node<Message> for PstnPhone {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(cmd)) => match cmd {
                Command::Dial { call, called } => {
                    if self.state != PhoneState::Idle {
                        return;
                    }
                    self.state = PhoneState::Calling;
                    self.call = Some(call);
                    self.cic = Some(Cic(1));
                    self.dialed_at = Some(ctx.now());
                    ctx.count("phone.calls_dialed");
                    self.send_isup(
                        ctx,
                        IsupKind::Iam {
                            called,
                            calling: Some(self.msisdn),
                        },
                    );
                }
                Command::Answer
                    if self.state == PhoneState::Ringing => {
                        self.send_isup(ctx, IsupKind::Anm);
                        self.enter_active(ctx);
                    }
                Command::Hangup
                    if self.state != PhoneState::Idle => {
                        self.send_isup(
                            ctx,
                            IsupKind::Rel {
                                cause: Cause::NormalClearing,
                            },
                        );
                        self.stop_voice(ctx);
                    }
                Command::StartTalking
                    if self.state == PhoneState::Active => {
                        self.start_voice(ctx);
                    }
                Command::StopTalking => self.stop_voice(ctx),
                _ => {}
            },
            (Interface::Isup, Message::Isup(IsupMessage { cic, call, kind })) => match kind {
                IsupKind::Iam { .. } => {
                    if self.state != PhoneState::Idle {
                        ctx.send(
                            self.switch,
                            Message::Isup(IsupMessage {
                                cic,
                                call,
                                kind: IsupKind::Rel {
                                    cause: Cause::UserBusy,
                                },
                            }),
                        );
                        return;
                    }
                    self.state = PhoneState::Ringing;
                    self.call = Some(call);
                    self.cic = Some(cic);
                    ctx.count("phone.ringing");
                    self.send_isup(ctx, IsupKind::Acm);
                    if let Some(delay) = self.answer_after {
                        ctx.set_timer(delay, TIMER_ANSWER);
                    }
                }
                IsupKind::Acm => {
                    if self.state == PhoneState::Calling && self.call == Some(call) {
                        self.state = PhoneState::Ringback;
                        if let Some(at) = self.dialed_at {
                            ctx.observe_duration(
                                "phone.post_dial_delay_ms",
                                ctx.now().duration_since(at),
                            );
                        }
                    }
                }
                IsupKind::Anm => {
                    if self.call == Some(call)
                        && matches!(self.state, PhoneState::Calling | PhoneState::Ringback)
                    {
                        self.enter_active(ctx);
                    }
                }
                IsupKind::Rel { .. } => {
                    self.send_isup(ctx, IsupKind::Rlc);
                    self.clear(ctx);
                }
                IsupKind::Rlc => self.clear(ctx),
            },
            (
                Interface::Isup,
                Message::TrunkVoice {
                    call, origin_us, ..
                },
            ) => {
                if self.call == Some(call) {
                    self.frames_received += 1;
                    ctx.count("phone.voice_frames_received");
                    let delay_us = ctx.now().as_micros().saturating_sub(origin_us);
                    ctx.observe("phone.voice_e2e_ms", delay_us as f64 / 1000.0);
                }
            }
            _ => ctx.count("phone.unexpected_message"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _token: TimerToken, tag: u64) {
        match tag {
            TIMER_ANSWER
                if self.state == PhoneState::Ringing => {
                    self.send_isup(ctx, IsupKind::Anm);
                    self.enter_active(ctx);
                }
            TIMER_VOICE => {
                if self.state == PhoneState::Active {
                    if let Some(call) = self.call {
                        self.voice_seq += 1;
                        let origin_us = ctx.now().as_micros();
                        let cic = self.cic.unwrap_or(Cic(0));
                        ctx.send(
                            self.switch,
                            Message::TrunkVoice {
                                cic,
                                call,
                                seq: self.voice_seq,
                                origin_us,
                            },
                        );
                        self.voice_timer =
                            Some(ctx.set_timer(SimDuration::from_millis(20), TIMER_VOICE));
                    }
                } else {
                    self.voice_timer = None;
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::TrunkClass;
    use crate::switch::PstnSwitch;
    use vgprs_sim::Network;

    fn msisdn(s: &str) -> Msisdn {
        Msisdn::parse(s).unwrap()
    }

    /// Two phones on one switch: a complete POTS call.
    fn two_phone_rig() -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let sw = net.add_node("switch", PstnSwitch::new("co"));
        let a = net.add_node("alice", PstnPhone::new(msisdn("88620001111"), sw));
        let b = net.add_node("bob", PstnPhone::new(msisdn("88620002222"), sw));
        net.connect(a, sw, Interface::Isup, SimDuration::from_millis(2));
        net.connect(b, sw, Interface::Isup, SimDuration::from_millis(2));
        {
            let s = net.node_mut::<PstnSwitch>(sw).unwrap();
            s.add_route("88620001", a, TrunkClass::Local);
            s.add_route("88620002", b, TrunkClass::Local);
        }
        (net, sw, a, b)
    }

    #[test]
    fn pots_call_connects_and_talks() {
        let (mut net, _sw, a, b) = two_phone_rig();
        net.inject(
            SimDuration::ZERO,
            a,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: msisdn("88620002222"),
            }),
        );
        net.run_until(SimTime::from_micros(5_000_000));
        let alice = net.node::<PstnPhone>(a).unwrap();
        let bob = net.node::<PstnPhone>(b).unwrap();
        assert_eq!(alice.state(), PhoneState::Active);
        assert_eq!(bob.state(), PhoneState::Active);
        assert!(alice.frames_received > 50, "got {}", alice.frames_received);
        assert!(bob.frames_received > 50);
        // ringback observed before answer
        assert!(net.stats().histogram("phone.post_dial_delay_ms").is_some());
    }

    #[test]
    fn hangup_tears_down_both_ends() {
        let (mut net, sw, a, b) = two_phone_rig();
        net.inject(
            SimDuration::ZERO,
            a,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: msisdn("88620002222"),
            }),
        );
        net.run_until(SimTime::from_micros(4_000_000));
        net.inject(SimDuration::ZERO, a, Message::Cmd(Command::Hangup));
        net.run_until_quiescent();
        assert_eq!(net.node::<PstnPhone>(a).unwrap().state(), PhoneState::Idle);
        assert_eq!(net.node::<PstnPhone>(b).unwrap().state(), PhoneState::Idle);
        assert_eq!(net.node::<PstnSwitch>(sw).unwrap().active_calls(), 0);
    }

    #[test]
    fn busy_phone_rejects_second_call() {
        let (mut net, _sw, a, b) = two_phone_rig();
        net.inject(
            SimDuration::ZERO,
            a,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: msisdn("88620002222"),
            }),
        );
        net.run_until(SimTime::from_micros(5_000_000));
        // third phone calls bob, who is busy
        let sw = net.node::<PstnPhone>(a).unwrap().switch;
        let c = net.add_node("carol", PstnPhone::new(msisdn("88620003333"), sw));
        net.connect(c, sw, Interface::Isup, SimDuration::from_millis(2));
        net.inject(
            SimDuration::ZERO,
            c,
            Message::Cmd(Command::Dial {
                call: CallId(2),
                called: msisdn("88620002222"),
            }),
        );
        net.run_until(SimTime::from_micros(6_000_000));
        assert_eq!(net.node::<PstnPhone>(c).unwrap().state(), PhoneState::Idle);
        let _ = b;
    }

    #[test]
    fn never_answer_stays_ringing() {
        let mut net = Network::new(1);
        let sw = net.add_node("switch", PstnSwitch::new("co"));
        let a = net.add_node("alice", PstnPhone::new(msisdn("88620001111"), sw));
        let b = net.add_node(
            "bob",
            PstnPhone::new(msisdn("88620002222"), sw).with_answer_after(None),
        );
        net.connect(a, sw, Interface::Isup, SimDuration::from_millis(2));
        net.connect(b, sw, Interface::Isup, SimDuration::from_millis(2));
        {
            let s = net.node_mut::<PstnSwitch>(sw).unwrap();
            s.add_route("88620002", b, TrunkClass::Local);
        }
        net.inject(
            SimDuration::ZERO,
            a,
            Message::Cmd(Command::Dial {
                call: CallId(1),
                called: msisdn("88620002222"),
            }),
        );
        net.run_until(SimTime::from_micros(10_000_000));
        assert_eq!(net.node::<PstnPhone>(a).unwrap().state(), PhoneState::Ringback);
        assert_eq!(net.node::<PstnPhone>(b).unwrap().state(), PhoneState::Ringing);
    }
}
