//! Trunk classification and per-call cost accounting.
//!
//! The tromboning experiments (paper Figures 7–8) are entirely about
//! *which trunks* a call occupies: classic GSM call delivery to a roamer
//! burns two international trunks; vGPRS with a visited-network
//! gatekeeper burns none. Every switch records each trunk seizure here.

use vgprs_sim::{SimDuration, SimTime};
use vgprs_wire::CallId;

/// The tariff class of a trunk group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrunkClass {
    /// Within one metropolitan network.
    Local,
    /// Between cities of one country.
    National,
    /// Between countries — the expensive kind the paper eliminates.
    International,
}

impl TrunkClass {
    /// Cost units charged when the trunk is seized.
    pub fn setup_cost(self) -> f64 {
        match self {
            TrunkClass::Local => 1.0,
            TrunkClass::National => 5.0,
            TrunkClass::International => 50.0,
        }
    }

    /// Cost units per second of occupancy.
    pub fn per_second_cost(self) -> f64 {
        match self {
            TrunkClass::Local => 0.01,
            TrunkClass::National => 0.10,
            TrunkClass::International => 1.00,
        }
    }

    /// Counter name used in simulation statistics.
    pub fn counter_name(self) -> &'static str {
        match self {
            TrunkClass::Local => "pstn.trunk_local_seized",
            TrunkClass::National => "pstn.trunk_national_seized",
            TrunkClass::International => "pstn.trunk_international_seized",
        }
    }
}

/// One trunk occupancy interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrunkUse {
    /// The call occupying the trunk.
    pub call: CallId,
    /// Tariff class.
    pub class: TrunkClass,
    /// When the trunk was seized.
    pub seized_at: SimTime,
    /// When it was released (`None` while still occupied).
    pub released_at: Option<SimTime>,
}

impl TrunkUse {
    /// Occupancy duration up to `now` (or to release, if released).
    pub fn held_for(&self, now: SimTime) -> SimDuration {
        self.released_at
            .unwrap_or(now)
            .saturating_duration_since(self.seized_at)
    }

    /// Total cost of this occupancy at time `now`.
    pub fn cost(&self, now: SimTime) -> f64 {
        self.class.setup_cost() + self.class.per_second_cost() * self.held_for(now).as_secs_f64()
    }
}

/// A switch's accounting ledger.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    entries: Vec<TrunkUse>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records a seizure.
    pub fn seize(&mut self, call: CallId, class: TrunkClass, at: SimTime) {
        self.entries.push(TrunkUse {
            call,
            class,
            seized_at: at,
            released_at: None,
        });
    }

    /// Marks every open entry of `call` released.
    pub fn release(&mut self, call: CallId, at: SimTime) {
        for e in &mut self.entries {
            if e.call == call && e.released_at.is_none() {
                e.released_at = Some(at);
            }
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[TrunkUse] {
        &self.entries
    }

    /// Seizures of a given class for a given call.
    pub fn count_for(&self, call: CallId, class: TrunkClass) -> usize {
        self.entries
            .iter()
            .filter(|e| e.call == call && e.class == class)
            .count()
    }

    /// Total cost of a call's trunks at time `now`.
    pub fn call_cost(&self, call: CallId, now: SimTime) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.call == call)
            .map(|e| e.cost(now))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_cost_ordering() {
        assert!(TrunkClass::International.setup_cost() > TrunkClass::National.setup_cost());
        assert!(TrunkClass::National.setup_cost() > TrunkClass::Local.setup_cost());
        assert!(
            TrunkClass::International.per_second_cost() > TrunkClass::Local.per_second_cost()
        );
    }

    #[test]
    fn ledger_tracks_occupancy() {
        let mut ledger = Ledger::new();
        let call = CallId(1);
        ledger.seize(call, TrunkClass::International, SimTime::from_micros(0));
        ledger.seize(call, TrunkClass::International, SimTime::from_micros(0));
        ledger.seize(CallId(2), TrunkClass::Local, SimTime::from_micros(0));
        assert_eq!(ledger.count_for(call, TrunkClass::International), 2);
        assert_eq!(ledger.count_for(call, TrunkClass::Local), 0);
        ledger.release(call, SimTime::from_micros(10_000_000));
        let open: Vec<_> = ledger
            .entries()
            .iter()
            .filter(|e| e.released_at.is_none())
            .collect();
        assert_eq!(open.len(), 1, "only the other call's trunk stays open");
    }

    #[test]
    fn cost_grows_with_time() {
        let mut ledger = Ledger::new();
        let call = CallId(1);
        ledger.seize(call, TrunkClass::International, SimTime::ZERO);
        let early = ledger.call_cost(call, SimTime::from_micros(1_000_000));
        let late = ledger.call_cost(call, SimTime::from_micros(60_000_000));
        assert!(late > early);
        // 50 setup + 60 s × 1.0
        assert!((late - 110.0).abs() < 1e-9);
    }

    #[test]
    fn held_for_stops_at_release() {
        let mut u = TrunkUse {
            call: CallId(1),
            class: TrunkClass::Local,
            seized_at: SimTime::from_micros(0),
            released_at: None,
        };
        assert_eq!(
            u.held_for(SimTime::from_micros(500)),
            SimDuration::from_micros(500)
        );
        u.released_at = Some(SimTime::from_micros(300));
        assert_eq!(
            u.held_for(SimTime::from_micros(500)),
            SimDuration::from_micros(300)
        );
    }
}
