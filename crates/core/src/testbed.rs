//! Full-network construction: wire every element of the paper's
//! Figure 2(b) (and the classic-GSM baseline of Figure 7) into a
//! [`Network`] with realistic per-interface latencies.
//!
//! The builders here are what the examples, the integration tests and the
//! benchmark harness all share, so every experiment runs on an
//! identically-constructed network.

use vgprs_gprs::{Ggsn, IpRouter, Sgsn};
use vgprs_gsm::{
    Bsc, BscConfig, Bts, BtsConfig, GsmMsc, Hlr, MobileStation, MsConfig, MscConfig, Vlr,
    VlrConfig,
};
use vgprs_h323::{Gatekeeper, GatekeeperConfig, GatewayConfig, H323Terminal, PstnGateway,
    TerminalConfig};
use vgprs_pstn::{PstnSwitch, TrunkClass};
use vgprs_sim::{Interface, Network, NodeId, SimDuration};
use vgprs_wire::{
    CellId, Imsi, Ipv4Addr, Lai, Message, Msisdn, PointCode, SubscriberProfile, TransportAddr,
};

use crate::vmsc::{Vmsc, VmscConfig};

/// Per-interface one-way latencies used when wiring links.
#[derive(Clone, Copy, Debug)]
pub struct LatencyProfile {
    /// MS ↔ BTS radio interface.
    pub um: SimDuration,
    /// BTS ↔ BSC.
    pub abis: SimDuration,
    /// BSC ↔ MSC/VMSC.
    pub a: SimDuration,
    /// Domestic SS7 (B/C/D interfaces).
    pub ss7: SimDuration,
    /// International SS7 (roamer's VLR ↔ home HLR).
    pub ss7_international: SimDuration,
    /// BSC/VMSC ↔ SGSN.
    pub gb: SimDuration,
    /// SGSN ↔ GGSN.
    pub gn: SimDuration,
    /// LAN segments in the H.323 zone (and Gi).
    pub lan: SimDuration,
    /// Domestic ISUP trunks.
    pub isup: SimDuration,
    /// International ISUP trunks.
    pub isup_international: SimDuration,
    /// Inter-MSC E interface.
    pub e: SimDuration,
}

impl Default for LatencyProfile {
    /// Values representative of a year-2000 national network.
    fn default() -> Self {
        LatencyProfile {
            um: SimDuration::from_millis(5),
            abis: SimDuration::from_millis(2),
            a: SimDuration::from_millis(2),
            ss7: SimDuration::from_millis(5),
            ss7_international: SimDuration::from_millis(60),
            gb: SimDuration::from_millis(5),
            gn: SimDuration::from_millis(3),
            lan: SimDuration::from_millis(1),
            isup: SimDuration::from_millis(5),
            isup_international: SimDuration::from_millis(70),
            e: SimDuration::from_millis(5),
        }
    }
}

/// Configuration for one vGPRS serving network (Figure 2(b)).
#[derive(Clone, Debug)]
pub struct VgprsZoneConfig {
    /// Name prefix for the nodes ("tw" → "tw.vmsc", …).
    pub name: String,
    /// Country code of this network's numbers.
    pub country_code: String,
    /// Location area broadcast by the zone's cell.
    pub lai: Lai,
    /// The serving cell.
    pub cell: CellId,
    /// Roaming-number prefix minted by the VLR.
    pub msrn_prefix: String,
    /// GGSN PDP address pool.
    pub pool: (Ipv4Addr, u8),
    /// Gatekeeper transport address (inside the pool's LAN space).
    pub gk_addr: TransportAddr,
    /// Gatekeeper admission budget (units of 100 bit/s).
    pub gk_bandwidth: u32,
    /// Traffic channels at the BSC.
    pub tch_capacity: usize,
    /// Shared packet-channel rate at the BTS.
    pub pdch_bps: u64,
    /// Authenticate on every access, not just registration.
    pub auth_on_access: bool,
    /// Run the VMSC in the paper's idle-deactivation ablation mode.
    pub deactivate_idle_contexts: bool,
    /// Arm VMSC recovery guard timers (RAS/ARQ retry, setup supervision).
    /// Off by default so fault-free runs keep their historical event
    /// streams bit-identical.
    pub resilience: bool,
    /// Overload control: VMSC paging-request throttle, pages per
    /// simulated second (`0` = unlimited, the historical behavior).
    pub paging_rate_per_s: u32,
    /// Overload control: gatekeeper ARJ load-shed threshold as a
    /// fraction of the admission budget (`0.0` = disabled).
    pub gk_shed_utilization: f64,
    /// Overload control: SGSN PDP-activation admission rate per
    /// simulated second (`0` = unlimited).
    pub pdp_rate_per_s: u32,
    /// Link latencies.
    pub latency: LatencyProfile,
}

impl VgprsZoneConfig {
    /// A Taiwan-flavored default zone matching the paper's authors.
    pub fn taiwan() -> Self {
        VgprsZoneConfig {
            name: "tw".into(),
            country_code: "886".into(),
            lai: Lai::new(466, 92, 1),
            cell: CellId(1),
            msrn_prefix: "8869990".into(),
            pool: (Ipv4Addr::from_octets(10, 200, 0, 0), 16),
            gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 1, 0, 2), 1719),
            gk_bandwidth: 1_000_000,
            tch_capacity: 64,
            pdch_bps: 40_000,
            auth_on_access: true,
            deactivate_idle_contexts: false,
            resilience: false,
            paging_rate_per_s: 0,
            gk_shed_utilization: 0.0,
            pdp_rate_per_s: 0,
            latency: LatencyProfile::default(),
        }
    }
}

/// Handles to every element of a built vGPRS zone.
#[derive(Clone, Debug)]
pub struct VgprsZone {
    /// Home location register (with AuC).
    pub hlr: NodeId,
    /// Visitor location register.
    pub vlr: NodeId,
    /// The VoIP MSC.
    pub vmsc: NodeId,
    /// Base station controller.
    pub bsc: NodeId,
    /// Base transceiver station.
    pub bts: NodeId,
    /// Serving GPRS support node.
    pub sgsn: NodeId,
    /// Gateway GPRS support node.
    pub ggsn: NodeId,
    /// The PSDN router connecting Gi with the H.323 zone.
    pub router: NodeId,
    /// The H.323 gatekeeper.
    pub gk: NodeId,
    /// The gatekeeper's address (for terminals joining the zone).
    pub gk_addr: TransportAddr,
    /// The zone's location area.
    pub lai: Lai,
    /// The zone's cell.
    pub cell: CellId,
    /// Latencies (reused when adding elements later).
    pub latency: LatencyProfile,
    name: String,
    next_host: u16,
}

impl VgprsZone {
    /// Builds the zone inside `net`.
    pub fn build(net: &mut Network<Message>, cfg: VgprsZoneConfig) -> VgprsZone {
        let n = |suffix: &str| format!("{}.{}", cfg.name, suffix);
        let lat = cfg.latency;

        // H.323 zone + packet core.
        let router = net.add_node(&n("router"), IpRouter::new());
        let gk = net.add_node(
            &n("gk"),
            Gatekeeper::new(
                GatekeeperConfig {
                    addr: cfg.gk_addr,
                    bandwidth_budget: cfg.gk_bandwidth,
                    shed_utilization: cfg.gk_shed_utilization,
                },
                router,
            ),
        );
        let ggsn = net.add_node(&n("ggsn"), Ggsn::new(cfg.pool.0, cfg.pool.1));
        let sgsn = net.add_node(
            &n("sgsn"),
            Sgsn::new(PointCode(50), ggsn).with_admission_rate(cfg.pdp_rate_per_s),
        );

        // GSM side.
        let hlr = net.add_node(&n("hlr"), Hlr::new());
        // The VMSC must exist before VLR/BSC reference it; create in order.
        // VLR needs the VMSC id; VMSC needs the VLR id. Create the VLR
        // first against a dummy, then the VMSC, then patch the VLR.
        let vlr = net.add_node(
            &n("vlr"),
            Vlr::new(
                VlrConfig {
                    point_code: PointCode(10),
                    msrn_prefix: cfg.msrn_prefix.clone(),
                    auth_on_access: cfg.auth_on_access,
                },
                hlr, // patched below
                hlr,
            ),
        );
        let vmsc = net.add_node(
            &n("vmsc"),
            Vmsc::new(
                VmscConfig {
                    country_code: cfg.country_code.clone(),
                    gk: cfg.gk_addr,
                    deactivate_idle_contexts: cfg.deactivate_idle_contexts,
                    resilience: cfg.resilience,
                    paging_rate_per_s: cfg.paging_rate_per_s,
                },
                vlr,
                sgsn,
            ),
        );
        net.node_mut::<Vlr>(vlr)
            .expect("just created")
            .set_msc(vmsc);
        let bsc = net.add_node(
            &n("bsc"),
            Bsc::new(
                BscConfig {
                    tch_capacity: cfg.tch_capacity,
                },
                vmsc,
            ),
        );
        let bts = net.add_node(
            &n("bts"),
            Bts::new(
                BtsConfig {
                    cell: cfg.cell,
                    pdch_bps: cfg.pdch_bps,
                    ..BtsConfig::default()
                },
                bsc,
            ),
        );
        net.node_mut::<Bsc>(bsc)
            .expect("just created")
            .register_bts(bts, cfg.cell);
        net.node_mut::<Vmsc>(vmsc)
            .expect("just created")
            .register_bsc(bsc);

        // Links (Figure 2(a)): A, B, C, D, Gb, Gn, Gi, LAN.
        net.connect(bts, bsc, Interface::Abis, lat.abis);
        net.connect(bsc, vmsc, Interface::A, lat.a);
        net.connect(vmsc, vlr, Interface::B, lat.ss7);
        net.connect(vmsc, hlr, Interface::C, lat.ss7);
        net.connect(vlr, hlr, Interface::D, lat.ss7);
        net.connect(vmsc, sgsn, Interface::Gb, lat.gb);
        net.connect(sgsn, ggsn, Interface::Gn, lat.gn);
        net.connect(ggsn, router, Interface::Gi, lat.lan);
        net.connect(gk, router, Interface::Lan, lat.lan);

        // IP routing: the GGSN owns its pool; the GK is a LAN host.
        {
            let r = net.node_mut::<IpRouter>(router).expect("just created");
            r.add_prefix(cfg.pool.0, cfg.pool.1, ggsn);
            r.add_host(cfg.gk_addr.ip, gk);
        }
        net.node_mut::<Ggsn>(ggsn)
            .expect("just created")
            .set_router(router);

        VgprsZone {
            hlr,
            vlr,
            vmsc,
            bsc,
            bts,
            sgsn,
            ggsn,
            router,
            gk,
            gk_addr: cfg.gk_addr,
            lai: cfg.lai,
            cell: cfg.cell,
            latency: lat,
            name: cfg.name,
            next_host: 10,
        }
    }

    /// Provisions a subscriber in this zone's HLR and creates its MS,
    /// camped on the zone's cell.
    pub fn add_subscriber(
        &self,
        net: &mut Network<Message>,
        label: &str,
        imsi: Imsi,
        ki: u64,
        msisdn: Msisdn,
    ) -> NodeId {
        net.node_mut::<Hlr>(self.hlr)
            .expect("zone HLR")
            .provision(imsi, ki, SubscriberProfile::full(msisdn));
        self.add_roamer(net, label, imsi, ki, msisdn)
    }

    /// Creates an MS camped on this zone *without* provisioning the local
    /// HLR — the subscriber's home HLR is elsewhere (roaming; wire the
    /// VLR with [`Vlr::add_hlr_route`] first).
    pub fn add_roamer(
        &self,
        net: &mut Network<Message>,
        label: &str,
        imsi: Imsi,
        ki: u64,
        msisdn: Msisdn,
    ) -> NodeId {
        let ms = net.add_node(
            &format!("{}.{}", self.name, label),
            MobileStation::new(MsConfig::new(imsi, ki, msisdn, self.lai), self.bts),
        );
        net.connect(ms, self.bts, Interface::Um, self.latency.um);
        net.node_mut::<Bts>(self.bts)
            .expect("zone BTS")
            .register_ms(ms);
        ms
    }

    /// Adds an H.323 terminal on the zone's LAN and registers its routes.
    ///
    /// Call this on the *original* zone handle: the method advances an
    /// internal address counter, and a cloned handle forks that counter
    /// (two zones handing out the same 10.x address would misroute).
    pub fn add_terminal(
        &mut self,
        net: &mut Network<Message>,
        label: &str,
        alias: Msisdn,
    ) -> NodeId {
        self.next_host += 1;
        let addr = TransportAddr::new(self.lan_host_addr(), 1720);
        let term = net.add_node(
            &format!("{}.{}", self.name, label),
            H323Terminal::new(TerminalConfig::new(alias, addr, self.gk_addr), self.router),
        );
        net.connect(term, self.router, Interface::Lan, self.latency.lan);
        net.node_mut::<IpRouter>(self.router)
            .expect("zone router")
            .add_host(addr.ip, term);
        term
    }

    /// Next LAN host address, spread over 10.1.x.y so a zone can host
    /// tens of thousands of endpoints (population-scale load runs).
    fn lan_host_addr(&self) -> Ipv4Addr {
        Ipv4Addr::from_octets(10, 1, (self.next_host >> 8) as u8, self.next_host as u8)
    }

    /// Adds an H.323/PSTN gateway on the zone's LAN, trunked into
    /// `switch`, and routes `prefix` from the switch to it as the
    /// *preferred* (local) route — the Figure 8 configuration.
    pub fn add_gateway(
        &mut self,
        net: &mut Network<Message>,
        switch: NodeId,
        preferred_prefix: &str,
    ) -> NodeId {
        self.next_host += 1;
        let addr = TransportAddr::new(self.lan_host_addr(), 1720);
        let gw = net.add_node(
            &format!("{}.gw", self.name),
            PstnGateway::new(
                GatewayConfig {
                    addr,
                    gk: self.gk_addr,
                },
                self.router,
                switch,
            ),
        );
        net.connect(gw, self.router, Interface::Lan, self.latency.lan);
        net.connect(gw, switch, Interface::Isup, self.latency.isup);
        net.node_mut::<IpRouter>(self.router)
            .expect("zone router")
            .add_host(addr.ip, gw);
        net.node_mut::<PstnSwitch>(switch)
            .expect("switch")
            .add_route(preferred_prefix, gw, TrunkClass::Local);
        gw
    }
}

/// Configuration for a classic GSM network (the baseline of Figure 7).
#[derive(Clone, Debug)]
pub struct GsmZoneConfig {
    /// Name prefix for the nodes.
    pub name: String,
    /// Country code.
    pub country_code: String,
    /// Prefix of this network's subscriber numbers (GMSC role).
    pub home_prefix: String,
    /// Roaming-number prefix.
    pub msrn_prefix: String,
    /// Location area.
    pub lai: Lai,
    /// Serving cell.
    pub cell: CellId,
    /// Traffic channels.
    pub tch_capacity: usize,
    /// Authenticate on every access.
    pub auth_on_access: bool,
    /// Latencies.
    pub latency: LatencyProfile,
}

/// Handles to a built classic GSM zone.
#[derive(Clone, Debug)]
pub struct GsmZone {
    /// Home location register.
    pub hlr: NodeId,
    /// Visitor location register.
    pub vlr: NodeId,
    /// The classic circuit-switched MSC.
    pub msc: NodeId,
    /// Base station controller.
    pub bsc: NodeId,
    /// Base transceiver station.
    pub bts: NodeId,
    /// Location area.
    pub lai: Lai,
    /// Cell.
    pub cell: CellId,
    /// Latencies.
    pub latency: LatencyProfile,
    name: String,
}

impl GsmZone {
    /// Builds the zone and trunks its MSC into `pstn_switch`.
    pub fn build(
        net: &mut Network<Message>,
        cfg: GsmZoneConfig,
        pstn_switch: NodeId,
    ) -> GsmZone {
        let n = |suffix: &str| format!("{}.{}", cfg.name, suffix);
        let lat = cfg.latency;
        let hlr = net.add_node(&n("hlr"), Hlr::new());
        let vlr = net.add_node(
            &n("vlr"),
            Vlr::new(
                VlrConfig {
                    point_code: PointCode(20),
                    msrn_prefix: cfg.msrn_prefix.clone(),
                    auth_on_access: cfg.auth_on_access,
                },
                hlr, // patched below
                hlr,
            ),
        );
        let msc = net.add_node(
            &n("msc"),
            GsmMsc::new(
                MscConfig {
                    country_code: cfg.country_code.clone(),
                    home_prefix: cfg.home_prefix.clone(),
                    msrn_prefix: cfg.msrn_prefix.clone(),
                },
                vlr,
                hlr,
            ),
        );
        net.node_mut::<Vlr>(vlr).expect("just created").set_msc(msc);
        let bsc = net.add_node(
            &n("bsc"),
            Bsc::new(
                BscConfig {
                    tch_capacity: cfg.tch_capacity,
                },
                msc,
            ),
        );
        let bts = net.add_node(
            &n("bts"),
            Bts::new(
                BtsConfig {
                    cell: cfg.cell,
                    pdch_bps: 40_000,
                    ..BtsConfig::default()
                },
                bsc,
            ),
        );
        net.node_mut::<Bsc>(bsc)
            .expect("just created")
            .register_bts(bts, cfg.cell);
        {
            let m = net.node_mut::<GsmMsc>(msc).expect("just created");
            m.register_bsc(bsc);
            m.set_pstn(pstn_switch);
        }

        net.connect(bts, bsc, Interface::Abis, lat.abis);
        net.connect(bsc, msc, Interface::A, lat.a);
        net.connect(msc, vlr, Interface::B, lat.ss7);
        net.connect(msc, hlr, Interface::C, lat.ss7);
        net.connect(vlr, hlr, Interface::D, lat.ss7);
        net.connect(msc, pstn_switch, Interface::Isup, lat.isup);

        GsmZone {
            hlr,
            vlr,
            msc,
            bsc,
            bts,
            lai: cfg.lai,
            cell: cfg.cell,
            latency: lat,
            name: cfg.name,
        }
    }

    /// Provisions a subscriber in this zone's HLR and creates its MS.
    pub fn add_subscriber(
        &self,
        net: &mut Network<Message>,
        label: &str,
        imsi: Imsi,
        ki: u64,
        msisdn: Msisdn,
    ) -> NodeId {
        net.node_mut::<Hlr>(self.hlr)
            .expect("zone HLR")
            .provision(imsi, ki, SubscriberProfile::full(msisdn));
        self.add_roamer(net, label, imsi, ki, msisdn)
    }

    /// Creates an MS camped on this zone whose home HLR is elsewhere.
    pub fn add_roamer(
        &self,
        net: &mut Network<Message>,
        label: &str,
        imsi: Imsi,
        ki: u64,
        msisdn: Msisdn,
    ) -> NodeId {
        let ms = net.add_node(
            &format!("{}.{}", self.name, label),
            MobileStation::new(MsConfig::new(imsi, ki, msisdn, self.lai), self.bts),
        );
        net.connect(ms, self.bts, Interface::Um, self.latency.um);
        net.node_mut::<Bts>(self.bts)
            .expect("zone BTS")
            .register_ms(ms);
        ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgprs_zone_builds_and_is_quiescent() {
        let mut net = Network::new(1);
        let zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
        net.run_until_quiescent();
        assert!(net.node::<Vmsc>(zone.vmsc).is_some());
        assert!(net.node::<Gatekeeper>(zone.gk).is_some());
        assert_eq!(net.trace().len(), 0, "an empty zone is silent");
    }

    #[test]
    fn gsm_zone_builds() {
        let mut net = Network::new(1);
        let sw = net.add_node("pstn", PstnSwitch::new("pstn"));
        let cfg = GsmZoneConfig {
            name: "uk".into(),
            country_code: "44".into(),
            home_prefix: "447".into(),
            msrn_prefix: "449990".into(),
            lai: Lai::new(234, 15, 1),
            cell: CellId(10),
            tch_capacity: 32,
            auth_on_access: true,
            latency: LatencyProfile::default(),
        };
        let zone = GsmZone::build(&mut net, cfg, sw);
        net.run_until_quiescent();
        assert!(net.node::<GsmMsc>(zone.msc).is_some());
    }
}
