//! The VoIP Mobile Switching Center — the paper's contribution.
//!
//! The VMSC replaces a classic GSM MSC (Figure 2(a)): toward the radio
//! network and the location registers it is indistinguishable from an MSC
//! (A/B/C/E interfaces); toward the transport it is radically different —
//! it holds a Gb interface into the GPRS core and behaves like a GPRS MS
//! *on behalf of every registered handset*, and it speaks H.323 like a
//! terminal, registering each handset's MSISDN with the gatekeeper.
//!
//! Per registered MS the VMSC:
//!
//! 1. runs the standard GSM location update with the VLR/HLR (steps
//!    1.1–1.2),
//! 2. performs GPRS attach and activates a low-priority *signaling* PDP
//!    context, obtaining an IP address for the MS (step 1.3),
//! 3. registers (IP address, MSISDN) with the gatekeeper via RAS (steps
//!    1.4–1.5), and only then
//! 4. confirms the location update to the MS (step 1.6).
//!
//! Calls keep the circuit-switched GSM air interface (the real-time
//! guarantee of Section 6) and are transcoded at the VMSC between TCH
//! voice frames and RTP carried through the pre-activated PDP contexts.

use std::collections::HashMap;

use vgprs_sim::{Backoff, Context, Interface, Node, NodeId, SimDuration, SimTime, TimerToken};
use vgprs_wire::{
    CallId, Cause, CellId, Cic, Command, ConnRef, Crv, Dtap, GmmMessage, Imsi, IpPacket,
    IpPayload, Ipv4Addr, MapMessage, Message, MsIdentity, Msisdn, Nsapi, Q931Kind, Q931Message,
    QosProfile, RasMessage, RtpPacket, Tmsi, TransportAddr, PAYLOAD_TYPE_GSM,
};

/// Well-known port for H.225 call signaling.
const H225_PORT: u16 = 1720;
/// How long to wait for a paging response before clearing the call.
const PAGING_TIMEOUT: SimDuration = SimDuration::from_secs(10);
/// Timer tags are namespaced by their top four bits; the low
/// [`TAG_SHIFT`] bits carry a call id or guard id.
const TAG_SHIFT: u32 = 60;
/// Mask extracting a tag's payload (call id / guard id).
const TAG_MASK: u64 = (1 << TAG_SHIFT) - 1;
/// RAS registration guard (resilience mode).
const NS_RAS: u64 = 2;
/// Admission (ARQ) guard (resilience mode).
const NS_ARQ: u64 = 3;
/// Paging supervision. `4 << TAG_SHIFT` equals the historical
/// `1 << 62` namespace bit, so existing traces keep their tags.
const NS_PAGING: u64 = 4;
/// Q.931 setup supervision (resilience mode).
const NS_SETUP: u64 = 5;
/// Paging-throttle drain tick (overload control; no payload).
const NS_PAGING_DRAIN: u64 = 6;
/// Bounded retry schedule for RAS registration (RRQ) guards.
const RAS_BACKOFF: Backoff = Backoff {
    base: SimDuration::from_millis(1_000),
    factor: 2,
    cap: SimDuration::from_millis(4_000),
    max_attempts: 3,
};
/// Bounded retry schedule for admission (ARQ) guards.
const ARQ_BACKOFF: Backoff = Backoff {
    base: SimDuration::from_millis(1_000),
    factor: 2,
    cap: SimDuration::from_millis(4_000),
    max_attempts: 3,
};
/// How long an MO call may sit between Q.931 Setup and Connect before
/// recovery releases it (resilience mode).
const SETUP_SUPERVISION: SimDuration = SimDuration::from_secs(12);
/// Port the VMSC terminates RTP on, per MS.
const MEDIA_PORT: u16 = 30_000;

/// Signaling PDP context NSAPI (paper step 1.3).
fn sig_nsapi() -> Nsapi {
    Nsapi::new(5).expect("5 is a valid NSAPI")
}

/// Voice PDP context NSAPI (paper steps 2.9 / 4.8).
fn voice_nsapi() -> Nsapi {
    Nsapi::new(6).expect("6 is a valid NSAPI")
}

/// Configuration for a [`Vmsc`].
#[derive(Clone, Debug)]
pub struct VmscConfig {
    /// Country code of the serving network.
    pub country_code: String,
    /// The gatekeeper's RAS transport address.
    pub gk: TransportAddr,
    /// The ablation the paper names but rejects (Section 6): tear the
    /// signaling PDP context down while the MS is idle and re-activate
    /// it per call. Mobile-originated calls then pay an extra activation
    /// round trip; mobile-terminated delivery is not supported in this
    /// mode (it would need the TR's static addresses). Default `false`.
    pub deactivate_idle_contexts: bool,
    /// Arm recovery guard timers (RAS/ARQ retry with bounded backoff,
    /// setup supervision) and rebuild MS entries from VLR answers after
    /// a restart. Off by default: the guards add timer events, so
    /// fault-free runs keep their historical event streams.
    pub resilience: bool,
    /// Overload control: maximum pages broadcast per simulated second.
    /// Excess pages are deferred to the next one-second window through a
    /// bounded queue (twice the rate); overflow sheds the call with a
    /// network-congestion release. `0` disables the throttle and keeps
    /// the historical page-immediately behavior.
    pub paging_rate_per_s: u32,
}

/// RAS registration guard state (resilience mode).
#[derive(Clone, Copy, Debug)]
struct RasGuard {
    /// Guard id carried in the timer tag (maps back to the IMSI).
    id: u64,
    /// Retries already sent.
    attempts: u32,
    /// The armed guard timer.
    token: TimerToken,
    /// When the first RRQ of this ladder went out.
    first_at: SimTime,
}

/// Admission (ARQ) guard state (resilience mode).
#[derive(Clone, Copy, Debug)]
struct ArqGuard {
    attempts: u32,
    token: TimerToken,
    first_at: SimTime,
}

/// Registration progress of one MS (paper Section 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegPhase {
    /// GSM location update running with the VLR (steps 1.1–1.2).
    GsmUpdating,
    /// GPRS attach in progress (step 1.3).
    Attaching,
    /// Signaling PDP context activating (step 1.3).
    ActivatingSignalingContext,
    /// RAS registration outstanding (steps 1.4–1.5).
    RasRegistering,
    /// Fully registered; LU accept sent (step 1.6).
    Registered,
}

/// Call progress of one MS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CallPhase {
    /// MO: waiting for the VLR's outgoing-call authorization (step 2.2).
    MoAuthorizing,
    /// MO: waiting for the traffic channel (step 2.1 box).
    MoAssigning,
    /// MO: ARQ sent (step 2.3).
    MoAdmission,
    /// MO: Setup sent, waiting for progress (step 2.4+).
    MoProgress,
    /// MT: ARQ (answering) sent (step 4.3).
    MtAdmission,
    /// MT: paging the MS (step 4.4).
    MtPaging,
    /// MT: access + channel assignment running (step 4.5).
    MtAccess,
    /// MT: MS is ringing (step 4.6).
    MtRinging,
    /// Connected; voice context activating or active (steps 2.9 / 4.8).
    Active,
}

/// Everything the VMSC holds per call.
#[derive(Debug)]
struct VmscCall {
    imsi: Imsi,
    phase: CallPhase,
    crv: Crv,
    remote_signal: Option<TransportAddr>,
    remote_media: Option<TransportAddr>,
    /// Pending dialed number (MO, before Setup goes out).
    called: Option<Msisdn>,
    /// Calling party (MT).
    calling: Option<Msisdn>,
    started_at: SimTime,
    connected_at: Option<SimTime>,
    /// MT: when paging went out (for the paging-latency KPI).
    paged_at: Option<SimTime>,
    /// When the voice PDP context was requested (for the activation KPI).
    voice_pdp_requested_at: Option<SimTime>,
    rtp_seq: u16,
    /// Inter-MSC leg after handoff (anchor side), or toward the anchor
    /// (target side).
    e_leg: Option<(NodeId, Cic)>,
    /// True if this VMSC is the handoff *target* for the call.
    target_role: bool,
    /// Outstanding admission guard (resilience mode).
    arq_guard: Option<ArqGuard>,
    /// Outstanding setup supervision timer (resilience mode).
    setup_guard: Option<TimerToken>,
}

/// The per-MS entry of the paper's "MS table" (Section 2): MM context +
/// PDP contexts + H.323 state.
#[derive(Debug)]
pub struct MsEntry {
    /// Subscriber identity.
    pub imsi: Imsi,
    /// Dialable number; the H.323 alias (known after the VLR answers).
    pub msisdn: Option<Msisdn>,
    /// TMSI allocated by the VLR.
    pub tmsi: Option<Tmsi>,
    /// Registration progress.
    pub phase: RegPhase,
    /// PDP address of the signaling context (step 1.3).
    pub signaling_addr: Option<Ipv4Addr>,
    /// PDP address of the per-call voice context (steps 2.9/4.8).
    pub voice_addr: Option<Ipv4Addr>,
    /// Current radio connection.
    conn: Option<ConnRef>,
    /// Current call.
    call: Option<CallId>,
    /// When registration started (for the latency histograms).
    reg_started: SimTime,
    /// Outstanding RAS registration guard (resilience mode).
    ras_guard: Option<RasGuard>,
}

/// A handoff prepared with this VMSC as target.
#[derive(Debug)]
struct PendingTargetHandoff {
    call: CallId,
    imsi: Imsi,
    anchor: NodeId,
    cic: Cic,
}

/// The VMSC node.
#[derive(Debug)]
pub struct Vmsc {
    config: VmscConfig,
    vlr: NodeId,
    sgsn: NodeId,
    bscs: Vec<NodeId>,
    /// Neighbor MSCs (classic or VMSC) by the cells they serve.
    neighbor_cells: HashMap<CellId, NodeId>,
    /// The MS table (paper Section 2).
    ms_table: HashMap<Imsi, MsEntry>,
    by_conn: HashMap<ConnRef, Imsi>,
    by_addr: HashMap<Ipv4Addr, Imsi>,
    by_alias: HashMap<Msisdn, Imsi>,
    by_tmsi: HashMap<Tmsi, Imsi>,
    conn_of_bsc: HashMap<ConnRef, NodeId>,
    calls: HashMap<CallId, VmscCall>,
    /// Radio connections serving target-role handoff calls.
    by_conn_call: HashMap<ConnRef, CallId>,
    /// Handoffs prepared as target, by handover reference.
    target_handoffs: HashMap<u32, PendingTargetHandoff>,
    /// MO calls waiting for the signaling context to come back up
    /// (idle-deactivation ablation only).
    awaiting_context: Vec<(Imsi, CallId)>,
    next_crv: u16,
    next_ho_ref: u32,
    next_cic: u16,
    /// Guard-id → IMSI lookup for RAS guard timer tags.
    ras_guard_imsi: HashMap<u64, Imsi>,
    next_guard: u64,
    /// Paging throttle: index of the one-second window pages were last
    /// counted in (simulated milliseconds / 1000).
    paging_window: u64,
    /// Pages broadcast in the current window.
    paging_sent_in_window: u32,
    /// Calls whose page is deferred to a later window, with the time
    /// each entered the queue (for the throttle-delay KPI).
    paging_queue: std::collections::VecDeque<(CallId, SimTime)>,
    /// The armed drain tick, if any.
    paging_drain: Option<TimerToken>,
    /// Fault injection: while true (crashed or blackholed) the node
    /// silently drops every protocol message and timer.
    down: bool,
}

impl Vmsc {
    /// Creates a VMSC wired to its VLR and SGSN.
    pub fn new(config: VmscConfig, vlr: NodeId, sgsn: NodeId) -> Self {
        Vmsc {
            config,
            vlr,
            sgsn,
            bscs: Vec::new(),
            neighbor_cells: HashMap::new(),
            ms_table: HashMap::new(),
            by_conn: HashMap::new(),
            by_addr: HashMap::new(),
            by_alias: HashMap::new(),
            by_tmsi: HashMap::new(),
            conn_of_bsc: HashMap::new(),
            calls: HashMap::new(),
            by_conn_call: HashMap::new(),
            target_handoffs: HashMap::new(),
            awaiting_context: Vec::new(),
            next_crv: 0,
            next_ho_ref: 0,
            next_cic: 0,
            ras_guard_imsi: HashMap::new(),
            next_guard: 0,
            paging_window: 0,
            paging_sent_in_window: 0,
            paging_queue: std::collections::VecDeque::new(),
            paging_drain: None,
            down: false,
        }
    }

    /// Registers a subordinate BSC.
    pub fn register_bsc(&mut self, bsc: NodeId) {
        if !self.bscs.contains(&bsc) {
            self.bscs.push(bsc);
        }
    }

    /// Declares that `cell` belongs to the neighboring MSC `msc` (E
    /// interface required).
    pub fn add_neighbor_cell(&mut self, cell: CellId, msc: NodeId) {
        self.neighbor_cells.insert(cell, msc);
    }

    /// The MS table entry for a subscriber.
    pub fn ms_entry(&self, imsi: &Imsi) -> Option<&MsEntry> {
        self.ms_table.get(imsi)
    }

    /// Number of fully registered MSs.
    pub fn registered_count(&self) -> usize {
        self.ms_table
            .values()
            .filter(|e| e.phase == RegPhase::Registered)
            .count()
    }

    /// Number of calls currently tracked.
    pub fn active_calls(&self) -> usize {
        self.calls.len()
    }

    // ----------------------------------------------------------------
    // helpers
    // ----------------------------------------------------------------

    fn send_a(&self, ctx: &mut Context<'_, Message>, conn: ConnRef, dtap: Dtap) {
        if let Some(&bsc) = self.conn_of_bsc.get(&conn) {
            ctx.send(bsc, Message::a(conn, dtap));
        }
    }

    fn send_a_to_ms(&self, ctx: &mut Context<'_, Message>, imsi: &Imsi, dtap: Dtap) {
        if let Some(conn) = self.ms_table.get(imsi).and_then(|e| e.conn) {
            self.send_a(ctx, conn, dtap);
        }
    }

    /// Sends an IP packet on the MS's signaling PDP context (the path the
    /// paper's Figure 3 shows as links (4)(3)(2)).
    fn send_ip_for(
        &self,
        ctx: &mut Context<'_, Message>,
        imsi: Imsi,
        src_port: u16,
        dst: TransportAddr,
        payload: IpPayload,
    ) {
        let Some(addr) = self.ms_table.get(&imsi).and_then(|e| e.signaling_addr) else {
            ctx.count("vmsc.send_without_context");
            return;
        };
        let src = TransportAddr::new(addr, src_port);
        ctx.send(
            self.sgsn,
            Message::Llc {
                imsi,
                nsapi: sig_nsapi(),
                inner: Box::new(IpPacket::new(src, dst, payload)),
            },
        );
    }

    fn send_ras(&self, ctx: &mut Context<'_, Message>, imsi: Imsi, ras: RasMessage) {
        let gk = self.config.gk;
        self.send_ip_for(ctx, imsi, 1719, gk, IpPayload::Ras(ras));
    }

    /// (Re-)sends the registration RRQ for an MS from its current alias
    /// and signaling address.
    fn send_rrq(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi) {
        let alias = self.ms_table.get(&imsi).and_then(|e| e.msisdn);
        let transport = self.signal_addr_for(&imsi);
        if let (Some(alias), Some(transport)) = (alias, transport) {
            self.send_ras(ctx, imsi, RasMessage::Rrq { alias, transport, imsi: None });
        }
    }

    /// Arms (or re-arms from scratch) the RAS registration guard for an
    /// MS whose RRQ just went out. Resilience mode only.
    fn arm_ras_guard(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi) {
        if !self.config.resilience {
            return;
        }
        if let Some(old) = self.ms_table.get(&imsi).and_then(|e| e.ras_guard) {
            ctx.cancel_timer(old.token);
            self.ras_guard_imsi.remove(&old.id);
        }
        let delay = RAS_BACKOFF.delay(0).expect("RAS schedule allows a first wait");
        self.next_guard += 1;
        let id = self.next_guard;
        let token = ctx.set_timer(delay, (NS_RAS << TAG_SHIFT) | id);
        match self.ms_table.get_mut(&imsi) {
            Some(entry) => {
                entry.ras_guard = Some(RasGuard { id, attempts: 0, token, first_at: ctx.now() });
                self.ras_guard_imsi.insert(id, imsi);
            }
            None => ctx.cancel_timer(token),
        }
    }

    /// Drops an MS's RAS guard, if any, returning it for KPI accounting.
    fn clear_ras_guard(&mut self, ctx: &mut Context<'_, Message>, imsi: &Imsi) -> Option<RasGuard> {
        let guard = self.ms_table.get_mut(imsi).and_then(|e| e.ras_guard.take())?;
        ctx.cancel_timer(guard.token);
        self.ras_guard_imsi.remove(&guard.id);
        Some(guard)
    }

    /// Arms the admission guard for a call whose ARQ just went out.
    /// Resilience mode only.
    fn arm_arq_guard(&mut self, ctx: &mut Context<'_, Message>, call: CallId) {
        if !self.config.resilience {
            return;
        }
        let delay = ARQ_BACKOFF.delay(0).expect("ARQ schedule allows a first wait");
        let token = ctx.set_timer(delay, (NS_ARQ << TAG_SHIFT) | call.0);
        match self.calls.get_mut(&call) {
            Some(state) => {
                if let Some(old) = state.arq_guard.take() {
                    ctx.cancel_timer(old.token);
                }
                state.arq_guard = Some(ArqGuard { attempts: 0, token, first_at: ctx.now() });
            }
            None => ctx.cancel_timer(token),
        }
    }

    /// RAS guard expiry: retry the RRQ with exponential backoff, or give
    /// up with a temporary-failure reject once the ladder is exhausted.
    fn ras_guard_expired(&mut self, ctx: &mut Context<'_, Message>, id: u64) {
        let Some(imsi) = self.ras_guard_imsi.remove(&id) else {
            return;
        };
        let guard = {
            let Some(entry) = self.ms_table.get_mut(&imsi) else {
                return;
            };
            match entry.ras_guard {
                Some(g) if g.id == id => {
                    entry.ras_guard = None;
                    if entry.phase != RegPhase::RasRegistering {
                        return; // registration moved on; nothing to guard
                    }
                    g
                }
                _ => return, // superseded by a newer ladder
            }
        };
        let attempts = guard.attempts + 1;
        match RAS_BACKOFF.delay(attempts) {
            Some(delay) => {
                ctx.count("vmsc.ras_retries");
                self.next_guard += 1;
                let nid = self.next_guard;
                let token = ctx.set_timer(delay, (NS_RAS << TAG_SHIFT) | nid);
                if let Some(entry) = self.ms_table.get_mut(&imsi) {
                    entry.ras_guard =
                        Some(RasGuard { id: nid, attempts, token, first_at: guard.first_at });
                }
                self.ras_guard_imsi.insert(nid, imsi);
                self.send_rrq(ctx, imsi);
            }
            None => {
                ctx.count("vmsc.ras_recovery_failed");
                self.fail_registration(ctx, imsi, Cause::TemporaryFailure);
            }
        }
    }

    /// ARQ guard expiry: retry the admission request with exponential
    /// backoff, or release the call with a temporary-failure cause.
    fn arq_guard_expired(&mut self, ctx: &mut Context<'_, Message>, call: CallId) {
        let (imsi, phase, guard, called) = {
            let Some(state) = self.calls.get_mut(&call) else {
                return;
            };
            let Some(guard) = state.arq_guard.take() else {
                return;
            };
            (state.imsi, state.phase, guard, state.called)
        };
        let answering = match phase {
            CallPhase::MoAdmission => false,
            CallPhase::MtAdmission => true,
            _ => return, // admission already answered; stale guard
        };
        let attempts = guard.attempts + 1;
        match ARQ_BACKOFF.delay(attempts) {
            Some(delay) => {
                ctx.count("vmsc.arq_retries");
                let token = ctx.set_timer(delay, (NS_ARQ << TAG_SHIFT) | call.0);
                if let Some(state) = self.calls.get_mut(&call) {
                    state.arq_guard =
                        Some(ArqGuard { attempts, token, first_at: guard.first_at });
                }
                let target = if answering {
                    self.ms_table.get(&imsi).and_then(|e| e.msisdn)
                } else {
                    called
                };
                if let Some(target) = target {
                    self.send_ras(
                        ctx,
                        imsi,
                        RasMessage::Arq { call, called: target, answering, bandwidth: 160 },
                    );
                }
            }
            None => {
                ctx.count("vmsc.arq_recovery_failed");
                let cause = Cause::TemporaryFailure;
                let has_remote = self
                    .calls
                    .get(&call)
                    .map(|s| s.remote_signal.is_some())
                    .unwrap_or(false);
                if has_remote {
                    self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
                }
                self.send_a_to_ms(ctx, &imsi, Dtap::Disconnect { call, cause });
                if let Some(state) = self.calls.remove(&call) {
                    if let Some(token) = state.setup_guard {
                        ctx.cancel_timer(token);
                    }
                }
                if let Some(e) = self.ms_table.get_mut(&imsi) {
                    e.call = None;
                }
            }
        }
    }

    /// Setup supervision expiry: the MO call never connected; release
    /// both legs with the recovery-on-timer-expiry cause.
    fn setup_guard_expired(&mut self, ctx: &mut Context<'_, Message>, call: CallId) {
        let Some(state) = self.calls.get_mut(&call) else {
            return;
        };
        state.setup_guard = None;
        if state.phase != CallPhase::MoProgress {
            return;
        }
        let imsi = state.imsi;
        ctx.count("vmsc.setup_supervision_expired");
        let cause = Cause::RecoveryOnTimerExpiry;
        self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
        self.send_a_to_ms(ctx, &imsi, Dtap::Disconnect { call, cause });
        self.finish_call(ctx, call);
    }

    // ----------------------------------------------------------------
    // Paging throttle (overload control)
    // ----------------------------------------------------------------

    /// Step 4.4: broadcast the page for an admitted MT call and start
    /// the paging supervision timer.
    fn page_ms(&mut self, ctx: &mut Context<'_, Message>, call: CallId, imsi: Imsi) {
        if let Some(state) = self.calls.get_mut(&call) {
            state.phase = CallPhase::MtPaging;
            state.paged_at = Some(ctx.now());
        }
        ctx.set_timer(PAGING_TIMEOUT, (NS_PAGING << TAG_SHIFT) | call.0);
        ctx.note("Step 4.4: page the MS");
        ctx.count("vmsc.pages_sent");
        // Page by TMSI when one is allocated: the IMSI
        // should not hit the air interface (GSM 03.20).
        let identity = self
            .ms_table
            .get(&imsi)
            .and_then(|e| e.tmsi)
            .map(MsIdentity::Tmsi)
            .unwrap_or(MsIdentity::Imsi(imsi));
        match identity {
            MsIdentity::Tmsi(_) => ctx.count("vmsc.paged_by_tmsi"),
            MsIdentity::Imsi(_) => ctx.count("vmsc.paged_by_imsi"),
        }
        for &bsc in &self.bscs.clone() {
            ctx.send(
                bsc,
                Message::a(ConnRef::CONNECTIONLESS, Dtap::Paging { identity }),
            );
        }
    }

    /// Pages immediately while the current one-second window has budget,
    /// defers behind the bounded queue otherwise, and sheds with a
    /// network-congestion release once the queue is full. The queue gate
    /// keeps deferral FIFO: new admissions never overtake a backlog.
    fn page_or_defer(&mut self, ctx: &mut Context<'_, Message>, call: CallId, imsi: Imsi) {
        let rate = self.config.paging_rate_per_s;
        if rate == 0 {
            self.page_ms(ctx, call, imsi);
            return;
        }
        let window = ctx.now().as_millis() / 1_000;
        if window != self.paging_window {
            self.paging_window = window;
            self.paging_sent_in_window = 0;
        }
        if self.paging_sent_in_window < rate && self.paging_queue.is_empty() {
            self.paging_sent_in_window += 1;
            self.page_ms(ctx, call, imsi);
        } else if self.paging_queue.len() < 2 * rate as usize {
            ctx.count("vmsc.pages_throttled");
            self.paging_queue.push_back((call, ctx.now()));
            self.arm_paging_drain(ctx);
        } else {
            ctx.count("vmsc.pages_shed");
            self.send_q931(
                ctx,
                call,
                Q931Kind::ReleaseComplete { cause: Cause::NetworkCongestion },
            );
            self.finish_call(ctx, call);
        }
    }

    /// Arms the drain tick for the next one-second window boundary.
    fn arm_paging_drain(&mut self, ctx: &mut Context<'_, Message>) {
        if self.paging_drain.is_some() {
            return;
        }
        let now_us = ctx.now().as_micros();
        let delay = SimDuration::from_micros(1_000_000 - now_us % 1_000_000);
        self.paging_drain = Some(ctx.set_timer(delay, NS_PAGING_DRAIN << TAG_SHIFT));
    }

    /// Drain tick: page up to one window's budget from the deferred
    /// queue, oldest first, and re-arm while a backlog remains.
    fn drain_paging_queue(&mut self, ctx: &mut Context<'_, Message>) {
        self.paging_drain = None;
        self.paging_window = ctx.now().as_millis() / 1_000;
        self.paging_sent_in_window = 0;
        let rate = self.config.paging_rate_per_s;
        while self.paging_sent_in_window < rate {
            let Some((call, queued_at)) = self.paging_queue.pop_front() else {
                break;
            };
            let Some(state) = self.calls.get(&call) else {
                continue; // call cleared while deferred
            };
            if state.phase != CallPhase::MtAdmission {
                continue;
            }
            let imsi = state.imsi;
            ctx.observe_duration(
                "vmsc.paging_throttle_delay_ms",
                ctx.now().duration_since(queued_at),
            );
            self.paging_sent_in_window += 1;
            self.page_ms(ctx, call, imsi);
        }
        if !self.paging_queue.is_empty() {
            self.arm_paging_drain(ctx);
        }
    }

    fn send_q931(&self, ctx: &mut Context<'_, Message>, call: CallId, kind: Q931Kind) {
        let Some(call_state) = self.calls.get(&call) else {
            return;
        };
        let Some(dst) = call_state.remote_signal else {
            return;
        };
        let q = Q931Message {
            crv: call_state.crv,
            call,
            kind,
        };
        self.send_ip_for(ctx, call_state.imsi, H225_PORT, dst, IpPayload::Q931(q));
    }

    fn media_addr_for(&self, imsi: &Imsi) -> Option<TransportAddr> {
        self.ms_table
            .get(imsi)
            .and_then(|e| e.signaling_addr)
            .map(|a| TransportAddr::new(a, MEDIA_PORT))
    }

    fn signal_addr_for(&self, imsi: &Imsi) -> Option<TransportAddr> {
        self.ms_table
            .get(imsi)
            .and_then(|e| e.signaling_addr)
            .map(|a| TransportAddr::new(a, H225_PORT))
    }

    fn is_international(&self, called: &Msisdn) -> bool {
        !called.has_country_code(&self.config.country_code)
    }

    /// Clears all state of a call and deactivates its voice context
    /// (paper step 3.4).
    fn finish_call(&mut self, ctx: &mut Context<'_, Message>, call: CallId) {
        let Some(state) = self.calls.remove(&call) else {
            return;
        };
        if let Some(guard) = state.arq_guard {
            ctx.cancel_timer(guard.token);
        }
        if let Some(token) = state.setup_guard {
            ctx.cancel_timer(token);
        }
        let imsi = state.imsi;
        if let Some(entry) = self.ms_table.get_mut(&imsi) {
            entry.call = None;
            if entry.voice_addr.take().is_some() {
                ctx.note("Step 3.4: deactivate voice PDP context");
                ctx.count("vmsc.voice_context_deactivated");
                ctx.send(
                    self.sgsn,
                    Message::Gmm(GmmMessage::DeactivatePdpContextRequest {
                        imsi,
                        nsapi: voice_nsapi(),
                    }),
                );
            }
        }
        // Disengage from the gatekeeper (step 3.3).
        let duration_ms = state
            .connected_at
            .map(|at| ctx.now().duration_since(at).as_millis())
            .unwrap_or(0);
        self.send_ras(ctx, imsi, RasMessage::Drq { call, duration_ms });
        self.maybe_deactivate_signaling(ctx, imsi);
    }

    /// The subscriber registered elsewhere (MAP_Cancel_Location reached
    /// our VLR): release every resource held on its behalf — any call,
    /// the gatekeeper alias (URQ), the PDP contexts, and the MS table
    /// entry. Without this, relocations would leak contexts at the old
    /// SGSN and leave a stale alias that misroutes incoming calls.
    fn purge_ms(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi) {
        if let Some(call) = self.ms_table.get(&imsi).and_then(|e| e.call) {
            self.send_q931(
                ctx,
                call,
                Q931Kind::ReleaseComplete {
                    cause: Cause::SubscriberAbsent,
                },
            );
            self.finish_call(ctx, call);
        }
        if !self.ms_table.contains_key(&imsi) {
            return;
        }
        self.clear_ras_guard(ctx, &imsi);
        ctx.count("vmsc.purged");
        // Unregister the stale alias while the signaling context still
        // exists to carry the URQ.
        let (alias, has_sig) = {
            let e = &self.ms_table[&imsi];
            (e.msisdn, e.signaling_addr.is_some())
        };
        if let (Some(alias), true) = (alias, has_sig) {
            self.send_ras(ctx, imsi, RasMessage::Urq { alias });
        }
        let Some(entry) = self.ms_table.remove(&imsi) else {
            return;
        };
        if let Some(alias) = entry.msisdn {
            self.by_alias.remove(&alias);
        }
        if let Some(t) = entry.tmsi {
            self.by_tmsi.remove(&t);
        }
        if let Some(conn) = entry.conn {
            self.by_conn.remove(&conn);
        }
        for addr in [entry.signaling_addr, entry.voice_addr]
            .into_iter()
            .flatten()
        {
            self.by_addr.remove(&addr);
        }
        if entry.voice_addr.is_some() {
            ctx.send(
                self.sgsn,
                Message::Gmm(GmmMessage::DeactivatePdpContextRequest {
                    imsi,
                    nsapi: voice_nsapi(),
                }),
            );
        }
        if entry.signaling_addr.is_some() {
            ctx.count("vmsc.signaling_context_deactivated");
            ctx.send(
                self.sgsn,
                Message::Gmm(GmmMessage::DeactivatePdpContextRequest {
                    imsi,
                    nsapi: sig_nsapi(),
                }),
            );
        }
    }

    /// Idle-deactivation ablation: drop the signaling context once the
    /// MS has no call (or right after registration).
    fn maybe_deactivate_signaling(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi) {
        if !self.config.deactivate_idle_contexts {
            return;
        }
        let Some(entry) = self.ms_table.get_mut(&imsi) else {
            return;
        };
        if entry.call.is_some() {
            return;
        }
        if let Some(addr) = entry.signaling_addr.take() {
            self.by_addr.remove(&addr);
            ctx.count("vmsc.signaling_context_deactivated");
            ctx.send(
                self.sgsn,
                Message::Gmm(GmmMessage::DeactivatePdpContextRequest {
                    imsi,
                    nsapi: sig_nsapi(),
                }),
            );
        }
    }

    // ----------------------------------------------------------------
    // A interface
    // ----------------------------------------------------------------

    fn handle_a(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        conn: ConnRef,
        dtap: Dtap,
    ) {
        self.conn_of_bsc.insert(conn, from);
        match dtap {
            Dtap::LocationUpdateRequest { identity, lai } => {
                // Step 1.1: relay into the VLR.
                if let MsIdentity::Imsi(imsi) = identity {
                    let entry = self.ms_table.entry(imsi).or_insert_with(|| MsEntry {
                        imsi,
                        msisdn: None,
                        tmsi: None,
                        phase: RegPhase::GsmUpdating,
                        signaling_addr: None,
                        voice_addr: None,
                        conn: None,
                        call: None,
                        reg_started: ctx.now(),
                        ras_guard: None,
                    });
                    entry.conn = Some(conn);
                    entry.reg_started = ctx.now();
                    entry.phase = RegPhase::GsmUpdating;
                    self.by_conn.insert(conn, imsi);
                }
                ctx.count("vmsc.registrations_started");
                ctx.note("Step 1.1: location update -> VLR");
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::UpdateLocationArea {
                        conn,
                        identity,
                        lai,
                    }),
                );
            }
            Dtap::CmServiceRequest { identity } => {
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::ProcessAccessRequest { conn, identity }),
                );
            }
            Dtap::PagingResponse { identity } => {
                let imsi = match identity {
                    MsIdentity::Imsi(i) => i,
                    MsIdentity::Tmsi(t) => match self.by_tmsi.get(&t) {
                        Some(&i) => i,
                        None => {
                            ctx.count("vmsc.page_response_unknown_tmsi");
                            return;
                        }
                    },
                };
                let Some(entry) = self.ms_table.get_mut(&imsi) else {
                    return;
                };
                entry.conn = Some(conn);
                let mt_call = entry.call;
                self.by_conn.insert(conn, imsi);
                // Paging-latency KPI: page broadcast → MS answer.
                if let Some(state) = mt_call.and_then(|c| self.calls.get_mut(&c)) {
                    if let Some(paged_at) = state.paged_at.take() {
                        ctx.observe_duration(
                            "vmsc.paging_response_ms",
                            ctx.now().duration_since(paged_at),
                        );
                    }
                }
                // Step 4.5: auth + ciphering via the VLR.
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::ProcessAccessRequest { conn, identity }),
                );
            }
            Dtap::AuthenticationResponse { sres } => {
                if let Some(&imsi) = self.by_conn.get(&conn) {
                    ctx.send(
                        self.vlr,
                        Message::Map(MapMessage::AuthenticateAck { conn, imsi, sres }),
                    );
                }
            }
            Dtap::CipherModeComplete => {
                if let Some(&imsi) = self.by_conn.get(&conn) {
                    ctx.send(
                        self.vlr,
                        Message::Map(MapMessage::StartCipheringAck { conn, imsi }),
                    );
                }
            }
            Dtap::Setup { call, called } => {
                // Step 2.1 end: the dialed digits arrived.
                let Some(&imsi) = self.by_conn.get(&conn) else {
                    ctx.count("vmsc.setup_without_access");
                    return;
                };
                self.next_crv += 1;
                self.calls.insert(
                    call,
                    VmscCall {
                        imsi,
                        phase: CallPhase::MoAuthorizing,
                        crv: Crv(self.next_crv),
                        remote_signal: None,
                        remote_media: None,
                        called: Some(called),
                        calling: None,
                        started_at: ctx.now(),
                        connected_at: None,
                        paged_at: None,
                        voice_pdp_requested_at: None,
                        rtp_seq: 0,
                        e_leg: None,
                        target_role: false,
                        arq_guard: None,
                        setup_guard: None,
                    },
                );
                if let Some(entry) = self.ms_table.get_mut(&imsi) {
                    entry.call = Some(call);
                }
                ctx.count("vmsc.mo_calls");
                ctx.note("Step 2.2: authorize outgoing call with VLR");
                // Step 2.2: VLR authorization.
                let international = self.is_international(&called);
                ctx.send(
                    self.vlr,
                    Message::Map(MapMessage::SendInfoForOutgoingCall {
                        conn,
                        imsi,
                        called,
                        international,
                    }),
                );
            }
            Dtap::ChannelAssignmentComplete => {
                let Some(&imsi) = self.by_conn.get(&conn) else {
                    return;
                };
                let Some(call) = self.ms_table.get(&imsi).and_then(|e| e.call) else {
                    return;
                };
                let (phase, called, calling) = {
                    let Some(state) = self.calls.get(&call) else {
                        return;
                    };
                    (state.phase, state.called, state.calling)
                };
                match phase {
                    CallPhase::MoAssigning => {
                        // Step 2.3: admission request toward the GK.
                        if let Some(state) = self.calls.get_mut(&call) {
                            state.phase = CallPhase::MoAdmission;
                        }
                        ctx.note("Step 2.3: admission request (ARQ) -> GK");
                        let called = called.expect("MO call has digits");
                        self.send_a(ctx, conn, Dtap::CallProceeding { call });
                        let has_context = self
                            .ms_table
                            .get(&imsi)
                            .map(|e| e.signaling_addr.is_some())
                            .unwrap_or(false);
                        if !has_context {
                            // Idle-deactivation ablation: the context must
                            // come back up before the GK can be reached —
                            // the extra latency the paper predicts.
                            ctx.count("vmsc.context_reactivations");
                            self.awaiting_context.push((imsi, call));
                            ctx.send(
                                self.sgsn,
                                Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                                    imsi,
                                    nsapi: sig_nsapi(),
                                    qos: QosProfile::signaling(),
                                    static_addr: None,
                                }),
                            );
                            return;
                        }
                        self.send_ras(
                            ctx,
                            imsi,
                            RasMessage::Arq {
                                call,
                                called,
                                answering: false,
                                bandwidth: 160,
                            },
                        );
                        self.arm_arq_guard(ctx, call);
                    }
                    CallPhase::MtAccess => {
                        // Step 4.5 end: deliver the setup.
                        if let Some(state) = self.calls.get_mut(&call) {
                            state.phase = CallPhase::MtRinging;
                        }
                        self.send_a(ctx, conn, Dtap::MtSetup { call, calling });
                    }
                    _ => {}
                }
            }
            Dtap::ChannelAssignmentFailure { cause } => {
                let Some(&imsi) = self.by_conn.get(&conn) else {
                    return;
                };
                if let Some(call) = self.ms_table.get(&imsi).and_then(|e| e.call) {
                    ctx.count("vmsc.assignment_blocked");
                    self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
                    self.finish_call(ctx, call);
                    self.send_a(ctx, conn, Dtap::Disconnect { call, cause });
                }
            }
            Dtap::Alerting { call } => {
                // Step 4.6: MS rings; relay to the caller.
                self.send_q931(ctx, call, Q931Kind::Alerting);
            }
            Dtap::Connect { call } => {
                // Step 4.7: answered; relay and acknowledge.
                let media = self
                    .calls
                    .get(&call)
                    .map(|c| c.imsi)
                    .and_then(|imsi| self.media_addr_for(&imsi));
                if let Some(media_addr) = media {
                    self.send_q931(ctx, call, Q931Kind::Connect { media_addr });
                }
                self.send_a(ctx, conn, Dtap::ConnectAck { call });
                self.activate_voice_context(ctx, call);
                ctx.count("vmsc.mt_calls_answered");
            }
            Dtap::ConnectAck { call } => {
                // Step 2.9 (MO side): conversation begins.
                self.activate_voice_context(ctx, call);
                ctx.count("vmsc.mo_calls_connected");
            }
            Dtap::Disconnect { call, cause } => {
                // Step 3.1: the MS hangs up.
                ctx.count("vmsc.ms_initiated_release");
                ctx.note("Step 3.2: release H.323 leg (Q.931 Release Complete)");
                // Step 3.2: release the H.323 leg.
                self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
                self.send_a(ctx, conn, Dtap::Release { call });
                // Steps 3.3–3.4 happen in finish_call.
                self.finish_call(ctx, call);
            }
            Dtap::Release { call } => {
                self.send_a(ctx, conn, Dtap::ReleaseComplete { call });
                self.send_a(ctx, conn, Dtap::ChannelRelease);
                self.finish_call(ctx, call);
            }
            Dtap::ReleaseComplete { .. } => {
                self.send_a(ctx, conn, Dtap::ChannelRelease);
            }
            Dtap::MeasurementReport { cell } | Dtap::HandoverRequired { cell } => {
                self.start_handover(ctx, conn, cell);
            }
            Dtap::HandoverComplete { ho_ref } => {
                // Target role: the MS arrived on our cell.
                let Some(pending) = self.target_handoffs.remove(&ho_ref) else {
                    ctx.count("vmsc.handover_complete_unknown_ref");
                    return;
                };
                let call = pending.call;
                self.next_crv += 1;
                self.calls.insert(
                    call,
                    VmscCall {
                        imsi: pending.imsi,
                        phase: CallPhase::Active,
                        crv: Crv(self.next_crv),
                        remote_signal: None,
                        remote_media: None,
                        called: None,
                        calling: None,
                        started_at: ctx.now(),
                        connected_at: Some(ctx.now()),
                        paged_at: None,
                        voice_pdp_requested_at: None,
                        rtp_seq: 0,
                        e_leg: Some((pending.anchor, pending.cic)),
                        target_role: true,
                        arq_guard: None,
                        setup_guard: None,
                    },
                );
                self.by_conn_call.insert(conn, call);
                self.conn_of_bsc.insert(conn, from);
                ctx.count("vmsc.handover_target_completed");
                ctx.send(
                    pending.anchor,
                    Message::Map(MapMessage::SendEndSignal { call }),
                );
            }
            Dtap::VoiceFrame {
                call,
                seq,
                origin_us,
            } => self.uplink_voice(ctx, call, seq, origin_us),
            _ => ctx.count("vmsc.unhandled_dtap"),
        }
    }

    fn start_handover(&mut self, ctx: &mut Context<'_, Message>, conn: ConnRef, cell: CellId) {
        let Some(&imsi) = self.by_conn.get(&conn) else {
            ctx.count("vmsc.handover_without_imsi");
            return;
        };
        let Some(call) = self.ms_table.get(&imsi).and_then(|e| e.call) else {
            ctx.count("vmsc.handover_without_call");
            return;
        };
        let Some(&target) = self.neighbor_cells.get(&cell) else {
            ctx.count("vmsc.handover_unknown_cell");
            return;
        };
        ctx.count("vmsc.handovers_started");
        ctx.send(
            target,
            Message::Map(MapMessage::PrepareHandover { call, imsi, cell }),
        );
    }

    /// Step 2.9 / 4.8: a second, high-priority PDP context for the voice
    /// packets.
    fn activate_voice_context(&mut self, ctx: &mut Context<'_, Message>, call: CallId) {
        let Some(state) = self.calls.get_mut(&call) else {
            return;
        };
        if let Some(token) = state.setup_guard.take() {
            ctx.cancel_timer(token);
        }
        state.phase = CallPhase::Active;
        state.connected_at = Some(ctx.now());
        state.voice_pdp_requested_at = Some(ctx.now());
        let (imsi, started_at) = (state.imsi, state.started_at);
        ctx.observe_duration("vmsc.call_setup_ms", ctx.now().duration_since(started_at));
        ctx.note("Step 2.9/4.8: activate voice PDP context; conversation begins");
        ctx.count("vmsc.voice_context_requested");
        ctx.send(
            self.sgsn,
            Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                imsi,
                nsapi: voice_nsapi(),
                qos: QosProfile::realtime_voice(),
                static_addr: None,
            }),
        );
    }

    // ----------------------------------------------------------------
    // MAP (VLR, peer MSCs)
    // ----------------------------------------------------------------

    fn handle_map(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: MapMessage) {
        match msg {
            MapMessage::Authenticate { conn, imsi, rand } => {
                self.by_conn.insert(conn, imsi);
                self.send_a(ctx, conn, Dtap::AuthenticationRequest { rand });
            }
            MapMessage::StartCiphering { conn, imsi } => {
                self.by_conn.insert(conn, imsi);
                self.send_a(ctx, conn, Dtap::CipherModeCommand);
            }
            MapMessage::UpdateLocationAreaAck {
                conn,
                imsi,
                tmsi,
                msisdn,
            } => {
                // Step 1.2 complete. Do NOT accept toward the MS yet: the
                // paper continues with GPRS attach + PDP + RAS first.
                let has_context = {
                    if self.config.resilience && !self.ms_table.contains_key(&imsi) {
                        // Recovery after a VMSC restart: the MS table was
                        // lost, but the VLR still resolves the TMSI —
                        // rebuild the entry from its answer so the
                        // cold-start re-registration can proceed.
                        ctx.count("vmsc.entries_rebuilt");
                        self.ms_table.insert(
                            imsi,
                            MsEntry {
                                imsi,
                                msisdn: None,
                                tmsi: None,
                                phase: RegPhase::GsmUpdating,
                                signaling_addr: None,
                                voice_addr: None,
                                conn: Some(conn),
                                call: None,
                                reg_started: ctx.now(),
                                ras_guard: None,
                            },
                        );
                        self.by_conn.insert(conn, imsi);
                    }
                    let Some(entry) = self.ms_table.get_mut(&imsi) else {
                        return;
                    };
                    entry.tmsi = tmsi;
                    entry.msisdn = msisdn;
                    entry.signaling_addr.is_some()
                };
                if let Some(t) = tmsi {
                    self.by_tmsi.insert(t, imsi);
                }
                if let Some(alias) = msisdn {
                    self.by_alias.insert(alias, imsi);
                }
                let _ = conn;
                if has_context {
                    // Re-registration: contexts already exist; go straight
                    // to the RAS refresh.
                    if let Some(entry) = self.ms_table.get_mut(&imsi) {
                        entry.phase = RegPhase::RasRegistering;
                    }
                    let transport = self.signal_addr_for(&imsi);
                    if let (Some(alias), Some(transport)) = (msisdn, transport) {
                        self.send_ras(
                            ctx,
                            imsi,
                            RasMessage::Rrq {
                                alias,
                                transport,
                                imsi: None,
                            },
                        );
                        self.arm_ras_guard(ctx, imsi);
                    }
                } else {
                    // Step 1.3: GPRS attach, just like a GPRS MS would.
                    if let Some(entry) = self.ms_table.get_mut(&imsi) {
                        entry.phase = RegPhase::Attaching;
                    }
                    ctx.note("Step 1.3: GPRS attach + signaling PDP context");
                    ctx.send(self.sgsn, Message::Gmm(GmmMessage::AttachRequest { imsi }));
                }
            }
            MapMessage::UpdateLocationAreaReject { conn, cause, .. } => {
                ctx.count("vmsc.registration_rejected");
                self.send_a(ctx, conn, Dtap::LocationUpdateReject { cause });
            }
            MapMessage::ProcessAccessRequestAck {
                conn,
                imsi,
                rejection,
            } => {
                self.by_conn.insert(conn, imsi);
                if let Some(entry) = self.ms_table.get_mut(&imsi) {
                    entry.conn = Some(conn);
                }
                let mt_call = self.ms_table.get(&imsi).and_then(|e| e.call).filter(|c| {
                    self.calls
                        .get(c)
                        .map(|s| matches!(s.phase, CallPhase::MtPaging | CallPhase::MtAccess))
                        .unwrap_or(false)
                });
                match rejection {
                    Some(cause) => match mt_call {
                        Some(call) => {
                            self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
                            self.finish_call(ctx, call);
                        }
                        None => self.send_a(ctx, conn, Dtap::CmServiceReject { cause }),
                    },
                    None => match mt_call {
                        Some(call) => {
                            if let Some(state) = self.calls.get_mut(&call) {
                                state.phase = CallPhase::MtAccess;
                            }
                            self.send_a(ctx, conn, Dtap::ChannelAssignment { cell: CellId(0) });
                        }
                        None => self.send_a(ctx, conn, Dtap::CmServiceAccept),
                    },
                }
            }
            MapMessage::SendInfoForOutgoingCallAck {
                conn, rejection, ..
            } => {
                let Some(&imsi) = self.by_conn.get(&conn) else {
                    return;
                };
                let Some(call) = self.ms_table.get(&imsi).and_then(|e| e.call) else {
                    return;
                };
                match rejection {
                    Some(cause) => {
                        ctx.count("vmsc.mo_calls_denied");
                        self.calls.remove(&call);
                        if let Some(e) = self.ms_table.get_mut(&imsi) {
                            e.call = None;
                        }
                        self.send_a(ctx, conn, Dtap::Disconnect { call, cause });
                    }
                    None => {
                        if let Some(state) = self.calls.get_mut(&call) {
                            state.phase = CallPhase::MoAssigning;
                        }
                        self.send_a(ctx, conn, Dtap::ChannelAssignment { cell: CellId(0) });
                    }
                }
            }
            // ---- inter-MSC handoff, target side ----
            MapMessage::PrepareHandover { call, imsi, .. } => {
                self.next_ho_ref += 1;
                self.next_cic += 1;
                let (ho_ref, cic) = (self.next_ho_ref, Cic(40_000 + self.next_cic));
                self.target_handoffs.insert(
                    ho_ref,
                    PendingTargetHandoff {
                        call,
                        imsi,
                        anchor: from,
                        cic,
                    },
                );
                ctx.count("vmsc.handover_prepared");
                ctx.send(
                    from,
                    Message::Map(MapMessage::PrepareHandoverAck { call, cic, ho_ref }),
                );
            }
            // ---- anchor side ----
            MapMessage::PrepareHandoverAck { call, cic, ho_ref } => {
                let Some(state) = self.calls.get_mut(&call) else {
                    return;
                };
                state.e_leg = Some((from, cic));
                let imsi = state.imsi;
                let cell = self
                    .neighbor_cells
                    .iter()
                    .find(|(_, &n)| n == from)
                    .map(|(c, _)| *c)
                    .unwrap_or(CellId(0));
                self.send_a_to_ms(ctx, &imsi, Dtap::HandoverCommand { cell, ho_ref });
            }
            MapMessage::SendEndSignal { call } => {
                // Anchor: the MS left for the target MSC; keep the H.323
                // leg, bridge it onto the inter-MSC trunk (Figure 9(b)).
                let imsi = self.calls.get(&call).map(|s| s.imsi);
                let conn = imsi
                    .and_then(|i| self.ms_table.get_mut(&i))
                    .and_then(|e| e.conn.take());
                if let Some(conn) = conn {
                    self.by_conn.remove(&conn);
                    self.send_a(ctx, conn, Dtap::ChannelRelease);
                }
                ctx.count("vmsc.handover_anchored");
                ctx.send(from, Message::Map(MapMessage::SendEndSignalAck { call }));
            }
            MapMessage::SendEndSignalAck { .. } => {}
            MapMessage::PurgeMs { imsi } => self.purge_ms(ctx, imsi),
            _ => ctx.count("vmsc.unhandled_map"),
        }
    }

    // ----------------------------------------------------------------
    // Gb: GMM/SM answers from the SGSN
    // ----------------------------------------------------------------

    fn handle_gmm(&mut self, ctx: &mut Context<'_, Message>, msg: GmmMessage) {
        match msg {
            GmmMessage::AttachAccept { imsi, .. } => {
                // Step 1.3 continues: activate the signaling context.
                if let Some(entry) = self.ms_table.get_mut(&imsi) {
                    entry.phase = RegPhase::ActivatingSignalingContext;
                }
                ctx.send(
                    self.sgsn,
                    Message::Gmm(GmmMessage::ActivatePdpContextRequest {
                        imsi,
                        nsapi: sig_nsapi(),
                        qos: QosProfile::signaling(),
                        static_addr: None,
                    }),
                );
            }
            GmmMessage::AttachReject { imsi, cause } => {
                ctx.count("vmsc.attach_rejected");
                self.fail_registration(ctx, imsi, cause);
            }
            GmmMessage::ActivatePdpContextAccept {
                imsi, nsapi, addr, ..
            } => {
                if nsapi == sig_nsapi() {
                    let resumed_call = {
                        let Some(entry) = self.ms_table.get_mut(&imsi) else {
                            return;
                        };
                        entry.signaling_addr = Some(addr);
                        self.by_addr.insert(addr, imsi);
                        self.awaiting_context
                            .iter()
                            .position(|(i, _)| *i == imsi)
                            .map(|pos| self.awaiting_context.swap_remove(pos).1)
                    };
                    if let Some(call) = resumed_call {
                        // Re-announce the fresh address, then continue the
                        // interrupted step 2.3.
                        let alias = self.ms_table.get(&imsi).and_then(|e| e.msisdn);
                        if let Some(alias) = alias {
                            let transport = TransportAddr::new(addr, H225_PORT);
                            self.send_ras(
                                ctx,
                                imsi,
                                RasMessage::Rrq {
                                    alias,
                                    transport,
                                    imsi: None,
                                },
                            );
                        }
                        let called = self.calls.get(&call).and_then(|c| c.called);
                        if let Some(called) = called {
                            self.send_ras(
                                ctx,
                                imsi,
                                RasMessage::Arq {
                                    call,
                                    called,
                                    answering: false,
                                    bandwidth: 160,
                                },
                            );
                            self.arm_arq_guard(ctx, call);
                        }
                        return;
                    }
                    if let Some(entry) = self.ms_table.get_mut(&imsi) {
                        entry.phase = RegPhase::RasRegistering;
                    }
                    // Step 1.4: RAS registration of the MS's alias.
                    ctx.note("Step 1.4: endpoint registration (RRQ) -> GK");
                    let alias = self.ms_table.get(&imsi).and_then(|e| e.msisdn);
                    if let Some(alias) = alias {
                        let transport = TransportAddr::new(addr, H225_PORT);
                        self.send_ras(
                            ctx,
                            imsi,
                            RasMessage::Rrq {
                                alias,
                                transport,
                                imsi: None,
                            },
                        );
                        self.arm_ras_guard(ctx, imsi);
                    } else {
                        ctx.count("vmsc.no_alias_for_rrq");
                    }
                } else {
                    // Voice context (step 2.9 / 4.8).
                    let call = if let Some(entry) = self.ms_table.get_mut(&imsi) {
                        entry.voice_addr = Some(addr);
                        self.by_addr.insert(addr, imsi);
                        entry.call
                    } else {
                        None
                    };
                    // Voice-PDP activation-time KPI: request → accept.
                    if let Some(state) = call.and_then(|c| self.calls.get_mut(&c)) {
                        if let Some(requested_at) = state.voice_pdp_requested_at.take() {
                            ctx.observe_duration(
                                "vmsc.voice_pdp_activation_ms",
                                ctx.now().duration_since(requested_at),
                            );
                        }
                    }
                    ctx.count("vmsc.voice_context_active");
                }
            }
            GmmMessage::ActivatePdpContextReject { imsi, nsapi, cause } => {
                ctx.count("vmsc.pdp_rejected");
                if nsapi == sig_nsapi() {
                    self.fail_registration(ctx, imsi, cause);
                }
            }
            GmmMessage::DeactivatePdpContextAccept { .. } => {}
            _ => ctx.count("vmsc.unhandled_gmm"),
        }
    }

    fn fail_registration(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, cause: Cause) {
        self.clear_ras_guard(ctx, &imsi);
        if let Some(entry) = self.ms_table.get_mut(&imsi) {
            let conn = entry.conn;
            entry.phase = RegPhase::GsmUpdating;
            if let Some(conn) = conn {
                self.send_a(ctx, conn, Dtap::LocationUpdateReject { cause });
            }
        }
    }

    // ----------------------------------------------------------------
    // Downlink IP (LLC) from the SGSN
    // ----------------------------------------------------------------

    fn handle_downlink_ip(&mut self, ctx: &mut Context<'_, Message>, packet: IpPacket) {
        let Some(&imsi) = self.by_addr.get(&packet.dst.ip) else {
            ctx.count("vmsc.downlink_unknown_addr");
            return;
        };
        match packet.payload {
            IpPayload::Ras(ras) => self.handle_ras(ctx, imsi, ras),
            IpPayload::Q931(q) => self.handle_q931(ctx, imsi, packet.src, q),
            IpPayload::Rtp(rtp) => self.downlink_voice(ctx, imsi, rtp),
        }
    }

    fn handle_ras(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, ras: RasMessage) {
        match ras {
            RasMessage::Rcf { .. } => {
                // Step 1.5 done → step 1.6: tell the MS.
                let ready = {
                    let Some(entry) = self.ms_table.get_mut(&imsi) else {
                        return;
                    };
                    if entry.phase != RegPhase::RasRegistering {
                        None
                    } else {
                        entry.phase = RegPhase::Registered;
                        Some((entry.tmsi, entry.conn, entry.reg_started))
                    }
                };
                if let Some((tmsi, conn, reg_started)) = ready {
                    if let Some(guard) = self.clear_ras_guard(ctx, &imsi) {
                        if guard.attempts > 0 {
                            // The ladder had to retry: record how long the
                            // outage held registration up.
                            ctx.observe_duration(
                                "vmsc.ras_recovery_ms",
                                ctx.now().duration_since(guard.first_at),
                            );
                        }
                    }
                    ctx.note("Step 1.6: registration complete; accept -> MS");
                    ctx.count("vmsc.registrations_completed");
                    ctx.observe_duration(
                        "vmsc.registration_ms",
                        ctx.now().duration_since(reg_started),
                    );
                    if let Some(conn) = conn {
                        self.send_a(ctx, conn, Dtap::LocationUpdateAccept { tmsi });
                    }
                    self.maybe_deactivate_signaling(ctx, imsi);
                }
            }
            RasMessage::Rrj { .. } => {
                ctx.count("vmsc.ras_rejected");
                self.fail_registration(ctx, imsi, Cause::AdmissionRejected);
            }
            RasMessage::Acf {
                call,
                dest_call_signal_addr,
            } => {
                let (phase, called) = {
                    let Some(state) = self.calls.get_mut(&call) else {
                        return;
                    };
                    if let Some(guard) = state.arq_guard.take() {
                        ctx.cancel_timer(guard.token);
                        if guard.attempts > 0 {
                            ctx.observe_duration(
                                "vmsc.arq_recovery_ms",
                                ctx.now().duration_since(guard.first_at),
                            );
                        }
                    }
                    (state.phase, state.called)
                };
                match phase {
                    CallPhase::MoAdmission => {
                        // Step 2.4: Setup toward the destination.
                        if let Some(state) = self.calls.get_mut(&call) {
                            state.phase = CallPhase::MoProgress;
                            state.remote_signal = Some(dest_call_signal_addr);
                        }
                        let called = called.expect("MO call has digits");
                        let calling = self.ms_table.get(&imsi).and_then(|e| e.msisdn);
                        let signal_addr = self.signal_addr_for(&imsi);
                        let media_addr = self.media_addr_for(&imsi);
                        if let (Some(signal_addr), Some(media_addr)) = (signal_addr, media_addr)
                        {
                            self.send_q931(
                                ctx,
                                call,
                                Q931Kind::Setup {
                                    calling,
                                    called,
                                    signal_addr,
                                    media_addr,
                                },
                            );
                            if self.config.resilience {
                                let token = ctx
                                    .set_timer(SETUP_SUPERVISION, (NS_SETUP << TAG_SHIFT) | call.0);
                                match self.calls.get_mut(&call) {
                                    Some(state) => state.setup_guard = Some(token),
                                    None => ctx.cancel_timer(token),
                                }
                            }
                        }
                    }
                    CallPhase::MtAdmission => self.page_or_defer(ctx, call, imsi),
                    _ => {}
                }
            }
            RasMessage::Arj { call, cause } => {
                ctx.count("vmsc.admission_rejected");
                if cause == Cause::NetworkCongestion && self.config.resilience {
                    // Gatekeeper load shed. Leave the armed admission
                    // guard in place for ONE deferred re-try (the first
                    // backoff rung), so a brief shed degrades to added
                    // setup delay instead of a failed call. Later rungs
                    // would hold the call open for seconds into a still-
                    // congested peak — the caller has long since given
                    // up — so a shed of a retried admission releases
                    // immediately and leaves re-attempting to the user.
                    let retryable = self
                        .calls
                        .get(&call)
                        .map(|s| {
                            matches!(
                                s.phase,
                                CallPhase::MoAdmission | CallPhase::MtAdmission
                            ) && s.arq_guard.as_ref().is_some_and(|g| g.attempts == 0)
                        })
                        .unwrap_or(false);
                    if retryable {
                        ctx.count("vmsc.admission_shed_deferred");
                        return;
                    }
                }
                if let Some(state) = self.calls.get_mut(&call) {
                    if let Some(guard) = state.arq_guard.take() {
                        ctx.cancel_timer(guard.token);
                    }
                    if let Some(token) = state.setup_guard.take() {
                        ctx.cancel_timer(token);
                    }
                }
                if let Some(state) = self.calls.get(&call) {
                    if state.remote_signal.is_some() {
                        self.send_q931(ctx, call, Q931Kind::ReleaseComplete { cause });
                    }
                }
                self.send_a_to_ms(ctx, &imsi, Dtap::Disconnect { call, cause });
                self.calls.remove(&call);
                if let Some(e) = self.ms_table.get_mut(&imsi) {
                    e.call = None;
                }
            }
            RasMessage::Dcf { .. } => {}
            _ => ctx.count("vmsc.unhandled_ras"),
        }
    }

    fn handle_q931(
        &mut self,
        ctx: &mut Context<'_, Message>,
        imsi: Imsi,
        src: TransportAddr,
        msg: Q931Message,
    ) {
        match msg.kind {
            Q931Kind::Setup {
                calling,
                signal_addr,
                media_addr,
                ..
            } => {
                // Step 4.2: an incoming call arrived through the GGSN.
                let busy = match self.ms_table.get(&imsi) {
                    Some(entry) => entry.call.is_some(),
                    None => return,
                };
                if busy {
                    let reply = Q931Message {
                        crv: msg.crv,
                        call: msg.call,
                        kind: Q931Kind::ReleaseComplete {
                            cause: Cause::UserBusy,
                        },
                    };
                    self.send_ip_for(ctx, imsi, H225_PORT, src, IpPayload::Q931(reply));
                    return;
                }
                if let Some(entry) = self.ms_table.get_mut(&imsi) {
                    entry.call = Some(msg.call);
                }
                self.calls.insert(
                    msg.call,
                    VmscCall {
                        imsi,
                        phase: CallPhase::MtAdmission,
                        crv: msg.crv,
                        remote_signal: Some(signal_addr),
                        remote_media: Some(media_addr),
                        called: None,
                        calling,
                        started_at: ctx.now(),
                        connected_at: None,
                        paged_at: None,
                        voice_pdp_requested_at: None,
                        rtp_seq: 0,
                        e_leg: None,
                        target_role: false,
                        arq_guard: None,
                        setup_guard: None,
                    },
                );
                ctx.count("vmsc.mt_calls");
                ctx.note("Step 4.2: incoming Setup via GGSN; Call Proceeding back");
                self.send_q931(ctx, msg.call, Q931Kind::CallProceeding);
                // Step 4.3: admission for the answering side.
                let called = self.ms_table.get(&imsi).and_then(|e| e.msisdn);
                if let Some(called) = called {
                    self.send_ras(
                        ctx,
                        imsi,
                        RasMessage::Arq {
                            call: msg.call,
                            called,
                            answering: true,
                            bandwidth: 160,
                        },
                    );
                    self.arm_arq_guard(ctx, msg.call);
                }
            }
            Q931Kind::CallProceeding => ctx.count("vmsc.call_proceeding"),
            Q931Kind::Alerting => {
                // Step 2.7: ring back toward the MS.
                self.send_a_to_ms(ctx, &imsi, Dtap::Alerting { call: msg.call });
            }
            Q931Kind::Connect { media_addr } => {
                // Step 2.8: answered.
                if let Some(state) = self.calls.get_mut(&msg.call) {
                    state.remote_media = Some(media_addr);
                }
                self.send_a_to_ms(ctx, &imsi, Dtap::Connect { call: msg.call });
            }
            Q931Kind::ReleaseComplete { cause } => {
                // The far end hung up: clear the radio side.
                self.send_a_to_ms(ctx, &imsi, Dtap::Disconnect { call: msg.call, cause });
                self.finish_call(ctx, msg.call);
            }
        }
    }

    // ----------------------------------------------------------------
    // Voice bridging (the vocoder + PCU of Figure 2(b))
    // ----------------------------------------------------------------

    fn uplink_voice(
        &mut self,
        ctx: &mut Context<'_, Message>,
        call: CallId,
        seq: u32,
        origin_us: u64,
    ) {
        let (target_role, e_leg, remote_media, imsi) = {
            let Some(state) = self.calls.get(&call) else {
                return;
            };
            (
                state.target_role,
                state.e_leg,
                state.remote_media,
                state.imsi,
            )
        };
        // Target role after handoff: bridge radio → anchor trunk.
        if target_role {
            if let Some((anchor, cic)) = e_leg {
                ctx.send(
                    anchor,
                    Message::TrunkVoice {
                        cic,
                        call,
                        seq,
                        origin_us,
                    },
                );
            }
            return;
        }
        let Some(remote) = remote_media else {
            return;
        };
        let rtp_seq = {
            let Some(state) = self.calls.get_mut(&call) else {
                return;
            };
            state.rtp_seq = state.rtp_seq.wrapping_add(1);
            state.rtp_seq
        };
        // Prefer the high-priority voice context once it is up.
        let (nsapi, src_ip) = {
            let entry = self.ms_table.get(&imsi);
            match entry.and_then(|e| e.voice_addr) {
                Some(a) => (voice_nsapi(), Some(a)),
                None => (
                    sig_nsapi(),
                    entry.and_then(|e| e.signaling_addr),
                ),
            }
        };
        let Some(src_ip) = src_ip else {
            return;
        };
        let rtp = RtpPacket {
            ssrc: u32::from(rtp_seq) | 0x564D_0000, // "VM…"
            seq: rtp_seq,
            timestamp: (origin_us / 125) as u32,
            payload_type: PAYLOAD_TYPE_GSM,
            marker: seq == 1,
            payload_len: 33,
            call,
            origin_us,
        };
        ctx.send(
            self.sgsn,
            Message::Llc {
                imsi,
                nsapi,
                inner: Box::new(IpPacket::new(
                    TransportAddr::new(src_ip, MEDIA_PORT),
                    remote,
                    IpPayload::Rtp(rtp),
                )),
            },
        );
    }

    fn downlink_voice(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, rtp: RtpPacket) {
        let Some(entry) = self.ms_table.get(&imsi) else {
            return;
        };
        let Some(call) = entry.call else {
            return;
        };
        // Anchor role after handoff: bridge RTP → inter-MSC trunk.
        let handed_off = entry.conn.is_none();
        if handed_off {
            if let Some((target, cic)) = self.calls.get(&call).and_then(|c| c.e_leg) {
                ctx.send(
                    target,
                    Message::TrunkVoice {
                        cic,
                        call,
                        seq: u32::from(rtp.seq),
                        origin_us: rtp.origin_us,
                    },
                );
            }
            return;
        }
        self.send_a_to_ms(
            ctx,
            &imsi,
            Dtap::VoiceFrame {
                call,
                seq: u32::from(rtp.seq),
                origin_us: rtp.origin_us,
            },
        );
    }

    /// Trunk voice from a peer MSC over the E interface.
    fn handle_trunk_voice(
        &mut self,
        ctx: &mut Context<'_, Message>,
        call: CallId,
        seq: u32,
        origin_us: u64,
    ) {
        let Some(state) = self.calls.get(&call) else {
            return;
        };
        if state.target_role {
            // Deliver to the MS on our radio network.
            let conn = self
                .by_conn_call
                .iter()
                .find(|(_, &c)| c == call)
                .map(|(conn, _)| *conn);
            if let Some(conn) = conn {
                self.send_a(
                    ctx,
                    conn,
                    Dtap::VoiceFrame {
                        call,
                        seq,
                        origin_us,
                    },
                );
            }
        } else {
            // Anchor: MS roamed away; this is uplink voice from the target
            // to be carried onward as RTP.
            self.uplink_voice(ctx, call, seq, origin_us);
        }
    }
}

impl Node<Message> for Vmsc {
    fn on_timer(
        &mut self,
        ctx: &mut Context<'_, Message>,
        _token: vgprs_sim::TimerToken,
        tag: u64,
    ) {
        // A crashed node's pending timers must not act; guard lookups
        // below additionally ignore anything the crash wiped out.
        if self.down {
            if tag >> TAG_SHIFT == NS_PAGING_DRAIN {
                // The tick is consumed even while down; forget the token
                // so the throttle can re-arm after a restore.
                self.paging_drain = None;
            }
            return;
        }
        match tag >> TAG_SHIFT {
            NS_PAGING => {
                let call = CallId(tag & TAG_MASK);
                let still_paging = self
                    .calls
                    .get(&call)
                    .map(|c| c.phase == CallPhase::MtPaging)
                    .unwrap_or(false);
                if still_paging {
                    ctx.count("vmsc.paging_timeouts");
                    self.send_q931(
                        ctx,
                        call,
                        Q931Kind::ReleaseComplete {
                            cause: Cause::SubscriberAbsent,
                        },
                    );
                    self.finish_call(ctx, call);
                }
            }
            NS_RAS => self.ras_guard_expired(ctx, tag & TAG_MASK),
            NS_ARQ => self.arq_guard_expired(ctx, CallId(tag & TAG_MASK)),
            NS_SETUP => self.setup_guard_expired(ctx, CallId(tag & TAG_MASK)),
            NS_PAGING_DRAIN => self.drain_paging_queue(ctx),
            _ => {}
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(Command::Crash)) => {
                // Total state loss: MS table, calls, handoffs. The VLR/HLR
                // keep their copies, which is what cold-start recovery
                // rebuilds from (resilience mode).
                self.ms_table.clear();
                self.by_conn.clear();
                self.by_addr.clear();
                self.by_alias.clear();
                self.by_tmsi.clear();
                self.conn_of_bsc.clear();
                self.calls.clear();
                self.by_conn_call.clear();
                self.target_handoffs.clear();
                self.awaiting_context.clear();
                self.ras_guard_imsi.clear();
                self.paging_queue.clear();
                self.paging_sent_in_window = 0;
                if let Some(token) = self.paging_drain.take() {
                    ctx.cancel_timer(token);
                }
                self.down = true;
                ctx.count("vmsc.crashes");
            }
            (Interface::Internal, Message::Cmd(Command::Blackhole)) => {
                self.down = true;
                ctx.count("vmsc.blackholes");
            }
            (Interface::Internal, Message::Cmd(Command::Restore)) => {
                self.down = false;
            }
            (Interface::Internal, Message::Cmd(Command::Resync)) => {
                // A backbone peer (SGSN/GGSN/gatekeeper) restarted and
                // lost our contexts: walk the MS table in deterministic
                // order and re-run attach → PDP activation → RRQ for
                // every subscriber. Stale PDP addresses are dropped —
                // the restarted peer no longer knows them.
                ctx.count("vmsc.resyncs");
                let mut imsis: Vec<Imsi> = self.ms_table.keys().copied().collect();
                imsis.sort();
                for imsi in imsis {
                    self.clear_ras_guard(ctx, &imsi);
                    let stale = {
                        let Some(entry) = self.ms_table.get_mut(&imsi) else {
                            continue;
                        };
                        let stale = [entry.signaling_addr.take(), entry.voice_addr.take()];
                        entry.phase = RegPhase::Attaching;
                        entry.reg_started = ctx.now();
                        stale
                    };
                    for addr in stale.into_iter().flatten() {
                        self.by_addr.remove(&addr);
                    }
                    ctx.count("vmsc.resync_reattach");
                    ctx.send(self.sgsn, Message::Gmm(GmmMessage::AttachRequest { imsi }));
                }
            }
            _ if self.down => ctx.count("vmsc.dropped_while_down"),
            (Interface::A, Message::A { conn, dtap }) => self.handle_a(ctx, from, conn, dtap),
            (Interface::B | Interface::C | Interface::E, Message::Map(m)) => {
                self.handle_map(ctx, from, m)
            }
            (Interface::Gb, Message::Gmm(m)) => self.handle_gmm(ctx, m),
            (Interface::Gb, Message::Llc { inner, .. }) => self.handle_downlink_ip(ctx, *inner),
            (
                Interface::E,
                Message::TrunkVoice {
                    call,
                    seq,
                    origin_us,
                    ..
                },
            ) => self.handle_trunk_voice(ctx, call, seq, origin_us),
            _ => ctx.count("vmsc.unexpected_message"),
        }
    }
}
