//! # vgprs-core — the paper's contribution
//!
//! The [`Vmsc`] (VoIP Mobile Switching Center) and the [`testbed`]
//! builders that assemble complete networks around it:
//!
//! * [`VgprsZone`] — one vGPRS serving network (Figure 2(b)): BTS, BSC,
//!   VMSC, VLR, HLR, SGSN, GGSN, PSDN router, gatekeeper, plus helpers to
//!   add subscribers, H.323 terminals and a PSTN gateway.
//! * [`GsmZone`] — the classic circuit-switched baseline network
//!   (Figure 7) around a [`vgprs_gsm::GsmMsc`].
//!
//! See the crate's integration tests (workspace `tests/`) for the
//! reproduced message flows of Figures 4–6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod testbed;
mod vmsc;

pub use testbed::{
    GsmZone, GsmZoneConfig, LatencyProfile, VgprsZone, VgprsZoneConfig,
};
pub use vmsc::{MsEntry, RegPhase, Vmsc, VmscConfig};
