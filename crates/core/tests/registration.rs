//! End-to-end reproduction of the paper's Figure 4: vGPRS registration.

use vgprs_core::{RegPhase, VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{MobileStation, MsState};
use vgprs_h323::Gatekeeper;
use vgprs_sim::{Network, SimDuration};
use vgprs_wire::{Command, Imsi, Message, Msisdn};

fn imsi() -> Imsi {
    Imsi::parse("466920000000001").unwrap()
}

fn msisdn() -> Msisdn {
    Msisdn::parse("886912000001").unwrap()
}

fn registered_zone() -> (Network<Message>, VgprsZone, vgprs_sim::NodeId) {
    let mut net = Network::new(42);
    let zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let ms = zone.add_subscriber(&mut net, "ms1", imsi(), 0xABCD, msisdn());
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    (net, zone, ms)
}

#[test]
fn figure4_registration_ladder() {
    let (net, _zone, _ms) = registered_zone();
    // The paper's Figure 4, steps 1.1 – 1.6, as a label subsequence:
    assert!(
        net.trace().contains_subsequence(&[
            "Um_Location_Update_Request",  // step 1.1
            "Abis_Location_Update",        //   "
            "A_Location_Update",           //   "
            "MAP_Update_Location_Area",    //   "
            "MAP_Update_Location",         // step 1.2
            "MAP_Insert_Subs_Data",        //   "
            "MAP_Update_Location_Area_ack",//   "
            "GPRS_Attach_Request",         // step 1.3
            "GPRS_Attach_Accept",          //   "
            "Activate_PDP_Context_Request",//   "
            "Activate_PDP_Context_Accept", //   "
            "LLC:RAS_RRQ",                 // step 1.4
            "GTP:RAS_RRQ",                 //   " (tunneled, Fig. 3)
            "RAS_RRQ",                     //   " (on the LAN)
            "RAS_RCF",                     // step 1.5
            "A_Location_Update_Accept",    // step 1.6
            "Um_Location_Update_Accept",   //   "
        ]),
        "registration ladder mismatch; got:\n{}",
        vgprs_sim::LadderDiagram::new(net.trace()).render()
    );
}

#[test]
fn registration_outcome_state() {
    let (net, zone, ms) = registered_zone();
    // MS side: registered, has a TMSI.
    let handset = net.node::<MobileStation>(ms).unwrap();
    assert_eq!(handset.state(), MsState::Idle);
    assert!(handset.tmsi().is_some());
    // VMSC side: MS table entry with both identities and the signaling
    // context's PDP address.
    let vmsc = net.node::<Vmsc>(zone.vmsc).unwrap();
    assert_eq!(vmsc.registered_count(), 1);
    let entry = vmsc.ms_entry(&imsi()).unwrap();
    assert_eq!(entry.phase, RegPhase::Registered);
    assert_eq!(entry.msisdn, Some(msisdn()));
    assert!(entry.signaling_addr.is_some());
    assert!(entry.voice_addr.is_none(), "no call yet");
    // Gatekeeper side: the (IP address, MSISDN) entry of step 1.5.
    let gk = net.node::<Gatekeeper>(zone.gk).unwrap();
    let transport = gk.lookup(&msisdn()).expect("alias registered");
    assert_eq!(Some(transport.ip), entry.signaling_addr);
}

#[test]
fn registration_authenticates_and_ciphers() {
    let (net, _zone, _ms) = registered_zone();
    assert!(net.trace().contains_subsequence(&[
        "Um_Authentication_Request",
        "Um_Authentication_Response",
        "Um_Cipher_Mode_Command",
        "Um_Cipher_Mode_Complete",
    ]));
    assert_eq!(net.stats().counter("vlr.auth_success"), 1);
}

#[test]
fn registration_is_deterministic() {
    let run = |seed| {
        let mut net = Network::new(seed);
        let zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
        let ms = zone.add_subscriber(&mut net, "ms1", imsi(), 0xABCD, msisdn());
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        (
            net.trace().labels().join(","),
            net.now(),
        )
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn wrong_key_subscriber_rejected() {
    let mut net = Network::new(42);
    let zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let ms = zone.add_subscriber(&mut net, "ms1", imsi(), 0xABCD, msisdn());
    // Corrupt the SIM key: re-create the MS with a different Ki.
    let impostor = Imsi::parse("466920000000002").unwrap();
    net.node_mut::<vgprs_gsm::Hlr>(zone.hlr).unwrap().provision(
        impostor,
        0x1111,
        vgprs_wire::SubscriberProfile::full(Msisdn::parse("886912000002").unwrap()),
    );
    let bad = zone.add_roamer(
        &mut net,
        "bad",
        impostor,
        0x2222, // ≠ HLR's 0x1111
        Msisdn::parse("886912000002").unwrap(),
    );
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.inject(SimDuration::ZERO, bad, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    assert_eq!(net.stats().counter("vlr.auth_failures"), 1);
    assert_eq!(
        net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(),
        1,
        "only the genuine subscriber registers"
    );
    assert_eq!(
        net.node::<MobileStation>(bad).unwrap().state(),
        MsState::Off,
        "the impostor's registration was rejected"
    );
}

#[test]
fn unknown_subscriber_rejected() {
    let mut net = Network::new(42);
    let zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    // MS never provisioned in any HLR.
    let ghost = zone.add_roamer(
        &mut net,
        "ghost",
        Imsi::parse("466920999999999").unwrap(),
        0xAA,
        Msisdn::parse("886912999999").unwrap(),
    );
    net.inject(SimDuration::ZERO, ghost, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    assert_eq!(net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(), 0);
    assert!(net.trace().contains_subsequence(&["Um_Location_Update_Reject"]));
}

#[test]
fn many_subscribers_register_concurrently() {
    let mut net = Network::new(42);
    let zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let count = 20;
    let mss: Vec<_> = (0..count)
        .map(|i| {
            let imsi = Imsi::parse(&format!("4669200000001{i:02}")).unwrap();
            let msisdn = Msisdn::parse(&format!("8869121000{i:02}")).unwrap();
            zone.add_subscriber(&mut net, &format!("ms{i}"), imsi, 0x1000 + i, msisdn)
        })
        .collect();
    for (i, ms) in mss.iter().enumerate() {
        net.inject(
            SimDuration::from_millis(i as u64 * 7),
            *ms,
            Message::Cmd(Command::PowerOn),
        );
    }
    net.run_until_quiescent();
    assert_eq!(
        net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(),
        count as usize
    );
    // Every MS got a distinct PDP address.
    let vmsc = net.node::<Vmsc>(zone.vmsc).unwrap();
    let mut addrs: Vec<_> = (0..count)
        .map(|i| {
            let imsi = Imsi::parse(&format!("4669200000001{i:02}")).unwrap();
            vmsc.ms_entry(&imsi).unwrap().signaling_addr.unwrap()
        })
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    assert_eq!(addrs.len(), count as usize);
}
