//! End-to-end reproduction of the paper's Figures 5 and 6: vGPRS call
//! origination + release, and call termination, between a standard GSM
//! MS and an H.323 terminal.

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{MobileStation, MsState};
use vgprs_h323::{Gatekeeper, H323Terminal, TerminalState};
use vgprs_sim::{Network, NodeId, SimDuration, SimTime};
use vgprs_wire::{CallId, Command, Imsi, Message, Msisdn};

fn ms_imsi() -> Imsi {
    Imsi::parse("466920000000001").unwrap()
}

fn ms_msisdn() -> Msisdn {
    Msisdn::parse("886912000001").unwrap()
}

fn term_alias() -> Msisdn {
    Msisdn::parse("886220001111").unwrap()
}

struct Rig {
    net: Network<Message>,
    zone: VgprsZone,
    ms: NodeId,
    term: NodeId,
}

/// One vGPRS zone with a registered MS and a registered H.323 terminal.
fn rig() -> Rig {
    let mut net = Network::new(42);
    let mut zone = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let ms = zone.add_subscriber(&mut net, "ms1", ms_imsi(), 0xABCD, ms_msisdn());
    let term = zone.add_terminal(&mut net, "term1", term_alias());
    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    assert_eq!(
        net.node::<Vmsc>(zone.vmsc).unwrap().registered_count(),
        1,
        "precondition: MS registered"
    );
    assert_eq!(
        net.node::<H323Terminal>(term).unwrap().state(),
        TerminalState::Idle,
        "precondition: terminal registered"
    );
    net.trace_mut().clear();
    Rig {
        net,
        zone,
        ms,
        term,
    }
}

#[test]
fn figure5_origination_ladder() {
    let mut r = rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    r.net.run_until(SimTime::from_micros(8_000_000));
    // Paper Figure 5, steps 2.1 – 2.9:
    assert!(
        r.net.trace().contains_subsequence(&[
            "Um_CM_Service_Request",          // step 2.1 box
            "Um_Setup",                       // step 2.1
            "MAP_Send_Info_For_Outgoing_Call",// step 2.2
            "MAP_Send_Info_For_Outgoing_Call_ack",
            "RAS_ARQ",                        // step 2.3 (VMSC → GK)
            "RAS_ACF",
            "Q931_Setup",                     // step 2.4
            "Q931_Call_Proceeding",
            "RAS_ARQ",                        // step 2.5 (terminal → GK)
            "RAS_ACF",
            "Q931_Alerting",                  // step 2.6
            "A_Alerting",                     // step 2.7
            "Um_Alerting",
            "Q931_Connect",                   // step 2.8
            "A_Connect",
            "Um_Connect",
            "Activate_PDP_Context_Request",   // step 2.9 (voice context)
            "Activate_PDP_Context_Accept",
        ]),
        "origination ladder mismatch; got:\n{}",
        vgprs_sim::LadderDiagram::new(r.net.trace()).render()
    );
    // Both ends connected.
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().state(),
        MsState::Active
    );
    assert_eq!(
        r.net.node::<H323Terminal>(r.term).unwrap().state(),
        TerminalState::Active
    );
}

#[test]
fn voice_flows_both_ways() {
    let mut r = rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    // ~8 s: connect around 4.3 s (auto-answer 2 s), then talking.
    r.net.run_until(SimTime::from_micros(10_000_000));
    let handset = r.net.node::<MobileStation>(r.ms).unwrap();
    let terminal = r.net.node::<H323Terminal>(r.term).unwrap();
    assert!(
        handset.frames_received > 100,
        "MS heard {} frames",
        handset.frames_received
    );
    assert!(
        terminal.frames_received > 100,
        "terminal heard {} frames",
        terminal.frames_received
    );
    // The MS→terminal path crosses the GPRS tunnel; its delay is the sum
    // of Um+Abis+A (circuit) + Gb+Gn+Gi+LAN (packet) one-way latencies.
    let h = r.net.stats().histogram("term.voice_e2e_ms").unwrap();
    assert!(h.mean() > 5.0 && h.mean() < 60.0, "mean {}", h.mean());
}

#[test]
fn figure5_release_ladder() {
    let mut r = rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    r.net.run_until(SimTime::from_micros(6_000_000));
    r.net.trace_mut().clear();
    // Step 3.1: the calling party (the GSM user) hangs up first.
    r.net
        .inject(SimDuration::ZERO, r.ms, Message::Cmd(Command::Hangup));
    r.net.run_until_quiescent();
    assert!(
        r.net.trace().contains_subsequence(&[
            "Um_Disconnect",                    // step 3.1
            "LLC:Q931_Release_Complete",        // step 3.2 (leaves the VMSC)
            "Deactivate_PDP_Context_Request",   // step 3.4
            "Q931_Release_Complete",            // step 3.2 (reaches the LAN)
            "RAS_DRQ",                          // step 3.3
            "RAS_DCF",
        ]),
        "release ladder mismatch; got:\n{}",
        vgprs_sim::LadderDiagram::new(r.net.trace()).render()
    );
    // Both DRQs (VMSC and terminal) were recorded for charging.
    let gk = r.net.node::<Gatekeeper>(r.zone.gk).unwrap();
    assert_eq!(gk.charging_records().len(), 2);
    assert_eq!(gk.bandwidth_used(), 0);
    // Everyone back to idle; voice context gone.
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().state(),
        MsState::Idle
    );
    assert_eq!(
        r.net.node::<H323Terminal>(r.term).unwrap().state(),
        TerminalState::Idle
    );
    let vmsc = r.net.node::<Vmsc>(r.zone.vmsc).unwrap();
    assert_eq!(vmsc.active_calls(), 0);
    assert!(vmsc.ms_entry(&ms_imsi()).unwrap().voice_addr.is_none());
}

#[test]
fn figure6_termination_ladder() {
    let mut r = rig();
    // The H.323 terminal calls the MS.
    r.net.inject(
        SimDuration::ZERO,
        r.term,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called: ms_msisdn(),
        }),
    );
    r.net.run_until(SimTime::from_micros(10_000_000));
    // Paper Figure 6, steps 4.1 – 4.8:
    assert!(
        r.net.trace().contains_subsequence(&[
            "RAS_ARQ",                       // step 4.1 (calling party)
            "RAS_ACF",
            "Q931_Setup",                    // step 4.2 (through the GGSN)
            "GTP:Q931_Setup",                //   " (tunneled)
            "LLC:Q931_Setup",                //   " (Gb)
            "LLC:Q931_Call_Proceeding",      //   " (VMSC answers)
            "RAS_ARQ",                       // step 4.3 (VMSC)
            "RAS_ACF",
            "A_Paging",                      // step 4.4
            "Abis_Paging",
            "Um_Paging",
            "Um_Paging_Response",            // step 4.5
            "A_Setup",                       //   " (MtSetup toward the MS)
            "Um_Setup",
            "Um_Alerting",                   // step 4.6
            "Q931_Alerting",
            "Um_Connect",                    // step 4.7
            "LLC:Q931_Connect",
            "Activate_PDP_Context_Request",  // step 4.8
            "Q931_Connect",                  // step 4.7 reaches the caller
        ]),
        "termination ladder mismatch; got:\n{}",
        vgprs_sim::LadderDiagram::new(r.net.trace()).render()
    );
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().state(),
        MsState::Active
    );
    assert_eq!(
        r.net.node::<H323Terminal>(r.term).unwrap().state(),
        TerminalState::Active
    );
    // Voice flows.
    let handset = r.net.node::<MobileStation>(r.ms).unwrap();
    assert!(handset.frames_received > 50);
}

#[test]
fn busy_ms_rejects_second_call() {
    let mut r = rig();
    let term2 = {
        let t = r
            .zone
            .add_terminal(&mut r.net, "term2", Msisdn::parse("886220002222").unwrap());
        r.net.run_until_quiescent();
        t
    };
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    r.net.run_until(SimTime::from_micros(6_000_000));
    // terminal 2 now calls the busy MS
    r.net.inject(
        SimDuration::ZERO,
        term2,
        Message::Cmd(Command::Dial {
            call: CallId(2),
            called: ms_msisdn(),
        }),
    );
    r.net.run_until(SimTime::from_micros(12_000_000));
    assert_eq!(
        r.net.node::<H323Terminal>(term2).unwrap().state(),
        TerminalState::Idle,
        "second caller was released (user busy)"
    );
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().state(),
        MsState::Active,
        "first call survives"
    );
}

#[test]
fn remote_hangup_clears_ms() {
    let mut r = rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: term_alias(),
        }),
    );
    r.net.run_until(SimTime::from_micros(6_000_000));
    r.net
        .inject(SimDuration::ZERO, r.term, Message::Cmd(Command::Hangup));
    r.net.run_until_quiescent();
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().state(),
        MsState::Idle
    );
    assert_eq!(r.net.node::<Vmsc>(r.zone.vmsc).unwrap().active_calls(), 0);
}

#[test]
fn call_to_unknown_number_denied() {
    let mut r = rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: Msisdn::parse("886299999999").unwrap(),
        }),
    );
    r.net.run_until_quiescent();
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().state(),
        MsState::Idle,
        "MS returns to idle after the reject"
    );
    assert_eq!(r.net.stats().counter("vmsc.admission_rejected"), 1);
}

#[test]
fn consecutive_calls_reuse_signaling_context() {
    let mut r = rig();
    for call_id in 1..=3u64 {
        r.net.inject(
            SimDuration::ZERO,
            r.ms,
            Message::Cmd(Command::Dial {
                call: CallId(call_id),
                called: term_alias(),
            }),
        );
        r.net.run_until(r.net.now() + SimDuration::from_secs(6));
        assert_eq!(
            r.net.node::<MobileStation>(r.ms).unwrap().state(),
            MsState::Active,
            "call {call_id} connected"
        );
        r.net
            .inject(SimDuration::ZERO, r.ms, Message::Cmd(Command::Hangup));
        r.net.run_until_quiescent();
        assert_eq!(
            r.net.node::<MobileStation>(r.ms).unwrap().state(),
            MsState::Idle,
            "call {call_id} cleared"
        );
    }
    // The signaling context was never torn down (the paper's key
    // Section 6 point), while the voice context cycled per call.
    assert_eq!(r.net.stats().counter("sgsn.attaches"), 1);
    assert_eq!(r.net.stats().counter("vmsc.voice_context_requested"), 3);
    assert_eq!(r.net.stats().counter("vmsc.voice_context_deactivated"), 3);
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).unwrap().calls_connected,
        3
    );
}
