//! Ladder conformance for the paper's Figure 9: inter-VMSC handoff.
//!
//! The behavioral handoff tests (voice keeps flowing, anchor keeps the
//! H.323 leg) live in the workspace-level `tests/handoff.rs`; this file
//! asserts the *message sequence* step by step, like the Figure 4/5/6
//! ladders in `registration.rs` and `calls.rs`, so a reordering of the
//! MAP dialogue fails loudly with the rendered ladder.

use vgprs_core::{VgprsZone, VgprsZoneConfig, Vmsc};
use vgprs_gsm::{Bts, MobileStation, MsState};
use vgprs_h323::H323Terminal;
use vgprs_sim::{Interface, Network, NodeId, SimDuration, SimTime};
use vgprs_wire::{CallId, CellId, Command, Imsi, Ipv4Addr, Lai, Message, Msisdn, TransportAddr};

struct Rig {
    net: Network<Message>,
    anchor_vmsc: NodeId,
    target_vmsc: NodeId,
    ms: NodeId,
    term: NodeId,
}

/// Two vGPRS zones joined by an E-interface trunk, with an MS camped on
/// zone 1 that also hears zone 2's cell, and an H.323 terminal in zone 1.
fn two_zone_rig() -> Rig {
    let mut net = Network::new(42);
    let mut zone1 = VgprsZone::build(&mut net, VgprsZoneConfig::taiwan());
    let zone2 = VgprsZone::build(
        &mut net,
        VgprsZoneConfig {
            name: "tw2".into(),
            lai: Lai::new(466, 92, 2),
            cell: CellId(2),
            msrn_prefix: "8869991".into(),
            pool: (Ipv4Addr::from_octets(10, 201, 0, 0), 16),
            gk_addr: TransportAddr::new(Ipv4Addr::from_octets(10, 2, 0, 2), 1719),
            ..VgprsZoneConfig::taiwan()
        },
    );
    let lat = zone1.latency;
    net.connect(zone1.vmsc, zone2.vmsc, Interface::E, lat.e);
    net.node_mut::<Vmsc>(zone1.vmsc)
        .expect("vmsc1")
        .add_neighbor_cell(CellId(2), zone2.vmsc);

    let ms = zone1.add_subscriber(
        &mut net,
        "ms1",
        Imsi::parse("466920000000001").expect("valid"),
        0xABCD,
        Msisdn::parse("886912000001").expect("valid"),
    );
    let term = zone1.add_terminal(
        &mut net,
        "term1",
        Msisdn::parse("886220001111").expect("valid"),
    );
    net.connect(ms, zone2.bts, Interface::Um, lat.um);
    net.node_mut::<Bts>(zone2.bts).expect("bts2").register_ms(ms);
    net.node_mut::<MobileStation>(ms)
        .expect("ms")
        .add_neighbor(CellId(2), zone2.bts);

    net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
    net.run_until_quiescent();
    assert_eq!(
        net.node::<Vmsc>(zone1.vmsc).expect("vmsc1").registered_count(),
        1,
        "precondition: MS registered in zone 1"
    );
    Rig {
        net,
        anchor_vmsc: zone1.vmsc,
        target_vmsc: zone2.vmsc,
        ms,
        term,
    }
}

#[test]
fn figure9_intervmsc_handoff_ladder() {
    let mut r = two_zone_rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: Msisdn::parse("886220001111").expect("valid"),
        }),
    );
    r.net.run_until(SimTime::from_micros(8_000_000));
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).expect("ms").state(),
        MsState::Active,
        "precondition: call connected before the move"
    );
    r.net.trace_mut().clear();

    // Mid-call, the MS reports zone 2's cell as stronger.
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(2) }),
    );
    r.net.run_until(SimTime::from_micros(12_000_000));

    // Paper Figure 9 / Section 5 step order.
    assert!(
        r.net.trace().contains_subsequence(&[
            "Um_Measurement_Report",      // MS: target cell is stronger
            "MAP_Prepare_Handover",       // anchor VMSC → target VMSC
            "MAP_Prepare_Handover_ack",   // circuit + handover ref allocated
            "A_Handover_Command",         // anchor tells the MS via old cell
            "Um_Handover_Command",
            "Um_Handover_Complete",       // MS arrives on the target cell
            "A_Handover_Complete",
            "MAP_Send_End_Signal",        // target VMSC → anchor VMSC
            "A_Channel_Release",          // anchor frees the old channel…
            "MAP_Send_End_Signal_ack",    // …and closes the MAP dialogue
        ]),
        "inter-VMSC handoff ladder mismatch; got:\n{}",
        vgprs_sim::LadderDiagram::new(r.net.trace()).render()
    );

    // Anchor keeps the H.323 leg, target took the radio leg.
    assert_eq!(r.net.stats().counter("vmsc.handover_anchored"), 1);
    assert_eq!(r.net.stats().counter("vmsc.handover_target_completed"), 1);
    let handset = r.net.node::<MobileStation>(r.ms).expect("ms");
    assert_eq!(handset.handoffs_completed, 1);
    assert_eq!(handset.state(), MsState::Active, "call survives the handoff");

    // The visitor call record at the target carries the real subscriber,
    // not a placeholder: the E-trunk leg is attributable.
    let target = r.net.node::<Vmsc>(r.target_vmsc).expect("vmsc2");
    assert_eq!(target.active_calls(), 1);

    // Voice still reaches both parties after the handoff.
    let frames_at_move = handset.frames_received;
    let term_at_move = r.net.node::<H323Terminal>(r.term).expect("term").frames_received;
    r.net.run_until(SimTime::from_micros(16_000_000));
    let handset = r.net.node::<MobileStation>(r.ms).expect("ms");
    let terminal = r.net.node::<H323Terminal>(r.term).expect("term");
    assert!(
        handset.frames_received > frames_at_move + 50,
        "downlink voice continues through anchor → E-trunk → target"
    );
    assert!(
        terminal.frames_received > term_at_move + 50,
        "uplink voice continues through target → E-trunk → anchor"
    );
    let anchor = r.net.node::<Vmsc>(r.anchor_vmsc).expect("vmsc1");
    assert_eq!(anchor.active_calls(), 1, "anchor still owns the H.323 leg");
}

#[test]
fn figure9_handoff_to_unknown_cell_is_refused() {
    let mut r = two_zone_rig();
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::Dial {
            call: CallId(1),
            called: Msisdn::parse("886220001111").expect("valid"),
        }),
    );
    r.net.run_until(SimTime::from_micros(8_000_000));
    r.net.trace_mut().clear();
    // A measurement report for a cell no neighbor VMSC serves: the
    // anchor must not start a MAP dialogue.
    r.net.inject(
        SimDuration::ZERO,
        r.ms,
        Message::Cmd(Command::MoveToCell { cell: CellId(99) }),
    );
    r.net.run_until(SimTime::from_micros(10_000_000));
    assert_eq!(r.net.stats().counter("vmsc.handover_unknown_cell"), 1);
    assert_eq!(r.net.trace().count_label("MAP_Prepare_Handover"), 0);
    assert_eq!(
        r.net.node::<MobileStation>(r.ms).expect("ms").state(),
        MsState::Active,
        "call unaffected"
    );
}
