//! # vgprs-gsm — the GSM circuit-switched substrate
//!
//! Every GSM network element the vGPRS architecture touches, as
//! deterministic simulation nodes over [`vgprs_sim::Network`]:
//!
//! * [`MobileStation`] — the *unmodified* handset (GSM 04.08 only),
//! * [`Bts`] — radio head with per-transaction connection references and a
//!   shared packet-channel (PDCH) model,
//! * [`Bsc`] — BTS aggregation, TCH pool with blocking, PCU toward the
//!   SGSN,
//! * [`Vlr`] — visited-network registration, TMSI/MSRN allocation, call
//!   authorization,
//! * [`Hlr`] — home subscriber database with embedded AuC,
//! * [`GsmMsc`] — the classic circuit-switched MSC/GMSC baseline that the
//!   paper's VMSC replaces,
//! * [`auth`] — the simulated A3/A8 algorithms.
//!
//! The crate's integration tests drive a complete GSM PLMN end to end:
//! registration, mobile-originated and mobile-terminated calls, release,
//! authentication failure and channel blocking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
mod bsc;
mod bts;
mod hlr;
mod ms;
mod msc;
mod vlr;

pub use bsc::{Bsc, BscConfig};
pub use bts::{Bts, BtsConfig};
pub use hlr::Hlr;
pub use ms::{MobileStation, MsConfig, MsState};
pub use msc::{GsmMsc, MscConfig};
pub use vlr::{Vlr, VlrConfig};
