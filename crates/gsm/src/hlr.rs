//! Home Location Register (with embedded Authentication Centre).
//!
//! The HLR is the home network's subscriber database: profiles, current
//! serving VLR/SGSN, authentication vectors, and the routing-information
//! query used for call delivery (which is where the tromboning of the
//! paper's Figure 7 originates — the HLR lives in the *home* country).

use std::collections::HashMap;

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{
    Cause, Imsi, MapMessage, Message, Msisdn, PointCode, SubscriberProfile,
};

use crate::auth::{AuthCenter, Ki};

#[derive(Debug)]
struct HlrRecord {
    profile: SubscriberProfile,
    /// Serving VLR (node + address), if registered anywhere.
    vlr: Option<(NodeId, PointCode)>,
    /// Serving SGSN, if GPRS-attached.
    sgsn: Option<NodeId>,
}

/// The HLR node.
#[derive(Debug, Default)]
pub struct Hlr {
    auc: AuthCenter,
    records: HashMap<Imsi, HlrRecord>,
    msisdn_index: HashMap<Msisdn, Imsi>,
    /// VLRs waiting for `UpdateLocationAck` (sent once ISD is confirmed).
    pending_update: HashMap<Imsi, NodeId>,
    /// GMSCs waiting for a roaming number, per subscriber.
    pending_sri: HashMap<Imsi, Vec<(NodeId, Msisdn)>>,
}

impl Hlr {
    /// Creates an empty HLR.
    pub fn new() -> Self {
        Hlr::default()
    }

    /// Provisions a subscriber: SIM key + service profile.
    pub fn provision(&mut self, imsi: Imsi, ki: Ki, profile: SubscriberProfile) {
        self.auc.provision(imsi, ki);
        self.msisdn_index.insert(profile.msisdn, imsi);
        self.records.insert(
            imsi,
            HlrRecord {
                profile,
                vlr: None,
                sgsn: None,
            },
        );
    }

    /// Number of provisioned subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.records.len()
    }

    /// The node currently serving a subscriber's circuit traffic, if any.
    pub fn serving_vlr(&self, imsi: &Imsi) -> Option<NodeId> {
        self.records.get(imsi).and_then(|r| r.vlr.map(|(n, _)| n))
    }

    /// The SGSN currently serving a subscriber, if GPRS-attached.
    pub fn serving_sgsn(&self, imsi: &Imsi) -> Option<NodeId> {
        self.records.get(imsi).and_then(|r| r.sgsn)
    }

    /// Hands subscriber ownership to another HLR: drops the local record
    /// and cancels any serving VLR so stale registrations can't answer
    /// routing queries here. Driven administratively (an `Internal`
    /// `MAP_Cancel_Location`) by the sharded-HLR directory when a
    /// subscriber's home shard changes; the receiving HLR re-provisions
    /// the subscriber from the shared population plan.
    fn transfer_out(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi) {
        let Some(rec) = self.records.remove(&imsi) else {
            ctx.count("hlr.transfer_unknown_subscriber");
            return;
        };
        self.msisdn_index.remove(&rec.profile.msisdn);
        self.pending_update.remove(&imsi);
        self.pending_sri.remove(&imsi);
        if let Some((vlr_node, _)) = rec.vlr {
            ctx.count("hlr.cancel_location_sent");
            ctx.send(vlr_node, Message::Map(MapMessage::CancelLocation { imsi }));
        }
        ctx.count("hlr.ownership_transferred");
    }

    fn handle_map(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: MapMessage) {
        match msg {
            MapMessage::SendAuthenticationInfo { imsi } => {
                // Three vectors per request, as real HLRs batch them.
                let triplets: Vec<_> = (0..3)
                    .filter_map(|_| {
                        let rand = ctx.rng().next_u64();
                        self.auc.generate(&imsi, rand)
                    })
                    .collect();
                if triplets.is_empty() {
                    ctx.count("hlr.sai_unknown_subscriber");
                }
                ctx.send(
                    from,
                    Message::Map(MapMessage::SendAuthenticationInfoAck { imsi, triplets }),
                );
            }

            MapMessage::UpdateLocation { imsi, vlr } => {
                let Some(rec) = self.records.get_mut(&imsi) else {
                    ctx.send(
                        from,
                        Message::Map(MapMessage::UpdateLocationReject {
                            imsi,
                            cause: Cause::SubscriberAbsent,
                        }),
                    );
                    return;
                };
                let previous = rec.vlr.replace((from, vlr));
                let profile = rec.profile;
                if let Some((old_node, _)) = previous {
                    if old_node != from {
                        ctx.count("hlr.cancel_location_sent");
                        ctx.send(old_node, Message::Map(MapMessage::CancelLocation { imsi }));
                    }
                }
                self.pending_update.insert(imsi, from);
                ctx.send(
                    from,
                    Message::Map(MapMessage::InsertSubsData { imsi, profile }),
                );
            }

            MapMessage::InsertSubsDataAck { imsi } => {
                if let Some(vlr) = self.pending_update.remove(&imsi) {
                    ctx.count("hlr.locations_updated");
                    ctx.send(vlr, Message::Map(MapMessage::UpdateLocationAck { imsi }));
                }
            }

            MapMessage::CancelLocationAck { .. } => {}

            MapMessage::SendRoutingInformation { msisdn } => {
                let Some(&imsi) = self.msisdn_index.get(&msisdn) else {
                    ctx.send(
                        from,
                        Message::Map(MapMessage::SendRoutingInformationAck {
                            msisdn,
                            msrn: Err(Cause::UnallocatedNumber),
                        }),
                    );
                    return;
                };
                let Some((vlr_node, _)) = self.records.get(&imsi).and_then(|r| r.vlr) else {
                    ctx.count("hlr.sri_subscriber_absent");
                    ctx.send(
                        from,
                        Message::Map(MapMessage::SendRoutingInformationAck {
                            msisdn,
                            msrn: Err(Cause::SubscriberAbsent),
                        }),
                    );
                    return;
                };
                ctx.count("hlr.sri_queries");
                self.pending_sri
                    .entry(imsi)
                    .or_default()
                    .push((from, msisdn));
                ctx.send(
                    vlr_node,
                    Message::Map(MapMessage::ProvideRoamingNumber { imsi }),
                );
            }

            MapMessage::ProvideRoamingNumberAck { imsi, msrn } => {
                if let Some(mut waiters) = self.pending_sri.remove(&imsi) {
                    if let Some((requester, msisdn)) = waiters.pop() {
                        ctx.send(
                            requester,
                            Message::Map(MapMessage::SendRoutingInformationAck {
                                msisdn,
                                msrn: Ok(msrn),
                            }),
                        );
                    }
                    if !waiters.is_empty() {
                        self.pending_sri.insert(imsi, waiters);
                    }
                }
            }

            MapMessage::UpdateGprsLocation { imsi, .. } => {
                let rejection = match self.records.get_mut(&imsi) {
                    Some(rec) if rec.profile.gprs_allowed => {
                        rec.sgsn = Some(from);
                        None
                    }
                    Some(_) => Some(Cause::ServiceNotAllowed),
                    None => Some(Cause::SubscriberAbsent),
                };
                if rejection.is_none() {
                    ctx.count("hlr.gprs_locations_updated");
                }
                ctx.send(
                    from,
                    Message::Map(MapMessage::UpdateGprsLocationAck { imsi, rejection }),
                );
            }

            _ => ctx.count("hlr.unhandled_map"),
        }
    }
}

impl Node<Message> for Hlr {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match msg {
            Message::Map(map)
                if matches!(iface, Interface::C | Interface::D | Interface::Gr) =>
            {
                self.handle_map(ctx, from, map)
            }
            // Administrative ownership transfer from the shard driver
            // (never from a peer: `Internal` only arrives via `inject`).
            Message::Map(MapMessage::CancelLocation { imsi })
                if iface == Interface::Internal =>
            {
                self.transfer_out(ctx, imsi)
            }
            _ => ctx.count("hlr.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    fn msisdn() -> Msisdn {
        Msisdn::parse("88691234567").unwrap()
    }

    fn provisioned() -> Hlr {
        let mut hlr = Hlr::new();
        hlr.provision(imsi(), 0xABC, SubscriberProfile::full(msisdn()));
        hlr
    }

    /// Sends one message at start and records every reply.
    struct Driver {
        hlr: NodeId,
        send: Vec<Message>,
        got: Vec<Message>,
        ack_isd: bool,
        answer_prn: bool,
    }
    impl Driver {
        fn new(hlr: NodeId, send: Vec<Message>) -> Self {
            Driver {
                hlr,
                send,
                got: Vec::new(),
                ack_isd: false,
                answer_prn: false,
            }
        }
    }
    impl Node<Message> for Driver {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for m in self.send.drain(..) {
                ctx.send(self.hlr, m);
            }
        }
        fn on_message(
            &mut self,
            ctx: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            match &m {
                Message::Map(MapMessage::InsertSubsData { imsi, .. }) if self.ack_isd => {
                    let imsi = *imsi;
                    ctx.send(self.hlr, Message::Map(MapMessage::InsertSubsDataAck { imsi }));
                }
                Message::Map(MapMessage::ProvideRoamingNumber { imsi }) if self.answer_prn => {
                    let imsi = *imsi;
                    ctx.send(
                        self.hlr,
                        Message::Map(MapMessage::ProvideRoamingNumberAck {
                            imsi,
                            msrn: Msisdn::parse("8869990001").unwrap(),
                        }),
                    );
                }
                _ => {}
            }
            self.got.push(m);
        }
    }

    fn labels(msgs: &[Message]) -> Vec<String> {
        msgs.iter().map(|m| m.label_str()).collect()
    }

    #[test]
    fn sai_returns_three_verifiable_triplets() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let vlr = net.add_node(
            "vlr",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::SendAuthenticationInfo { imsi: imsi() })],
            ),
        );
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<Driver>(vlr).unwrap().got;
        assert_eq!(got.len(), 1);
        match &got[0] {
            Message::Map(MapMessage::SendAuthenticationInfoAck { triplets, .. }) => {
                assert_eq!(triplets.len(), 3);
                for t in triplets {
                    assert_eq!(t.sres, a3_sres(0xABC, t.rand), "SIM-side check passes");
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sai_unknown_subscriber_returns_empty() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", Hlr::new());
        let vlr = net.add_node(
            "vlr",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::SendAuthenticationInfo { imsi: imsi() })],
            ),
        );
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        match &net.node::<Driver>(vlr).unwrap().got[0] {
            Message::Map(MapMessage::SendAuthenticationInfoAck { triplets, .. }) => {
                assert!(triplets.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.stats().counter("hlr.sai_unknown_subscriber"), 1);
    }

    #[test]
    fn update_location_downloads_profile_then_acks() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let mut d = Driver::new(
            hlr,
            vec![Message::Map(MapMessage::UpdateLocation {
                imsi: imsi(),
                vlr: PointCode(10),
            })],
        );
        d.ack_isd = true;
        let vlr = net.add_node("vlr", d);
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(
            labels(&net.node::<Driver>(vlr).unwrap().got),
            vec!["MAP_Insert_Subs_Data", "MAP_Update_Location_ack"]
        );
        assert_eq!(net.node::<Hlr>(hlr).unwrap().serving_vlr(&imsi()), Some(vlr));
        assert_eq!(net.stats().counter("hlr.locations_updated"), 1);
    }

    #[test]
    fn moving_vlr_cancels_old_location() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let mut d1 = Driver::new(
            hlr,
            vec![Message::Map(MapMessage::UpdateLocation {
                imsi: imsi(),
                vlr: PointCode(10),
            })],
        );
        d1.ack_isd = true;
        let vlr1 = net.add_node("vlr1", d1);
        net.connect(vlr1, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let mut d2 = Driver::new(
            hlr,
            vec![Message::Map(MapMessage::UpdateLocation {
                imsi: imsi(),
                vlr: PointCode(20),
            })],
        );
        d2.ack_isd = true;
        let vlr2 = net.add_node("vlr2", d2);
        net.connect(vlr2, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert!(labels(&net.node::<Driver>(vlr1).unwrap().got)
            .contains(&"MAP_Cancel_Location".to_owned()));
        assert_eq!(net.node::<Hlr>(hlr).unwrap().serving_vlr(&imsi()), Some(vlr2));
    }

    #[test]
    fn unknown_subscriber_update_location_rejected() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", Hlr::new());
        let vlr = net.add_node(
            "vlr",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::UpdateLocation {
                    imsi: imsi(),
                    vlr: PointCode(10),
                })],
            ),
        );
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(
            labels(&net.node::<Driver>(vlr).unwrap().got),
            vec!["MAP_Update_Location_reject"]
        );
    }

    #[test]
    fn sri_resolves_msrn_through_serving_vlr() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let mut v = Driver::new(
            hlr,
            vec![Message::Map(MapMessage::UpdateLocation {
                imsi: imsi(),
                vlr: PointCode(10),
            })],
        );
        v.ack_isd = true;
        v.answer_prn = true;
        let vlr = net.add_node("vlr", v);
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let gmsc = net.add_node(
            "gmsc",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::SendRoutingInformation {
                    msisdn: msisdn(),
                })],
            ),
        );
        net.connect(gmsc, hlr, Interface::C, SimDuration::from_millis(1));
        net.run_until_quiescent();
        match &net.node::<Driver>(gmsc).unwrap().got[0] {
            Message::Map(MapMessage::SendRoutingInformationAck { msrn: Ok(m), .. }) => {
                assert_eq!(m.digits(), "8869990001");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(net.stats().counter("hlr.sri_queries"), 1);
    }

    #[test]
    fn sri_unknown_number_fails_fast() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", Hlr::new());
        let gmsc = net.add_node(
            "gmsc",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::SendRoutingInformation {
                    msisdn: msisdn(),
                })],
            ),
        );
        net.connect(gmsc, hlr, Interface::C, SimDuration::from_millis(1));
        net.run_until_quiescent();
        match &net.node::<Driver>(gmsc).unwrap().got[0] {
            Message::Map(MapMessage::SendRoutingInformationAck {
                msrn: Err(Cause::UnallocatedNumber),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sri_for_unregistered_subscriber_is_absent() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let gmsc = net.add_node(
            "gmsc",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::SendRoutingInformation {
                    msisdn: msisdn(),
                })],
            ),
        );
        net.connect(gmsc, hlr, Interface::C, SimDuration::from_millis(1));
        net.run_until_quiescent();
        match &net.node::<Driver>(gmsc).unwrap().got[0] {
            Message::Map(MapMessage::SendRoutingInformationAck {
                msrn: Err(Cause::SubscriberAbsent),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gprs_location_respects_profile_flag() {
        let mut net = Network::new(9);
        let mut hlr = Hlr::new();
        let mut profile = SubscriberProfile::full(msisdn());
        profile.gprs_allowed = false;
        hlr.provision(imsi(), 0xABC, profile);
        let hlr_node = net.add_node("hlr", hlr);
        let sgsn = net.add_node(
            "sgsn",
            Driver::new(
                hlr_node,
                vec![Message::Map(MapMessage::UpdateGprsLocation {
                    imsi: imsi(),
                    sgsn: PointCode(77),
                })],
            ),
        );
        net.connect(sgsn, hlr_node, Interface::Gr, SimDuration::from_millis(1));
        net.run_until_quiescent();
        match &net.node::<Driver>(sgsn).unwrap().got[0] {
            Message::Map(MapMessage::UpdateGprsLocationAck {
                rejection: Some(Cause::ServiceNotAllowed),
                ..
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(net.node::<Hlr>(hlr_node).unwrap().serving_sgsn(&imsi()).is_none());
    }

    #[test]
    fn gprs_location_accepted_when_allowed() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let sgsn = net.add_node(
            "sgsn",
            Driver::new(
                hlr,
                vec![Message::Map(MapMessage::UpdateGprsLocation {
                    imsi: imsi(),
                    sgsn: PointCode(77),
                })],
            ),
        );
        net.connect(sgsn, hlr, Interface::Gr, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(net.node::<Hlr>(hlr).unwrap().serving_sgsn(&imsi()), Some(sgsn));
    }

    #[test]
    fn internal_cancel_location_transfers_ownership() {
        let mut net = Network::new(9);
        let hlr = net.add_node("hlr", provisioned());
        let mut d = Driver::new(
            hlr,
            vec![Message::Map(MapMessage::UpdateLocation {
                imsi: imsi(),
                vlr: PointCode(10),
            })],
        );
        d.ack_isd = true;
        let vlr = net.add_node("vlr", d);
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        assert_eq!(net.node::<Hlr>(hlr).unwrap().serving_vlr(&imsi()), Some(vlr));

        // Administrative transfer: record leaves, the serving VLR is told.
        net.inject(
            SimDuration::ZERO,
            hlr,
            Message::Map(MapMessage::CancelLocation { imsi: imsi() }),
        );
        net.run_until_quiescent();
        assert_eq!(net.node::<Hlr>(hlr).unwrap().subscriber_count(), 0);
        assert!(net.node::<Hlr>(hlr).unwrap().serving_vlr(&imsi()).is_none());
        assert!(labels(&net.node::<Driver>(vlr).unwrap().got)
            .contains(&"MAP_Cancel_Location".to_string()));
        assert_eq!(net.stats().counter("hlr.ownership_transferred"), 1);

        // A second transfer for the same subscriber is a no-op.
        net.inject(
            SimDuration::ZERO,
            hlr,
            Message::Map(MapMessage::CancelLocation { imsi: imsi() }),
        );
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("hlr.transfer_unknown_subscriber"), 1);
        assert_eq!(net.stats().counter("hlr.ownership_transferred"), 1);
    }

    use crate::auth::a3_sres;
}
