//! The standard GSM mobile station (handset).
//!
//! This is the whole point of vGPRS: the handset is *unmodified*. It
//! speaks plain GSM 04.08 over the air — location update, authentication,
//! ciphering, call control — and has no vocoder-to-IP or H.323 capability.
//! The same node works against a classic [`GsmMsc`](crate::GsmMsc) and
//! against a `Vmsc`, which is exactly the paper's claim.

use vgprs_sim::{Context, Interface, Node, NodeId, SimDuration, SimTime, TimerToken};
use vgprs_wire::{
    CallId, Cause, CellId, Command, Dtap, Imsi, Lai, Message, MsIdentity, Msisdn, Tmsi,
};

use crate::auth::{a3_sres, Ki};

/// Timer tag: emit the next 20 ms voice frame.
const TIMER_VOICE: u64 = 1;
/// Timer tag: auto-answer an alerting call.
const TIMER_ANSWER: u64 = 2;

/// Static configuration of a mobile station.
#[derive(Clone, Debug)]
pub struct MsConfig {
    /// Subscriber identity (on the SIM).
    pub imsi: Imsi,
    /// Secret key (on the SIM).
    pub ki: Ki,
    /// Own number, for display/diagnostics only.
    pub msisdn: Msisdn,
    /// Location area broadcast by the serving cell.
    pub lai: Lai,
    /// Answer automatically this long after ringing starts.
    /// `None` waits for an explicit [`Command::Answer`].
    pub auto_answer_after: Option<SimDuration>,
    /// Start sending voice frames as soon as a call connects.
    pub talk_on_connect: bool,
}

impl MsConfig {
    /// A sensible default subscriber: auto-answers after two seconds and
    /// talks when connected.
    pub fn new(imsi: Imsi, ki: Ki, msisdn: Msisdn, lai: Lai) -> Self {
        MsConfig {
            imsi,
            ki,
            msisdn,
            lai,
            auto_answer_after: Some(SimDuration::from_secs(2)),
            talk_on_connect: true,
        }
    }
}

/// Observable call/registration state of an MS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsState {
    /// Powered off.
    Off,
    /// Location update in progress.
    Registering,
    /// Registered and idle.
    Idle,
    /// Sent CM Service Request, waiting for accept (MO).
    RequestingService,
    /// Sent Setup, waiting for progress (MO).
    AwaitingProgress,
    /// Heard ringback (MO, remote is alerting).
    Ringback,
    /// Responded to paging, waiting for the incoming setup (MT).
    AnsweringPage,
    /// Ringing locally (MT).
    Ringing,
    /// Sent Connect, waiting for the network's acknowledgement (MT).
    AwaitingConnectAck,
    /// Call established.
    Active,
    /// Clearing in progress.
    Clearing,
}

/// The mobile station node.
#[derive(Debug)]
pub struct MobileStation {
    config: MsConfig,
    serving_bts: NodeId,
    /// Neighbor cells the MS can be handed off to (cell → BTS node).
    neighbors: Vec<(CellId, NodeId)>,
    state: MsState,
    tmsi: Option<Tmsi>,
    call: Option<CallId>,
    pending_called: Option<Msisdn>,
    talking: bool,
    voice_seq: u32,
    voice_timer: Option<TimerToken>,
    registered_at: Option<SimTime>,
    dialed_at: Option<SimTime>,
    /// Frames received on the downlink (media experiments read this).
    pub frames_received: u64,
    /// Calls that reached the Active state.
    pub calls_connected: u64,
    /// Handoffs completed.
    pub handoffs_completed: u64,
}

impl MobileStation {
    /// Creates a powered-off MS camped on `serving_bts`.
    pub fn new(config: MsConfig, serving_bts: NodeId) -> Self {
        MobileStation {
            config,
            serving_bts,
            neighbors: Vec::new(),
            state: MsState::Off,
            tmsi: None,
            call: None,
            pending_called: None,
            talking: false,
            voice_seq: 0,
            voice_timer: None,
            registered_at: None,
            dialed_at: None,
            frames_received: 0,
            calls_connected: 0,
            handoffs_completed: 0,
        }
    }

    /// Declares a neighbor cell the MS could be handed off to. The testbed
    /// must also provision the Um link to that BTS.
    pub fn add_neighbor(&mut self, cell: CellId, bts: NodeId) {
        self.neighbors.push((cell, bts));
    }

    /// Current state.
    pub fn state(&self) -> MsState {
        self.state
    }

    /// The TMSI allocated by the serving VLR, if registered.
    pub fn tmsi(&self) -> Option<Tmsi> {
        self.tmsi
    }

    /// The subscriber's IMSI.
    pub fn imsi(&self) -> Imsi {
        self.config.imsi
    }

    /// The identity the MS presents: TMSI when it has one, IMSI otherwise.
    fn identity(&self) -> MsIdentity {
        match self.tmsi {
            Some(t) => MsIdentity::Tmsi(t),
            None => MsIdentity::Imsi(self.config.imsi),
        }
    }

    fn send_um(&self, ctx: &mut Context<'_, Message>, dtap: Dtap) {
        ctx.send(self.serving_bts, Message::Um(dtap));
    }

    fn start_voice(&mut self, ctx: &mut Context<'_, Message>) {
        if self.talking {
            return;
        }
        self.talking = true;
        self.voice_timer = Some(ctx.set_timer(SimDuration::from_millis(20), TIMER_VOICE));
    }

    fn stop_voice(&mut self, ctx: &mut Context<'_, Message>) {
        self.talking = false;
        if let Some(t) = self.voice_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    fn enter_active(&mut self, ctx: &mut Context<'_, Message>) {
        self.state = MsState::Active;
        self.calls_connected += 1;
        ctx.count("ms.calls_connected");
        if let Some(at) = self.dialed_at.take() {
            ctx.observe_duration("ms.call_setup_ms", ctx.now().duration_since(at));
        }
        if self.config.talk_on_connect {
            self.start_voice(ctx);
        }
    }

    fn clear_call(&mut self, ctx: &mut Context<'_, Message>) {
        self.stop_voice(ctx);
        self.call = None;
        self.state = MsState::Idle;
    }

    fn handle_command(&mut self, ctx: &mut Context<'_, Message>, cmd: Command) {
        match cmd {
            Command::PowerOn => {
                if self.state != MsState::Off {
                    return;
                }
                self.state = MsState::Registering;
                self.registered_at = Some(ctx.now());
                ctx.count("ms.power_on");
                self.send_um(
                    ctx,
                    Dtap::LocationUpdateRequest {
                        identity: self.identity(),
                        lai: self.config.lai,
                    },
                );
            }
            Command::PowerOff => {
                self.stop_voice(ctx);
                self.state = MsState::Off;
            }
            Command::Dial { call, called } => {
                if self.state != MsState::Idle {
                    ctx.count("ms.dial_while_busy");
                    return;
                }
                self.state = MsState::RequestingService;
                self.call = Some(call);
                self.dialed_at = Some(ctx.now());
                self.pending_called = Some(called);
                self.send_um(
                    ctx,
                    Dtap::CmServiceRequest {
                        identity: self.identity(),
                    },
                );
            }
            Command::Answer => self.answer(ctx),
            Command::Hangup => {
                if let (MsState::Active | MsState::Ringback, Some(call)) = (self.state, self.call)
                {
                    self.stop_voice(ctx);
                    self.state = MsState::Clearing;
                    self.send_um(
                        ctx,
                        Dtap::Disconnect {
                            call,
                            cause: Cause::NormalClearing,
                        },
                    );
                }
            }
            Command::StartTalking => {
                if self.state == MsState::Active {
                    self.start_voice(ctx);
                }
            }
            Command::StopTalking => self.stop_voice(ctx),
            Command::MoveToCell { cell } => {
                if self.state == MsState::Active {
                    // In-call movement: report the better cell; the network
                    // decides the handoff (paper §7).
                    self.send_um(ctx, Dtap::MeasurementReport { cell });
                } else if let Some(&(_, bts)) =
                    self.neighbors.iter().find(|(c, _)| *c == cell)
                {
                    // Idle movement: re-camp and re-register.
                    self.serving_bts = bts;
                    if self.state == MsState::Idle {
                        self.state = MsState::Registering;
                        self.registered_at = Some(ctx.now());
                        self.send_um(
                            ctx,
                            Dtap::LocationUpdateRequest {
                                identity: self.identity(),
                                lai: self.config.lai,
                            },
                        );
                    }
                }
            }
            // Fault-injection commands target infrastructure nodes, not
            // handsets.
            Command::Crash | Command::Blackhole | Command::Restore | Command::Resync => {
                ctx.count("ms.unexpected_command");
            }
        }
    }

    fn answer(&mut self, ctx: &mut Context<'_, Message>) {
        if let (MsState::Ringing, Some(call)) = (self.state, self.call) {
            self.state = MsState::AwaitingConnectAck;
            self.send_um(ctx, Dtap::Connect { call });
        }
    }

    fn handle_dtap(&mut self, ctx: &mut Context<'_, Message>, dtap: Dtap) {
        match dtap {
            Dtap::AuthenticationRequest { rand } => {
                self.send_um(
                    ctx,
                    Dtap::AuthenticationResponse {
                        sres: a3_sres(self.config.ki, rand),
                    },
                );
            }
            Dtap::CipherModeCommand => self.send_um(ctx, Dtap::CipherModeComplete),
            Dtap::ChannelAssignment { .. } => {
                self.send_um(ctx, Dtap::ChannelAssignmentComplete)
            }
            Dtap::LocationUpdateAccept { tmsi } => {
                if let Some(t) = tmsi {
                    self.tmsi = Some(t);
                }
                self.state = MsState::Idle;
                ctx.count("ms.registered");
                if let Some(at) = self.registered_at.take() {
                    ctx.observe_duration("ms.registration_ms", ctx.now().duration_since(at));
                }
            }
            Dtap::LocationUpdateReject { .. } => {
                if self.tmsi.take().is_some() {
                    // Retry with the permanent identity, as GSM prescribes
                    // when the network does not recognize the TMSI.
                    ctx.count("ms.registration_retry_with_imsi");
                    self.send_um(
                        ctx,
                        Dtap::LocationUpdateRequest {
                            identity: MsIdentity::Imsi(self.config.imsi),
                            lai: self.config.lai,
                        },
                    );
                } else {
                    ctx.count("ms.registration_rejected");
                    self.state = MsState::Off;
                }
            }
            Dtap::CmServiceAccept => {
                if let (MsState::RequestingService, Some(call), Some(called)) =
                    (self.state, self.call, self.pending_called.take())
                {
                    self.state = MsState::AwaitingProgress;
                    self.send_um(ctx, Dtap::Setup { call, called });
                }
            }
            Dtap::CmServiceReject { .. } => {
                ctx.count("ms.service_rejected");
                self.call = None;
                self.pending_called = None;
                self.state = MsState::Idle;
            }
            Dtap::CallProceeding { .. } => ctx.count("ms.call_proceeding"),
            Dtap::Alerting { call } => {
                if self.state == MsState::AwaitingProgress && self.call == Some(call) {
                    self.state = MsState::Ringback;
                    if let Some(at) = self.dialed_at {
                        ctx.observe_duration(
                            "ms.post_dial_delay_ms",
                            ctx.now().duration_since(at),
                        );
                    }
                }
            }
            Dtap::Connect { call } => {
                if self.state == MsState::Ringback && self.call == Some(call) {
                    self.send_um(ctx, Dtap::ConnectAck { call });
                    self.enter_active(ctx);
                }
            }
            Dtap::ConnectAck { call } => {
                if self.state == MsState::AwaitingConnectAck && self.call == Some(call) {
                    self.enter_active(ctx);
                }
            }
            Dtap::Paging { identity } => {
                let mine = match identity {
                    MsIdentity::Imsi(i) => i == self.config.imsi,
                    MsIdentity::Tmsi(t) => Some(t) == self.tmsi,
                };
                if mine && self.state == MsState::Idle {
                    self.state = MsState::AnsweringPage;
                    self.send_um(ctx, Dtap::PagingResponse { identity });
                }
            }
            Dtap::MtSetup { call, .. } => {
                if self.state == MsState::AnsweringPage {
                    self.state = MsState::Ringing;
                    self.call = Some(call);
                    ctx.count("ms.ringing");
                    self.send_um(ctx, Dtap::Alerting { call });
                    if let Some(delay) = self.config.auto_answer_after {
                        ctx.set_timer(delay, TIMER_ANSWER);
                    }
                }
            }
            Dtap::Disconnect { call, .. } => {
                if self.call == Some(call) {
                    self.stop_voice(ctx);
                    self.state = MsState::Clearing;
                    self.send_um(ctx, Dtap::Release { call });
                }
            }
            Dtap::Release { call } => {
                if self.call == Some(call) {
                    self.send_um(ctx, Dtap::ReleaseComplete { call });
                }
            }
            Dtap::ReleaseComplete { .. } => {}
            Dtap::ChannelRelease => self.clear_call(ctx),
            Dtap::HandoverCommand { cell, ho_ref } => {
                if let Some(&(_, bts)) = self.neighbors.iter().find(|(c, _)| *c == cell) {
                    self.serving_bts = bts;
                    self.handoffs_completed += 1;
                    ctx.count("ms.handoffs");
                    // HandoverComplete travels via the NEW cell.
                    self.send_um(ctx, Dtap::HandoverComplete { ho_ref });
                } else {
                    ctx.count("ms.handover_unknown_cell");
                }
            }
            Dtap::VoiceFrame { origin_us, .. } => {
                self.frames_received += 1;
                ctx.count("ms.voice_frames_received");
                let delay_us = ctx.now().as_micros().saturating_sub(origin_us);
                ctx.observe("ms.voice_e2e_ms", delay_us as f64 / 1000.0);
            }
            Dtap::LocationUpdateRequest { .. }
            | Dtap::AuthenticationResponse { .. }
            | Dtap::CipherModeComplete
            | Dtap::CmServiceRequest { .. }
            | Dtap::ChannelAssignmentComplete
            | Dtap::ChannelAssignmentFailure { .. }
            | Dtap::MeasurementReport { .. }
            | Dtap::HandoverRequired { .. }
            | Dtap::HandoverComplete { .. }
            | Dtap::Setup { .. }
            | Dtap::PagingResponse { .. } => ctx.count("ms.unhandled_dtap"),
        }
    }
}

impl Node<Message> for MobileStation {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            (Interface::Internal, Message::Cmd(cmd)) => self.handle_command(ctx, cmd),
            (Interface::Um, Message::Um(dtap)) => {
                // After a handoff the old cell may still flush messages
                // (e.g. the anchor's channel release); a real MS has left
                // that channel and never hears them.
                if from != self.serving_bts {
                    ctx.count("ms.ignored_stale_cell");
                    return;
                }
                self.handle_dtap(ctx, dtap)
            }
            _ => ctx.count("ms.unexpected_message"),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _token: TimerToken, tag: u64) {
        match tag {
            TIMER_VOICE
                if self.talking && self.state == MsState::Active => {
                    if let Some(call) = self.call {
                        self.voice_seq += 1;
                        ctx.count("ms.voice_frames_sent");
                        let origin_us = ctx.now().as_micros();
                        self.send_um(
                            ctx,
                            Dtap::VoiceFrame {
                                call,
                                seq: self.voice_seq,
                                origin_us,
                            },
                        );
                        self.voice_timer =
                            Some(ctx.set_timer(SimDuration::from_millis(20), TIMER_VOICE));
                    }
                }
            TIMER_ANSWER => self.answer(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::Network;

    fn config() -> MsConfig {
        MsConfig::new(
            Imsi::parse("466920123456789").unwrap(),
            0xABCD,
            Msisdn::parse("88691234567").unwrap(),
            Lai::new(466, 92, 1),
        )
    }

    /// Builds: fake serving BTS ←Um→ MS. The BTS needs the MS id to play
    /// its feed, so the rig patches it in after creating both.
    struct ScriptedBts {
        ms: Option<NodeId>,
        feed: Vec<Message>,
        got: Vec<Message>,
    }
    impl Node<Message> for ScriptedBts {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for (i, _) in self.feed.iter().enumerate() {
                ctx.set_timer(SimDuration::from_millis(10 * (i as u64 + 1)), i as u64);
            }
        }
        fn on_timer(&mut self, ctx: &mut Context<'_, Message>, _t: TimerToken, tag: u64) {
            if let (Some(ms), Some(m)) = (self.ms, self.feed.get(tag as usize)) {
                ctx.send(ms, m.clone());
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.got.push(m);
        }
    }

    fn rig(feed: Vec<Message>) -> (Network<Message>, NodeId, NodeId) {
        let mut net = Network::new(1);
        let bts = net.add_node(
            "bts",
            ScriptedBts {
                ms: None,
                feed,
                got: Vec::new(),
            },
        );
        let ms = net.add_node("ms", MobileStation::new(config(), bts));
        net.connect(ms, bts, Interface::Um, SimDuration::from_millis(1));
        net.node_mut::<ScriptedBts>(bts).unwrap().ms = Some(ms);
        (net, ms, bts)
    }

    fn uplink_labels(net: &Network<Message>, bts: NodeId) -> Vec<String> {
        net.node::<ScriptedBts>(bts)
            .unwrap()
            .got
            .iter()
            .map(|m| m.label_str())
            .collect()
    }

    #[test]
    fn power_on_sends_location_update_with_imsi() {
        let (mut net, ms, bts) = rig(vec![]);
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        assert_eq!(
            uplink_labels(&net, bts),
            vec!["Um_Location_Update_Request"]
        );
        assert_eq!(
            net.node::<MobileStation>(ms).unwrap().state(),
            MsState::Registering
        );
    }

    #[test]
    fn auth_challenge_answered_with_correct_sres() {
        let (mut net, ms, bts) = rig(vec![Message::Um(Dtap::AuthenticationRequest {
            rand: 777,
        })]);
        net.run_until_quiescent();
        let got = &net.node::<ScriptedBts>(bts).unwrap().got;
        assert_eq!(got.len(), 1);
        match got[0].dtap() {
            Some(Dtap::AuthenticationResponse { sres }) => {
                assert_eq!(*sres, a3_sres(0xABCD, 777));
            }
            other => panic!("unexpected {other:?}"),
        }
        let _ = ms;
    }

    #[test]
    fn registration_completes_and_stores_tmsi() {
        let (mut net, ms, _bts) = rig(vec![Message::Um(Dtap::LocationUpdateAccept {
            tmsi: Some(Tmsi(42)),
        })]);
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::PowerOn));
        net.run_until_quiescent();
        let m = net.node::<MobileStation>(ms).unwrap();
        assert_eq!(m.state(), MsState::Idle);
        assert_eq!(m.tmsi(), Some(Tmsi(42)));
        assert_eq!(net.stats().counter("ms.registered"), 1);
    }

    #[test]
    fn reject_with_tmsi_retries_with_imsi() {
        let (mut net, ms, bts) = rig(vec![Message::Um(Dtap::LocationUpdateReject {
            cause: Cause::ProtocolError,
        })]);
        net.node_mut::<MobileStation>(ms).unwrap().tmsi = Some(Tmsi(9));
        net.run_until_quiescent();
        let got = &net.node::<ScriptedBts>(bts).unwrap().got;
        assert_eq!(got.len(), 1);
        match got[0].dtap() {
            Some(Dtap::LocationUpdateRequest {
                identity: MsIdentity::Imsi(i),
                ..
            }) => assert_eq!(*i, Imsi::parse("466920123456789").unwrap()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn dial_sends_cm_service_request_then_setup() {
        let (mut net, ms, bts) = rig(vec![Message::Um(Dtap::CmServiceAccept)]);
        net.node_mut::<MobileStation>(ms).unwrap().state = MsState::Idle;
        net.inject(
            SimDuration::ZERO,
            ms,
            Message::Cmd(Command::Dial {
                call: CallId(7),
                called: Msisdn::parse("85291234567").unwrap(),
            }),
        );
        net.run_until_quiescent();
        assert_eq!(
            uplink_labels(&net, bts),
            vec!["Um_CM_Service_Request", "Um_Setup"]
        );
        assert_eq!(
            net.node::<MobileStation>(ms).unwrap().state(),
            MsState::AwaitingProgress
        );
    }

    #[test]
    fn mt_call_pages_rings_and_answers() {
        let imsi = Imsi::parse("466920123456789").unwrap();
        let (mut net, ms, bts) = rig(vec![
            Message::Um(Dtap::Paging {
                identity: MsIdentity::Imsi(imsi),
            }),
            Message::Um(Dtap::MtSetup {
                call: CallId(3),
                calling: None,
            }),
        ]);
        net.node_mut::<MobileStation>(ms).unwrap().state = MsState::Idle;
        net.run_until_quiescent();
        assert_eq!(
            uplink_labels(&net, bts),
            vec!["Um_Paging_Response", "Um_Alerting", "Um_Connect"]
        );
        assert_eq!(
            net.node::<MobileStation>(ms).unwrap().state(),
            MsState::AwaitingConnectAck
        );
    }

    #[test]
    fn paging_for_someone_else_ignored() {
        let other = Imsi::parse("466920999999999").unwrap();
        let (mut net, ms, bts) = rig(vec![Message::Um(Dtap::Paging {
            identity: MsIdentity::Imsi(other),
        })]);
        net.node_mut::<MobileStation>(ms).unwrap().state = MsState::Idle;
        net.run_until_quiescent();
        assert!(net.node::<ScriptedBts>(bts).unwrap().got.is_empty());
    }

    #[test]
    fn active_call_emits_voice_frames_until_hangup() {
        let (mut net, ms, bts) = rig(vec![Message::Um(Dtap::Connect { call: CallId(1) })]);
        {
            let m = net.node_mut::<MobileStation>(ms).unwrap();
            m.state = MsState::Ringback;
            m.call = Some(CallId(1));
        }
        net.run_until(SimTime::from_micros(111_000));
        net.inject(SimDuration::ZERO, ms, Message::Cmd(Command::Hangup));
        net.run_until_quiescent();
        let got = &net.node::<ScriptedBts>(bts).unwrap().got;
        let frames = got
            .iter()
            .filter(|m| matches!(m.dtap(), Some(Dtap::VoiceFrame { .. })))
            .count();
        assert!((3..=6).contains(&frames), "got {frames} frames in ~100ms");
        assert!(got
            .iter()
            .any(|m| matches!(m.dtap(), Some(Dtap::Disconnect { .. }))));
        assert_eq!(
            net.node::<MobileStation>(ms).unwrap().state(),
            MsState::Clearing
        );
    }

    #[test]
    fn handover_command_switches_cell_and_confirms_via_new_bts() {
        let (mut net, ms, old_bts) = rig(vec![Message::Um(Dtap::HandoverCommand {
            cell: CellId(2),
            ho_ref: 55,
        })]);
        let new_bts = net.add_node(
            "bts2",
            ScriptedBts {
                ms: Some(ms),
                feed: vec![],
                got: Vec::new(),
            },
        );
        net.connect(ms, new_bts, Interface::Um, SimDuration::from_millis(1));
        {
            let m = net.node_mut::<MobileStation>(ms).unwrap();
            m.add_neighbor(CellId(2), new_bts);
            m.state = MsState::Active;
            m.call = Some(CallId(1));
        }
        net.run_until_quiescent();
        let new_got = &net.node::<ScriptedBts>(new_bts).unwrap().got;
        assert_eq!(new_got.len(), 1);
        assert!(matches!(
            new_got[0].dtap(),
            Some(Dtap::HandoverComplete { ho_ref: 55 })
        ));
        assert!(net.node::<ScriptedBts>(old_bts).unwrap().got.is_empty());
        assert_eq!(net.node::<MobileStation>(ms).unwrap().handoffs_completed, 1);
    }

    #[test]
    fn stale_cell_downlink_ignored() {
        let (mut net, ms, _bts) = rig(vec![]);
        // a second BTS the MS is NOT served by
        let stale = net.add_node(
            "stale",
            ScriptedBts {
                ms: Some(ms),
                feed: vec![Message::Um(Dtap::ChannelRelease)],
                got: Vec::new(),
            },
        );
        net.connect(ms, stale, Interface::Um, SimDuration::from_millis(1));
        {
            let m = net.node_mut::<MobileStation>(ms).unwrap();
            m.state = MsState::Active;
            m.call = Some(CallId(1));
        }
        net.run_until_quiescent();
        // the stale ChannelRelease did NOT clear the call
        assert_eq!(
            net.node::<MobileStation>(ms).unwrap().state(),
            MsState::Active
        );
        assert_eq!(net.stats().counter("ms.ignored_stale_cell"), 1);
    }

    #[test]
    fn voice_frame_reception_measured() {
        let (mut net, ms, _bts) = rig(vec![Message::Um(Dtap::VoiceFrame {
            call: CallId(1),
            seq: 1,
            origin_us: 0,
        })]);
        {
            let m = net.node_mut::<MobileStation>(ms).unwrap();
            m.state = MsState::Active;
            m.call = Some(CallId(1));
        }
        net.run_until_quiescent();
        assert_eq!(net.node::<MobileStation>(ms).unwrap().frames_received, 1);
        // fed at t=10ms with origin 0 and 1 ms link latency → ~11 ms delay
        let h = net.stats().histogram("ms.voice_e2e_ms").unwrap();
        assert!((h.mean() - 11.0).abs() < 0.01, "mean {}", h.mean());
    }
}
