//! Base Station Controller: aggregates BTSs toward the MSC/VMSC, manages
//! the traffic-channel (TCH) pool, and hosts the Packet Control Unit that
//! forwards packet traffic to the SGSN over Gb (paper Figure 1: "to
//! connect to an SGSN, a packet control unit (PCU) is implemented in the
//! BSC").

use std::collections::{HashMap, HashSet};

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{Cause, CellId, ConnRef, Dtap, Imsi, Message};

/// Configuration for a [`Bsc`].
#[derive(Clone, Copy, Debug)]
pub struct BscConfig {
    /// Traffic channels available across the BSC's cells. Calls beyond
    /// this count are blocked with
    /// [`Cause::RadioResourceUnavailable`].
    pub tch_capacity: usize,
}

impl Default for BscConfig {
    fn default() -> Self {
        BscConfig { tch_capacity: 32 }
    }
}

/// The BSC node.
#[derive(Debug)]
pub struct Bsc {
    config: BscConfig,
    msc: NodeId,
    /// PCU uplink: where packet traffic goes, if GPRS is deployed.
    sgsn: Option<NodeId>,
    btss: Vec<(NodeId, CellId)>,
    conn_to_bts: HashMap<ConnRef, NodeId>,
    /// Connections currently holding a TCH.
    tch_held: HashSet<ConnRef>,
    /// Which BTS serves each packet-service subscriber (learned from
    /// uplink packet traffic).
    packet_bts: HashMap<Imsi, NodeId>,
}

impl Bsc {
    /// Creates a BSC homed on the given MSC (or VMSC).
    pub fn new(config: BscConfig, msc: NodeId) -> Self {
        Bsc {
            config,
            msc,
            sgsn: None,
            btss: Vec::new(),
            conn_to_bts: HashMap::new(),
            tch_held: HashSet::new(),
            packet_bts: HashMap::new(),
        }
    }

    /// Attaches the PCU to an SGSN (enables the packet path).
    pub fn set_sgsn(&mut self, sgsn: NodeId) {
        self.sgsn = Some(sgsn);
    }

    /// Registers a subordinate BTS and the cell it radiates.
    pub fn register_bts(&mut self, bts: NodeId, cell: CellId) {
        if !self.btss.iter().any(|(n, _)| *n == bts) {
            self.btss.push((bts, cell));
        }
    }

    /// Traffic channels currently in use.
    pub fn tch_in_use(&self) -> usize {
        self.tch_held.len()
    }

    fn cell_of(&self, bts: NodeId) -> CellId {
        self.btss
            .iter()
            .find(|(n, _)| *n == bts)
            .map(|(_, c)| *c)
            .unwrap_or(CellId(0))
    }
}

impl Node<Message> for Bsc {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match (iface, msg) {
            // ---- uplink from a BTS ----
            (Interface::Abis, Message::Abis { conn, dtap }) => {
                self.conn_to_bts.insert(conn, from);
                ctx.send(self.msc, Message::a(conn, dtap));
            }
            (Interface::Abis, m @ (Message::Gmm(_) | Message::Llc { .. })) => {
                let imsi = match &m {
                    Message::Gmm(g) => g.imsi(),
                    Message::Llc { imsi, .. } => *imsi,
                    _ => unreachable!("match arm restricted above"),
                };
                self.packet_bts.insert(imsi, from);
                match self.sgsn {
                    Some(sgsn) => ctx.send(sgsn, m),
                    None => ctx.count("bsc.packet_without_sgsn"),
                }
            }

            // ---- downlink from the MSC ----
            (Interface::A, Message::A { conn, dtap }) => {
                if conn.is_connectionless() {
                    for (bts, _) in self.btss.clone() {
                        ctx.send(bts, Message::abis(conn, dtap.clone()));
                    }
                    return;
                }
                let Some(&bts) = self.conn_to_bts.get(&conn) else {
                    ctx.count("bsc.downlink_unknown_conn");
                    return;
                };
                match dtap {
                    Dtap::ChannelAssignment { .. } => {
                        if self.tch_held.contains(&conn) {
                            // already holding one (re-assignment): fine
                        } else if self.tch_held.len() >= self.config.tch_capacity {
                            ctx.count("bsc.tch_blocked");
                            ctx.send(
                                self.msc,
                                Message::a(
                                    conn,
                                    Dtap::ChannelAssignmentFailure {
                                        cause: Cause::RadioResourceUnavailable,
                                    },
                                ),
                            );
                            return;
                        } else {
                            self.tch_held.insert(conn);
                            ctx.count("bsc.tch_allocated");
                        }
                        // Fill in the real serving cell before relaying.
                        let cell = self.cell_of(bts);
                        ctx.send(bts, Message::abis(conn, Dtap::ChannelAssignment { cell }));
                    }
                    Dtap::ChannelRelease => {
                        if self.tch_held.remove(&conn) {
                            ctx.count("bsc.tch_released");
                        }
                        ctx.send(bts, Message::abis(conn, Dtap::ChannelRelease));
                        self.conn_to_bts.remove(&conn);
                    }
                    other => ctx.send(bts, Message::abis(conn, other)),
                }
            }

            // ---- downlink packet traffic from the SGSN over Gb ----
            (Interface::Gb, m @ (Message::Gmm(_) | Message::Llc { .. })) => {
                let imsi = match &m {
                    Message::Gmm(g) => g.imsi(),
                    Message::Llc { imsi, .. } => *imsi,
                    _ => unreachable!("match arm restricted above"),
                };
                match self.packet_bts.get(&imsi) {
                    Some(&bts) => ctx.send(bts, m),
                    None => ctx.count("bsc.downlink_unknown_packet_ms"),
                }
            }

            _ => ctx.count("bsc.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};
    use vgprs_wire::CallId;

    struct Probe {
        got: Vec<(Interface, Message)>,
    }
    impl Node<Message> for Probe {
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            i: Interface,
            m: Message,
        ) {
            self.got.push((i, m));
        }
    }

    struct Sender {
        peer: NodeId,
        to_send: Vec<Message>,
    }
    impl Node<Message> for Sender {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for m in self.to_send.drain(..) {
                ctx.send(self.peer, m);
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            _m: Message,
        ) {
        }
    }

    const CONN: ConnRef = ConnRef(0x0001_0001);

    /// Builds: msc(probe) —A— bsc —Abis— bts(probe/sender)
    fn rig(
        uplink: Vec<Message>,
        downlink: Vec<Message>,
        capacity: usize,
    ) -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let msc_probe = net.add_node("msc", Probe { got: Vec::new() });
        let bsc = net.add_node(
            "bsc",
            Bsc::new(
                BscConfig {
                    tch_capacity: capacity,
                },
                msc_probe,
            ),
        );
        let bts = net.add_node(
            "bts",
            Sender {
                peer: bsc,
                to_send: uplink,
            },
        );
        net.connect(bts, bsc, Interface::Abis, SimDuration::from_millis(1));
        net.connect(bsc, msc_probe, Interface::A, SimDuration::from_millis(1));
        net.node_mut::<Bsc>(bsc).unwrap().register_bts(bts, CellId(3));
        if !downlink.is_empty() {
            let dl = net.add_node(
                "dl",
                Sender {
                    peer: bsc,
                    to_send: downlink,
                },
            );
            net.connect(dl, bsc, Interface::A, SimDuration::from_millis(5));
        }
        (net, bsc, msc_probe, bts)
    }

    #[test]
    fn uplink_relayed_to_msc_as_a_interface() {
        let (mut net, _, msc, _) = rig(
            vec![Message::abis(CONN, Dtap::CmServiceAccept)],
            vec![],
            4,
        );
        net.run_until_quiescent();
        let got = &net.node::<Probe>(msc).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, Interface::A);
        assert_eq!(got[0].1.label_str(), "A_CM_Service_Accept");
    }

    #[test]
    fn channel_assignment_allocates_and_rewrites_cell() {
        let (mut net, bsc, _, bts) = rig(
            vec![Message::abis(CONN, Dtap::CmServiceAccept)],
            vec![Message::a(CONN, Dtap::ChannelAssignment { cell: CellId(0) })],
            4,
        );
        net.run_until_quiescent();
        assert_eq!(net.node::<Bsc>(bsc).unwrap().tch_in_use(), 1);
        // the downlink sender is a probe-less Sender; check the BTS received
        // the assignment with the true cell id
        let _ = bts;
        assert_eq!(net.stats().counter("bsc.tch_allocated"), 1);
    }

    #[test]
    fn tch_exhaustion_reports_failure_upstream() {
        let conn2 = ConnRef(0x0001_0002);
        let (mut net, _, msc, _) = rig(
            vec![
                Message::abis(CONN, Dtap::CmServiceAccept),
                Message::abis(conn2, Dtap::CmServiceAccept),
            ],
            vec![
                Message::a(CONN, Dtap::ChannelAssignment { cell: CellId(0) }),
                Message::a(conn2, Dtap::ChannelAssignment { cell: CellId(0) }),
            ],
            1,
        );
        net.run_until_quiescent();
        let got = &net.node::<Probe>(msc).unwrap().got;
        let failures: Vec<_> = got
            .iter()
            .filter(|(_, m)| m.label_str() == "A_Channel_Assignment_Failure")
            .collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(net.stats().counter("bsc.tch_blocked"), 1);
    }

    #[test]
    fn channel_release_frees_tch() {
        let (mut net, bsc, _, _) = rig(
            vec![Message::abis(CONN, Dtap::CmServiceAccept)],
            vec![
                Message::a(CONN, Dtap::ChannelAssignment { cell: CellId(0) }),
                Message::a(CONN, Dtap::ChannelRelease),
            ],
            4,
        );
        net.run_until_quiescent();
        assert_eq!(net.node::<Bsc>(bsc).unwrap().tch_in_use(), 0);
        assert_eq!(net.stats().counter("bsc.tch_released"), 1);
    }

    #[test]
    fn paging_broadcast_to_every_bts() {
        use vgprs_wire::{Lai, MsIdentity, Tmsi};
        let _ = Lai::new(1, 1, 1);
        let mut net = Network::new(1);
        let msc_probe = net.add_node("msc", Probe { got: Vec::new() });
        let bsc = net.add_node("bsc", Bsc::new(BscConfig::default(), msc_probe));
        let bts1 = net.add_node("bts1", Probe { got: Vec::new() });
        let bts2 = net.add_node("bts2", Probe { got: Vec::new() });
        let pager = net.add_node(
            "pager",
            Sender {
                peer: bsc,
                to_send: vec![Message::a(
                    ConnRef::CONNECTIONLESS,
                    Dtap::Paging {
                        identity: MsIdentity::Tmsi(Tmsi(1)),
                    },
                )],
            },
        );
        net.connect(bts1, bsc, Interface::Abis, SimDuration::from_millis(1));
        net.connect(bts2, bsc, Interface::Abis, SimDuration::from_millis(1));
        net.connect(bsc, msc_probe, Interface::A, SimDuration::from_millis(1));
        net.connect(pager, bsc, Interface::A, SimDuration::from_millis(1));
        {
            let b = net.node_mut::<Bsc>(bsc).unwrap();
            b.register_bts(bts1, CellId(1));
            b.register_bts(bts2, CellId(2));
        }
        net.run_until_quiescent();
        assert_eq!(net.node::<Probe>(bts1).unwrap().got.len(), 1);
        assert_eq!(net.node::<Probe>(bts2).unwrap().got.len(), 1);
    }

    #[test]
    fn packet_uplink_needs_sgsn() {
        use vgprs_wire::GmmMessage;
        let imsi = Imsi::parse("466920123456789").unwrap();
        let (mut net, _, _, _) = rig(
            vec![Message::Gmm(GmmMessage::AttachRequest { imsi })],
            vec![],
            4,
        );
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("bsc.packet_without_sgsn"), 1);
    }

    #[test]
    fn downlink_unknown_conn_counted() {
        let (mut net, _, _, _) = rig(
            vec![],
            vec![Message::a(ConnRef(0xDEAD), Dtap::Alerting { call: CallId(1) })],
            4,
        );
        net.run_until_quiescent();
        assert_eq!(net.stats().counter("bsc.downlink_unknown_conn"), 1);
    }
}
