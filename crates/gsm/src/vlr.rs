//! Visitor Location Register.
//!
//! The VLR owns the visited-network view of each roaming or home
//! subscriber: TMSI allocation, cached authentication triplets, the
//! profile copy downloaded from the HLR, outgoing-call authorization
//! (paper step 2.2) and roaming-number allocation for call delivery.

use std::collections::HashMap;

use vgprs_sim::{Context, Interface, Node, NodeId};
use vgprs_wire::{
    AuthTriplet, Cause, ConnRef, Imsi, Lai, MapMessage, Message, MsIdentity, Msisdn, PointCode,
    SubscriberProfile, Tmsi,
};

/// Configuration for a [`Vlr`].
#[derive(Clone, Debug)]
pub struct VlrConfig {
    /// This VLR's SS7 address.
    pub point_code: PointCode,
    /// Digit prefix of the roaming numbers this VLR mints; the PSTN must
    /// route this prefix to the co-located MSC.
    pub msrn_prefix: String,
    /// Authenticate + re-cipher on every access (call setup), not only at
    /// registration. Matches the paper's step 2.1/4.5 boxes.
    pub auth_on_access: bool,
}

#[derive(Debug, Default)]
struct VlrRecord {
    lai: Option<Lai>,
    tmsi: Option<Tmsi>,
    profile: Option<SubscriberProfile>,
    triplets: Vec<AuthTriplet>,
    /// The triplet currently being verified.
    current: Option<AuthTriplet>,
}

/// What a pending dialogue is for.
#[derive(Debug)]
enum Pending {
    Register { conn: ConnRef, lai: Lai, phase: Phase },
    Access { conn: ConnRef, phase: Phase },
}

/// What answer the dialogue is currently waiting for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Triplets,
    Auth,
    Hlr,
    Cipher,
}

/// The VLR node.
#[derive(Debug)]
pub struct Vlr {
    config: VlrConfig,
    hlr: NodeId,
    /// SS7 global-title style routing: IMSI prefix → that home network's
    /// HLR. Roamers' MAP dialogues go to their own country's HLR.
    hlr_routes: Vec<(String, NodeId)>,
    msc: NodeId,
    records: HashMap<Imsi, VlrRecord>,
    tmsi_index: HashMap<Tmsi, Imsi>,
    msrn_index: HashMap<Msisdn, Imsi>,
    pending: HashMap<Imsi, Pending>,
    next_tmsi: u32,
    next_msrn: u32,
}

impl Vlr {
    /// Creates a VLR serving `msc`, backed by `hlr`.
    pub fn new(config: VlrConfig, msc: NodeId, hlr: NodeId) -> Self {
        Vlr {
            config,
            hlr,
            hlr_routes: Vec::new(),
            msc,
            records: HashMap::new(),
            tmsi_index: HashMap::new(),
            msrn_index: HashMap::new(),
            pending: HashMap::new(),
            next_tmsi: 0,
            next_msrn: 0,
        }
    }

    /// Re-targets the VLR at a different MSC (used by network builders
    /// that must create the VLR before its MSC exists).
    pub fn set_msc(&mut self, msc: NodeId) {
        self.msc = msc;
    }

    /// Routes subscribers whose IMSI starts with `prefix` (MCC+MNC) to a
    /// foreign HLR — how roamers reach their home network.
    pub fn add_hlr_route(&mut self, prefix: impl Into<String>, hlr: NodeId) {
        self.hlr_routes.push((prefix.into(), hlr));
    }

    /// The HLR responsible for `imsi`.
    fn hlr_for(&self, imsi: &Imsi) -> NodeId {
        let digits = imsi.digits();
        self.hlr_routes
            .iter()
            .filter(|(p, _)| digits.starts_with(p))
            .max_by_key(|(p, _)| p.len())
            .map(|(_, n)| *n)
            .unwrap_or(self.hlr)
    }

    /// Number of subscribers currently registered here.
    pub fn visitor_count(&self) -> usize {
        self.records.len()
    }

    /// The profile cached for a subscriber, if registered.
    pub fn profile(&self, imsi: &Imsi) -> Option<&SubscriberProfile> {
        self.records.get(imsi).and_then(|r| r.profile.as_ref())
    }

    fn resolve(&self, identity: &MsIdentity) -> Option<Imsi> {
        match identity {
            MsIdentity::Imsi(i) => Some(*i),
            MsIdentity::Tmsi(t) => self.tmsi_index.get(t).copied(),
        }
    }

    fn alloc_tmsi(&mut self, imsi: Imsi) -> Tmsi {
        self.next_tmsi += 1;
        let tmsi = Tmsi(0xA000_0000 | self.next_tmsi);
        if let Some(rec) = self.records.get_mut(&imsi) {
            if let Some(old) = rec.tmsi.replace(tmsi) {
                self.tmsi_index.remove(&old);
            }
        }
        self.tmsi_index.insert(tmsi, imsi);
        tmsi
    }

    fn alloc_msrn(&mut self, imsi: Imsi) -> Msisdn {
        self.next_msrn += 1;
        let digits = format!("{}{:04}", self.config.msrn_prefix, self.next_msrn);
        let msrn = Msisdn::parse(&digits).expect("prefix + 4 digits is a valid number");
        self.msrn_index.insert(msrn, imsi);
        msrn
    }

    /// Starts (or continues) authentication for a pending dialogue.
    /// Returns `true` if an Authenticate was issued, `false` if no triplet
    /// was available and vectors were requested from the HLR.
    fn begin_auth(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, conn: ConnRef) -> bool {
        let rec = self.records.entry(imsi).or_default();
        match rec.triplets.pop() {
            Some(t) => {
                rec.current = Some(t);
                ctx.send(
                    self.msc,
                    Message::Map(MapMessage::Authenticate {
                        conn,
                        imsi,
                        rand: t.rand,
                    }),
                );
                true
            }
            None => {
                let hlr = self.hlr_for(&imsi);
                ctx.send(
                    hlr,
                    Message::Map(MapMessage::SendAuthenticationInfo { imsi }),
                );
                false
            }
        }
    }

    fn reject(&mut self, ctx: &mut Context<'_, Message>, imsi: Imsi, cause: Cause) {
        match self.pending.remove(&imsi) {
            Some(Pending::Register { conn, .. }) => {
                ctx.count("vlr.registration_rejected");
                ctx.send(
                    self.msc,
                    Message::Map(MapMessage::UpdateLocationAreaReject {
                        conn,
                        identity: MsIdentity::Imsi(imsi),
                        cause,
                    }),
                );
            }
            Some(Pending::Access { conn, .. }) => {
                ctx.count("vlr.access_rejected");
                ctx.send(
                    self.msc,
                    Message::Map(MapMessage::ProcessAccessRequestAck {
                        conn,
                        imsi,
                        rejection: Some(cause),
                    }),
                );
            }
            None => {}
        }
    }

    fn handle_map(&mut self, ctx: &mut Context<'_, Message>, from: NodeId, msg: MapMessage) {
        match msg {
            // ---- from the MSC: registration (paper step 1.1) ----
            MapMessage::UpdateLocationArea {
                conn,
                identity,
                lai,
            } => {
                let Some(imsi) = self.resolve(&identity) else {
                    // Unknown TMSI: tell the MSC to make the MS retry with
                    // its IMSI.
                    ctx.count("vlr.unknown_tmsi");
                    ctx.send(
                        self.msc,
                        Message::Map(MapMessage::UpdateLocationAreaReject {
                            conn,
                            identity,
                            cause: Cause::SubscriberAbsent,
                        }),
                    );
                    return;
                };
                self.records.entry(imsi).or_default();
                let issued = self.begin_auth(ctx, imsi, conn);
                self.pending.insert(
                    imsi,
                    Pending::Register {
                        conn,
                        lai,
                        phase: if issued {
                            Phase::Auth
                        } else {
                            Phase::Triplets
                        },
                    },
                );
            }

            // ---- from the MSC: access (call origination / page response) ----
            MapMessage::ProcessAccessRequest { conn, identity } => {
                let Some(imsi) = self.resolve(&identity) else {
                    ctx.count("vlr.access_unknown_identity");
                    // No IMSI to address the reject with; use a placeholder
                    // record-free reject through the ack's rejection field.
                    if let MsIdentity::Imsi(i) = identity {
                        ctx.send(
                            self.msc,
                            Message::Map(MapMessage::ProcessAccessRequestAck {
                                conn,
                                imsi: i,
                                rejection: Some(Cause::SubscriberAbsent),
                            }),
                        );
                    }
                    return;
                };
                if !self.records.contains_key(&imsi) {
                    ctx.send(
                        self.msc,
                        Message::Map(MapMessage::ProcessAccessRequestAck {
                            conn,
                            imsi,
                            rejection: Some(Cause::SubscriberAbsent),
                        }),
                    );
                    return;
                }
                if !self.config.auth_on_access {
                    ctx.send(
                        self.msc,
                        Message::Map(MapMessage::ProcessAccessRequestAck {
                            conn,
                            imsi,
                            rejection: None,
                        }),
                    );
                    return;
                }
                let issued = self.begin_auth(ctx, imsi, conn);
                self.pending.insert(
                    imsi,
                    Pending::Access {
                        conn,
                        phase: if issued {
                            Phase::Auth
                        } else {
                            Phase::Triplets
                        },
                    },
                );
            }

            // ---- from the HLR: vectors ----
            MapMessage::SendAuthenticationInfoAck { imsi, triplets } => {
                if triplets.is_empty() {
                    self.reject(ctx, imsi, Cause::AuthenticationFailure);
                    return;
                }
                if let Some(rec) = self.records.get_mut(&imsi) {
                    rec.triplets = triplets;
                }
                let conn = match self.pending.get(&imsi) {
                    Some(Pending::Register { conn, phase, .. })
                    | Some(Pending::Access { conn, phase, .. }) => {
                        if *phase != Phase::Triplets {
                            return;
                        }
                        *conn
                    }
                    None => return,
                };
                self.begin_auth(ctx, imsi, conn);
                match self.pending.get_mut(&imsi) {
                    Some(Pending::Register { phase, .. }) | Some(Pending::Access { phase, .. }) => {
                        *phase = Phase::Auth;
                    }
                    None => {}
                }
            }

            // ---- from the MSC: the MS's signed response ----
            MapMessage::AuthenticateAck { imsi, sres, .. } => {
                let expected = self.records.get(&imsi).and_then(|r| r.current);
                let Some(triplet) = expected else {
                    ctx.count("vlr.unsolicited_auth_ack");
                    return;
                };
                if triplet.sres != sres {
                    ctx.count("vlr.auth_failures");
                    self.reject(ctx, imsi, Cause::AuthenticationFailure);
                    return;
                }
                ctx.count("vlr.auth_success");
                match self.pending.get_mut(&imsi) {
                    Some(Pending::Register { phase, .. }) => {
                        // Paper step 1.2: VLR sends MAP_Update_Location to
                        // the HLR and obtains the subscription profile.
                        *phase = Phase::Hlr;
                        let hlr = self.hlr_for(&imsi);
                        ctx.send(
                            hlr,
                            Message::Map(MapMessage::UpdateLocation {
                                imsi,
                                vlr: self.config.point_code,
                            }),
                        );
                    }
                    Some(Pending::Access { conn, phase }) => {
                        *phase = Phase::Cipher;
                        let conn = *conn;
                        ctx.send(
                            self.msc,
                            Message::Map(MapMessage::StartCiphering { conn, imsi }),
                        );
                    }
                    None => {}
                }
            }

            // ---- from the HLR: profile download (paper step 1.2) ----
            MapMessage::InsertSubsData { imsi, profile } => {
                self.records.entry(imsi).or_default().profile = Some(profile);
                ctx.send(from, Message::Map(MapMessage::InsertSubsDataAck { imsi }));
            }

            MapMessage::UpdateLocationAck { imsi } => {
                if let Some(Pending::Register { conn, phase, .. }) = self.pending.get_mut(&imsi) {
                    if *phase == Phase::Hlr {
                        *phase = Phase::Cipher;
                        let conn = *conn;
                        ctx.send(
                            self.msc,
                            Message::Map(MapMessage::StartCiphering { conn, imsi }),
                        );
                    }
                }
            }

            MapMessage::UpdateLocationReject { imsi, cause } => {
                self.records.remove(&imsi);
                self.reject(ctx, imsi, cause);
            }

            MapMessage::StartCipheringAck { imsi, .. } => {
                match self.pending.remove(&imsi) {
                    Some(Pending::Register { conn, lai, phase }) => {
                        if phase != Phase::Cipher {
                            self.pending
                                .insert(imsi, Pending::Register { conn, lai, phase });
                            return;
                        }
                        if let Some(rec) = self.records.get_mut(&imsi) {
                            rec.lai = Some(lai);
                        }
                        let tmsi = self.alloc_tmsi(imsi);
                        let msisdn = self
                            .records
                            .get(&imsi)
                            .and_then(|r| r.profile.as_ref())
                            .map(|p| p.msisdn);
                        ctx.count("vlr.registrations");
                        ctx.send(
                            self.msc,
                            Message::Map(MapMessage::UpdateLocationAreaAck {
                                conn,
                                imsi,
                                tmsi: Some(tmsi),
                                msisdn,
                            }),
                        );
                    }
                    Some(Pending::Access { conn, phase }) => {
                        if phase != Phase::Cipher {
                            self.pending.insert(imsi, Pending::Access { conn, phase });
                            return;
                        }
                        ctx.count("vlr.access_granted");
                        ctx.send(
                            self.msc,
                            Message::Map(MapMessage::ProcessAccessRequestAck {
                                conn,
                                imsi,
                                rejection: None,
                            }),
                        );
                    }
                    None => {}
                }
            }

            // ---- outgoing-call authorization (paper step 2.2) ----
            MapMessage::SendInfoForOutgoingCall {
                conn,
                imsi,
                international,
                ..
            } => {
                let verdict = match self.records.get(&imsi).and_then(|r| r.profile.as_ref()) {
                    Some(p) if p.may_call(international) => (Some(p.msisdn), None),
                    Some(_) => (None, Some(Cause::ServiceNotAllowed)),
                    None => (None, Some(Cause::SubscriberAbsent)),
                };
                if verdict.1.is_some() {
                    ctx.count("vlr.outgoing_call_denied");
                } else {
                    ctx.count("vlr.outgoing_call_authorized");
                }
                ctx.send(
                    self.msc,
                    Message::Map(MapMessage::SendInfoForOutgoingCallAck {
                        conn,
                        imsi,
                        msisdn: verdict.0,
                        rejection: verdict.1,
                    }),
                );
            }

            // ---- call delivery ----
            MapMessage::ProvideRoamingNumber { imsi } => {
                let msrn = self.alloc_msrn(imsi);
                ctx.count("vlr.msrn_allocated");
                ctx.send(
                    from,
                    Message::Map(MapMessage::ProvideRoamingNumberAck { imsi, msrn }),
                );
            }
            MapMessage::SendInfoForIncomingCall { msrn } => {
                let subscriber = match self.msrn_index.remove(&msrn) {
                    Some(imsi) => Ok(imsi),
                    None => Err(Cause::UnallocatedNumber),
                };
                ctx.send(
                    self.msc,
                    Message::Map(MapMessage::SendInfoForIncomingCallAck { msrn, subscriber }),
                );
            }

            // ---- subscriber moved away ----
            MapMessage::CancelLocation { imsi } => {
                if let Some(rec) = self.records.remove(&imsi) {
                    if let Some(t) = rec.tmsi {
                        self.tmsi_index.remove(&t);
                    }
                }
                ctx.count("vlr.cancelled");
                // Let the serving switch drop its per-subscriber state
                // (the VMSC releases PDP contexts + the GK alias).
                ctx.send(self.msc, Message::Map(MapMessage::PurgeMs { imsi }));
                ctx.send(from, Message::Map(MapMessage::CancelLocationAck { imsi }));
            }

            _ => ctx.count("vlr.unhandled_map"),
        }
    }
}

impl Node<Message> for Vlr {
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Message>,
        from: NodeId,
        iface: Interface,
        msg: Message,
    ) {
        match msg {
            Message::Map(map) if matches!(iface, Interface::B | Interface::D) => {
                self.handle_map(ctx, from, map)
            }
            _ => ctx.count("vlr.unexpected_message"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgprs_sim::{Network, SimDuration};

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    struct Probe {
        got: Vec<Message>,
    }
    impl Node<Message> for Probe {
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            m: Message,
        ) {
            self.got.push(m);
        }
    }

    struct Feeder {
        peer: NodeId,
        feed: Vec<Message>,
    }
    impl Node<Message> for Feeder {
        fn on_start(&mut self, ctx: &mut Context<'_, Message>) {
            for m in self.feed.drain(..) {
                ctx.send(self.peer, m);
            }
        }
        fn on_message(
            &mut self,
            _c: &mut Context<'_, Message>,
            _f: NodeId,
            _i: Interface,
            _m: Message,
        ) {
        }
    }

    fn config() -> VlrConfig {
        VlrConfig {
            point_code: PointCode(10),
            msrn_prefix: "8869990".to_owned(),
            auth_on_access: true,
        }
    }

    fn rig(feed_from_msc: Vec<Message>) -> (Network<Message>, NodeId, NodeId, NodeId) {
        let mut net = Network::new(1);
        let msc = net.add_node("msc", Probe { got: Vec::new() });
        let hlr = net.add_node("hlr", Probe { got: Vec::new() });
        let vlr = net.add_node("vlr", Vlr::new(config(), msc, hlr));
        net.connect(msc, vlr, Interface::B, SimDuration::from_millis(1));
        net.connect(vlr, hlr, Interface::D, SimDuration::from_millis(1));
        if !feed_from_msc.is_empty() {
            // feed via the MSC probe is impossible; use a dedicated feeder
            // wired with the B interface
            let feeder = net.add_node(
                "feeder",
                Feeder {
                    peer: vlr,
                    feed: feed_from_msc,
                },
            );
            net.connect(feeder, vlr, Interface::B, SimDuration::from_millis(1));
        }
        (net, vlr, msc, hlr)
    }

    #[test]
    fn registration_requests_vectors_then_challenges() {
        let conn = ConnRef(7);
        let (mut net, _vlr, msc, hlr) = rig(vec![Message::Map(MapMessage::UpdateLocationArea {
            conn,
            identity: MsIdentity::Imsi(imsi()),
            lai: Lai::new(466, 92, 1),
        })]);
        net.run_until_quiescent();
        let hlr_got = &net.node::<Probe>(hlr).unwrap().got;
        assert_eq!(hlr_got.len(), 1);
        assert_eq!(hlr_got[0].label_str(), "MAP_Send_Authentication_Info");
        assert!(net.node::<Probe>(msc).unwrap().got.is_empty());
    }

    #[test]
    fn unknown_tmsi_rejected_toward_msc() {
        let (mut net, _vlr, msc, _hlr) =
            rig(vec![Message::Map(MapMessage::UpdateLocationArea {
                conn: ConnRef(7),
                identity: MsIdentity::Tmsi(Tmsi(99)),
                lai: Lai::new(466, 92, 1),
            })]);
        net.run_until_quiescent();
        let got = &net.node::<Probe>(msc).unwrap().got;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].label_str(), "MAP_Update_Location_Area_reject");
    }

    #[test]
    fn full_registration_dialogue() {
        // Drive the VLR through the whole ladder by feeding each answer.
        let conn = ConnRef(7);
        let t = AuthTriplet {
            rand: 5,
            sres: 55,
            kc: 555,
        };
        let profile = SubscriberProfile::full(Msisdn::parse("88691234567").unwrap());
        let (mut net, vlr, msc, _hlr) = rig(vec![
            Message::Map(MapMessage::UpdateLocationArea {
                conn,
                identity: MsIdentity::Imsi(imsi()),
                lai: Lai::new(466, 92, 1),
            }),
        ]);
        net.run_until_quiescent();
        // HLR answers with vectors
        let f1 = net.add_node(
            "f1",
            Feeder {
                peer: vlr,
                feed: vec![Message::Map(MapMessage::SendAuthenticationInfoAck {
                    imsi: imsi(),
                    triplets: vec![t],
                })],
            },
        );
        net.connect(f1, vlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        // MSC answers the challenge correctly
        let f2 = net.add_node(
            "f2",
            Feeder {
                peer: vlr,
                feed: vec![Message::Map(MapMessage::AuthenticateAck {
                    conn,
                    imsi: imsi(),
                    sres: 55,
                })],
            },
        );
        net.connect(f2, vlr, Interface::B, SimDuration::from_millis(1));
        net.run_until_quiescent();
        // HLR inserts data + acks UL
        let f3 = net.add_node(
            "f3",
            Feeder {
                peer: vlr,
                feed: vec![
                    Message::Map(MapMessage::InsertSubsData {
                        imsi: imsi(),
                        profile,
                    }),
                    Message::Map(MapMessage::UpdateLocationAck { imsi: imsi() }),
                ],
            },
        );
        net.connect(f3, vlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        // MSC confirms ciphering
        let f4 = net.add_node(
            "f4",
            Feeder {
                peer: vlr,
                feed: vec![Message::Map(MapMessage::StartCipheringAck {
                    conn,
                    imsi: imsi(),
                })],
            },
        );
        net.connect(f4, vlr, Interface::B, SimDuration::from_millis(1));
        net.run_until_quiescent();

        let labels: Vec<String> = net
            .node::<Probe>(msc)
            .unwrap()
            .got
            .iter()
            .map(|m| m.label_str())
            .collect();
        assert_eq!(
            labels,
            vec![
                "MAP_Authenticate",
                "MAP_Start_Ciphering",
                "MAP_Update_Location_Area_ack"
            ]
        );
        let v = net.node::<Vlr>(vlr).unwrap();
        assert_eq!(v.visitor_count(), 1);
        assert!(v.profile(&imsi()).is_some());
        assert_eq!(net.stats().counter("vlr.registrations"), 1);
    }

    #[test]
    fn wrong_sres_rejects_registration() {
        let conn = ConnRef(7);
        let t = AuthTriplet {
            rand: 5,
            sres: 55,
            kc: 555,
        };
        let (mut net, vlr, msc, _hlr) = rig(vec![Message::Map(MapMessage::UpdateLocationArea {
            conn,
            identity: MsIdentity::Imsi(imsi()),
            lai: Lai::new(466, 92, 1),
        })]);
        net.run_until_quiescent();
        let f1 = net.add_node(
            "f1",
            Feeder {
                peer: vlr,
                feed: vec![
                    Message::Map(MapMessage::SendAuthenticationInfoAck {
                        imsi: imsi(),
                        triplets: vec![t],
                    }),
                ],
            },
        );
        net.connect(f1, vlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let f2 = net.add_node(
            "f2",
            Feeder {
                peer: vlr,
                feed: vec![Message::Map(MapMessage::AuthenticateAck {
                    conn,
                    imsi: imsi(),
                    sres: 999, // wrong
                })],
            },
        );
        net.connect(f2, vlr, Interface::B, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<Probe>(msc).unwrap().got;
        assert_eq!(got.last().unwrap().label_str(), "MAP_Update_Location_Area_reject");
        assert_eq!(net.stats().counter("vlr.auth_failures"), 1);
    }

    #[test]
    fn outgoing_call_authorization_respects_profile() {
        let intl_denied = SubscriberProfile::domestic_only(Msisdn::parse("88691234567").unwrap());
        let (mut net, vlr, msc, _hlr) = rig(vec![]);
        {
            let v = net.node_mut::<Vlr>(vlr).unwrap();
            v.records.entry(imsi()).or_default().profile = Some(intl_denied);
        }
        let feeder = net.add_node(
            "f",
            Feeder {
                peer: vlr,
                feed: vec![
                    Message::Map(MapMessage::SendInfoForOutgoingCall {
                        conn: ConnRef(1),
                        imsi: imsi(),
                        called: Msisdn::parse("85291234567").unwrap(),
                        international: true,
                    }),
                    Message::Map(MapMessage::SendInfoForOutgoingCall {
                        conn: ConnRef(1),
                        imsi: imsi(),
                        called: Msisdn::parse("88612345678").unwrap(),
                        international: false,
                    }),
                ],
            },
        );
        net.connect(feeder, vlr, Interface::B, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<Probe>(msc).unwrap().got;
        assert_eq!(got.len(), 2);
        match (&got[0], &got[1]) {
            (
                Message::Map(MapMessage::SendInfoForOutgoingCallAck {
                    rejection: Some(Cause::ServiceNotAllowed),
                    ..
                }),
                Message::Map(MapMessage::SendInfoForOutgoingCallAck {
                    rejection: None,
                    msisdn: Some(_),
                    ..
                }),
            ) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn msrn_allocate_and_resolve_once() {
        let (mut net, vlr, msc, _hlr) = rig(vec![]);
        {
            let v = net.node_mut::<Vlr>(vlr).unwrap();
            v.records.entry(imsi()).or_default();
        }
        let hlr_side = net.add_node(
            "hlr2",
            Feeder {
                peer: vlr,
                feed: vec![Message::Map(MapMessage::ProvideRoamingNumber {
                    imsi: imsi(),
                })],
            },
        );
        net.connect(hlr_side, vlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        // capture allocated msrn from the feeder probe? the ack went to the
        // feeder (from); read it from the vlr's index instead
        let msrn = *net
            .node::<Vlr>(vlr)
            .unwrap()
            .msrn_index
            .keys()
            .next()
            .expect("allocated");
        let f = net.add_node(
            "f2",
            Feeder {
                peer: vlr,
                feed: vec![
                    Message::Map(MapMessage::SendInfoForIncomingCall { msrn }),
                    Message::Map(MapMessage::SendInfoForIncomingCall { msrn }),
                ],
            },
        );
        net.connect(f, vlr, Interface::B, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let got = &net.node::<Probe>(msc).unwrap().got;
        assert_eq!(got.len(), 2);
        match (&got[0], &got[1]) {
            (
                Message::Map(MapMessage::SendInfoForIncomingCallAck {
                    subscriber: Ok(i), ..
                }),
                Message::Map(MapMessage::SendInfoForIncomingCallAck {
                    subscriber: Err(Cause::UnallocatedNumber),
                    ..
                }),
            ) => assert_eq!(*i, imsi()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cancel_location_purges() {
        let (mut net, vlr, _msc, _hlr) = rig(vec![]);
        {
            let v = net.node_mut::<Vlr>(vlr).unwrap();
            v.records.entry(imsi()).or_default();
            let t = v.alloc_tmsi(imsi());
            assert!(v.tmsi_index.contains_key(&t));
        }
        let f = net.add_node(
            "f",
            Feeder {
                peer: vlr,
                feed: vec![Message::Map(MapMessage::CancelLocation { imsi: imsi() })],
            },
        );
        net.connect(f, vlr, Interface::D, SimDuration::from_millis(1));
        net.run_until_quiescent();
        let v = net.node::<Vlr>(vlr).unwrap();
        assert_eq!(v.visitor_count(), 0);
        assert!(v.tmsi_index.is_empty());
    }
}
