//! Simulated GSM authentication (A3) and ciphering-key (A8) algorithms.
//!
//! The real SIM algorithms (typically COMP128) are operator secrets. The
//! reproduction substitutes a keyed 64-bit mixing function with the same
//! interface — `(Ki, RAND) → SRES` and `(Ki, RAND) → Kc` — because the
//! paper's flows depend only on the challenge–response *shape*, never on
//! cryptographic strength (see DESIGN.md, substitution table).

use std::collections::HashMap;

use vgprs_wire::{AuthTriplet, Imsi};

/// A subscriber's secret key, shared between SIM and AuC.
pub type Ki = u64;

/// SplitMix64-style avalanche; good bit diffusion, trivially fast.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A3: computes the signed response for a challenge.
pub fn a3_sres(ki: Ki, rand: u64) -> u32 {
    (mix(ki ^ mix(rand)) >> 32) as u32
}

/// A8: derives the ciphering key for a challenge.
pub fn a8_kc(ki: Ki, rand: u64) -> u64 {
    mix(mix(ki) ^ rand)
}

/// The home network's Authentication Centre: holds every subscriber's Ki
/// and mints [`AuthTriplet`]s on demand (embedded in the HLR node, as is
/// conventional).
#[derive(Debug, Default)]
pub struct AuthCenter {
    keys: HashMap<Imsi, Ki>,
}

impl AuthCenter {
    /// Creates an empty AuC.
    pub fn new() -> Self {
        AuthCenter::default()
    }

    /// Provisions a subscriber key. Re-provisioning replaces the old key.
    pub fn provision(&mut self, imsi: Imsi, ki: Ki) {
        self.keys.insert(imsi, ki);
    }

    /// True if the subscriber has a key.
    pub fn knows(&self, imsi: &Imsi) -> bool {
        self.keys.contains_key(imsi)
    }

    /// Mints a triplet for the subscriber using the caller-supplied
    /// challenge (the HLR draws it from the simulation RNG).
    ///
    /// Returns `None` for unknown subscribers.
    pub fn generate(&self, imsi: &Imsi, rand: u64) -> Option<AuthTriplet> {
        let ki = *self.keys.get(imsi)?;
        Some(AuthTriplet {
            rand,
            sres: a3_sres(ki, rand),
            kc: a8_kc(ki, rand),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imsi() -> Imsi {
        Imsi::parse("466920123456789").unwrap()
    }

    #[test]
    fn a3_deterministic() {
        assert_eq!(a3_sres(42, 1000), a3_sres(42, 1000));
    }

    #[test]
    fn a3_sensitive_to_key_and_challenge() {
        assert_ne!(a3_sres(42, 1000), a3_sres(43, 1000));
        assert_ne!(a3_sres(42, 1000), a3_sres(42, 1001));
    }

    #[test]
    fn a8_differs_from_a3_channel() {
        // Kc and SRES must not be trivially related.
        let kc = a8_kc(42, 1000);
        let sres = a3_sres(42, 1000);
        assert_ne!(kc as u32, sres);
        assert_ne!((kc >> 32) as u32, sres);
    }

    #[test]
    fn auc_generates_verifiable_triplets() {
        let mut auc = AuthCenter::new();
        auc.provision(imsi(), 0xDEAD);
        let t = auc.generate(&imsi(), 777).expect("provisioned");
        // The SIM side computes the same SRES from the same Ki + RAND.
        assert_eq!(t.sres, a3_sres(0xDEAD, 777));
        assert_eq!(t.kc, a8_kc(0xDEAD, 777));
        assert_eq!(t.rand, 777);
    }

    #[test]
    fn auc_unknown_subscriber() {
        let auc = AuthCenter::new();
        assert!(auc.generate(&imsi(), 1).is_none());
        assert!(!auc.knows(&imsi()));
    }

    #[test]
    fn wrong_key_fails_verification() {
        let mut auc = AuthCenter::new();
        auc.provision(imsi(), 0xDEAD);
        let t = auc.generate(&imsi(), 777).unwrap();
        // An impostor SIM with the wrong Ki produces a different SRES.
        assert_ne!(a3_sres(0xBEEF, t.rand), t.sres);
    }

    #[test]
    fn reprovision_replaces_key() {
        let mut auc = AuthCenter::new();
        auc.provision(imsi(), 1);
        auc.provision(imsi(), 2);
        let t = auc.generate(&imsi(), 9).unwrap();
        assert_eq!(t.sres, a3_sres(2, 9));
    }
}
